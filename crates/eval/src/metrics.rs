//! F1 / precision / recall and per-method workload aggregation.

use std::time::Duration;

use bcc_graph::VertexId;

/// `(precision, recall)` of discovered community `found` against ground
/// truth `truth`. Both slices must be sorted ascending (the search APIs
/// return sorted communities).
pub fn precision_recall(found: &[VertexId], truth: &[VertexId]) -> (f64, f64) {
    debug_assert!(found.windows(2).all(|w| w[0] < w[1]), "found must be sorted");
    debug_assert!(truth.windows(2).all(|w| w[0] < w[1]), "truth must be sorted");
    if found.is_empty() || truth.is_empty() {
        return (0.0, 0.0);
    }
    let mut overlap = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < found.len() && j < truth.len() {
        match found[i].cmp(&truth[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                overlap += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (
        overlap as f64 / found.len() as f64,
        overlap as f64 / truth.len() as f64,
    )
}

/// The F1-score of the paper's Section 8 (0.0 when either set is empty or
/// the overlap is empty).
pub fn f1_score(found: &[VertexId], truth: &[VertexId]) -> f64 {
    let (precision, recall) = precision_recall(found, truth);
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Accumulates per-query outcomes for one method over a workload; failed
/// queries count as F1 = 0 and their elapsed time still accrues (matching
/// the paper's averaged reporting).
#[derive(Clone, Debug, Default)]
pub struct MethodAggregate {
    /// Sum of F1 scores (failed queries contribute 0).
    pub f1_sum: f64,
    /// Total wall time over all queries.
    pub time_sum: Duration,
    /// Queries attempted.
    pub queries: usize,
    /// Queries that produced a community.
    pub successes: usize,
    /// Sum of community sizes over successes.
    pub size_sum: usize,
}

impl MethodAggregate {
    /// Records one successful query.
    pub fn record_success(&mut self, f1: f64, elapsed: Duration, community_size: usize) {
        self.f1_sum += f1;
        self.time_sum += elapsed;
        self.queries += 1;
        self.successes += 1;
        self.size_sum += community_size;
    }

    /// Records a failed query (no community found).
    pub fn record_failure(&mut self, elapsed: Duration) {
        self.time_sum += elapsed;
        self.queries += 1;
    }

    /// Mean F1 over all attempted queries.
    pub fn mean_f1(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.f1_sum / self.queries as f64
        }
    }

    /// Mean wall time per query in seconds.
    pub fn mean_seconds(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.time_sum.as_secs_f64() / self.queries as f64
        }
    }

    /// Mean community size over successful queries.
    pub fn mean_size(&self) -> f64 {
        if self.successes == 0 {
            0.0
        } else {
            self.size_sum as f64 / self.successes as f64
        }
    }

    /// Fraction of queries that produced a community.
    pub fn success_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.successes as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn perfect_match_is_one() {
        let c = vs(&[1, 2, 3]);
        assert_eq!(f1_score(&c, &c), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(f1_score(&vs(&[1, 2]), &vs(&[3, 4])), 0.0);
        assert_eq!(f1_score(&vs(&[]), &vs(&[3])), 0.0);
        assert_eq!(f1_score(&vs(&[1]), &vs(&[])), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // found {1,2,3,4}, truth {3,4,5,6}: overlap 2, prec 0.5, recall 0.5.
        let (p, r) = precision_recall(&vs(&[1, 2, 3, 4]), &vs(&[3, 4, 5, 6]));
        assert_eq!((p, r), (0.5, 0.5));
        assert!((f1_score(&vs(&[1, 2, 3, 4]), &vs(&[3, 4, 5, 6])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_vs_recall_asymmetry() {
        // found = subset of truth: precision 1, recall 0.5.
        let (p, r) = precision_recall(&vs(&[1, 2]), &vs(&[1, 2, 3, 4]));
        assert_eq!((p, r), (1.0, 0.5));
    }

    #[test]
    fn aggregate_averages() {
        let mut agg = MethodAggregate::default();
        agg.record_success(1.0, Duration::from_millis(10), 10);
        agg.record_success(0.5, Duration::from_millis(30), 20);
        agg.record_failure(Duration::from_millis(20));
        assert!((agg.mean_f1() - 0.5).abs() < 1e-12);
        assert!((agg.mean_seconds() - 0.02).abs() < 1e-9);
        assert_eq!(agg.mean_size(), 15.0);
        assert!((agg.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
