//! Evaluation harness: quality metrics, result aggregation, and table
//! formatting.
//!
//! The paper's quality metric is the F1-score between a discovered
//! community `C` and a ground-truth community `Ĉ`:
//! `F1 = 2·prec·recall / (prec + recall)` with `prec = |C ∩ Ĉ| / |C|` and
//! `recall = |C ∩ Ĉ| / |Ĉ|` (Section 8, "Evaluation metrics"). The paper
//! reports per-method averages over query workloads; [`MethodAggregate`]
//! accumulates those. [`table`] renders the aligned text tables the
//! experiment binaries print; rows serialize to JSON for EXPERIMENTS.md.

pub mod metrics;
pub mod table;

pub use bcc_core::SearchStats;
pub use metrics::{f1_score, precision_recall, MethodAggregate};
pub use table::{render_table, Table};
