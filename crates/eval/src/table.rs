//! Aligned text tables + JSON rows for the experiment binaries.
//!
//! Every experiment binary prints one paper-style table to stdout and can
//! serialize the same rows as JSON (used to assemble EXPERIMENTS.md).

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption (e.g. "Figure 5: running time (s)").
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Row cells (first cell = row label).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        render_table(&self.title, &self.headers, &self.rows)
    }

    /// Serializes to a pretty-printed JSON object string. Hand-rolled
    /// because this workspace builds without serde (see vendor/README.md);
    /// the cells are plain strings, so escaping is the only subtlety.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"headers\": ");
        out.push_str(&json_string_array(&self.headers));
        out.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_string_array(row));
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// The workspace-wide JSON string escaper — shared with the service's
/// response emitter so hostile cell contents can never corrupt either
/// document (both emitters are hand-rolled; see `vendor/README.md`).
use bcc_graph::json::json_string;

/// One-line JSON array of strings.
fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// Renders `headers` + `rows` as an aligned text table under `title`.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        s
    };
    out.push_str(&line(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a seconds value the way the paper's log-scale plots read
/// (3 significant-ish digits, scientific for very small).
pub fn fmt_seconds(secs: f64) -> String {
    if secs == 0.0 {
        "0".into()
    } else if secs < 0.001 {
        format!("{secs:.2e}")
    } else if secs < 1.0 {
        format!("{secs:.4}")
    } else {
        format!("{secs:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(
            "Demo",
            vec!["Network".into(), "F1".into()],
        );
        t.push_row(vec!["Baidu-1".into(), "0.85".into()]);
        t.push_row(vec!["LongNetworkName".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and both rows align on the first column width.
        assert!(lines[1].starts_with("Network        "));
        assert!(lines[3].starts_with("Baidu-1        "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrips_structure() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row(vec!["1".into()]);
        let json = t.to_json();
        assert!(json.contains("\"title\": \"T\""));
        assert!(json.contains("\"rows\""));
    }

    #[test]
    fn json_escapes_hostile_cells() {
        // Vertex names flow into table cells verbatim, and `ali"ce` is a
        // legal name: the emitted document must stay intact.
        let mut t = Table::new("Ti\"tle\n", vec!["net\\work".into()]);
        t.push_row(vec!["ali\"ce\t".into()]);
        let json = t.to_json();
        assert!(json.contains("\"Ti\\\"tle\\n\""), "{json}");
        assert!(json.contains("\"net\\\\work\""), "{json}");
        assert!(json.contains("\"ali\\\"ce\\t\""), "{json}");
        let unescaped = json.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0, "balanced quotes: {json}");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert!(fmt_seconds(0.0000123).contains('e'));
        assert_eq!(fmt_seconds(0.1234), "0.1234");
        assert_eq!(fmt_seconds(12.345), "12.35");
    }
}
