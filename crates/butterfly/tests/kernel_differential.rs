//! Differential equivalence of the butterfly wedge kernels.
//!
//! The flat scratch kernel ([`butterfly_degrees`]) and the vertex-priority
//! kernel ([`butterfly_degrees_priority`]) must agree, per vertex, with two
//! independent oracles on arbitrary inputs:
//!
//! * the O(n⁴) brute-force enumerator, and
//! * the retained seed hash kernel ([`butterfly_degrees_hash`]);
//!
//! over every [`GraphRead`] host the serving stack feeds them: bare CSR
//! snapshots, peeling [`GraphView`]s with dead vertices, and mid-batch
//! [`OverlayGraph`] states — multi-label graphs included (vertices outside
//! the two sides are wedge noise the kernels must ignore).

use bcc_butterfly::{
    brute_force_butterfly_degrees, butterfly_degree_of, butterfly_degree_of_with,
    butterfly_degrees, butterfly_degrees_hash, butterfly_degrees_priority, total_butterflies,
    total_butterflies_priority, BipartiteCross,
};
use bcc_graph::{
    EdgeChange, EdgeOp, GraphBuilder, GraphView, Label, LabeledGraph, OverlayGraph, VertexId,
    WedgeScratch,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random graph over `labels` groups (side labels 0 and 1 plus noise
/// groups), with homogeneous and off-side edges present as noise.
fn random_labeled(rng: &mut impl Rng, n: usize, labels: usize, p: f64) -> LabeledGraph {
    let names: Vec<String> = (0..labels).map(|i| format!("G{i}")).collect();
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> =
        (0..n).map(|i| b.add_vertex(&names[i % labels])).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }
    b.build()
}

/// Asserts all kernels agree on `host` against the hash oracle (computed on
/// the same host), plus single-vertex and global-count consistency.
fn assert_kernels_agree<G: bcc_graph::GraphRead>(host: &G, cross: BipartiteCross, context: &str) {
    let oracle = butterfly_degrees_hash(host, cross);
    let flat = butterfly_degrees(host, cross);
    assert_eq!(flat, oracle, "flat vs hash {context}");
    let priority = butterfly_degrees_priority(host, cross);
    assert_eq!(priority, oracle, "priority vs hash {context}");
    let total: u64 = oracle.iter().sum::<u64>() / 4;
    assert_eq!(total_butterflies(host, cross), total, "total {context}");
    assert_eq!(total_butterflies_priority(host, cross), total, "priority total {context}");
    let mut scratch = WedgeScratch::new(host.vertex_count());
    for v in host.vertices() {
        assert_eq!(
            butterfly_degree_of_with(host, cross, v, &mut scratch),
            oracle[v.index()],
            "χ({v}) {context}"
        );
    }
}

#[test]
fn kernels_agree_on_random_multi_label_snapshots() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xF1A7);
    let cross = BipartiteCross::new(Label(0), Label(1));
    for trial in 0..12 {
        let labels = 2 + trial % 3; // 2, 3, 4 — noise labels from the 3rd on
        let g = random_labeled(&mut rng, 18, labels, 0.3);
        // The hash oracle itself is pinned to brute force on the full view.
        let view = GraphView::new(&g);
        assert_eq!(
            butterfly_degrees_hash(&view, cross),
            brute_force_butterfly_degrees(&view, cross),
            "hash oracle vs brute force (trial {trial})"
        );
        assert_kernels_agree(&g, cross, &format!("(snapshot, trial {trial})"));
    }
}

#[test]
fn kernels_agree_on_views_with_dead_vertices() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xDEAD);
    let cross = BipartiteCross::new(Label(0), Label(1));
    for trial in 0..10 {
        let g = random_labeled(&mut rng, 16, 3, 0.35);
        let mut view = GraphView::new(&g);
        for _ in 0..rng.gen_range(1..6) {
            let v = VertexId(rng.gen_range(0..16));
            if view.is_alive(v) {
                view.remove_vertex(v);
            }
        }
        assert_eq!(
            butterfly_degrees_hash(&view, cross),
            brute_force_butterfly_degrees(&view, cross),
            "hash oracle vs brute force (trial {trial})"
        );
        assert_kernels_agree(&view, cross, &format!("(view, trial {trial})"));
    }
}

#[test]
fn kernels_agree_on_overlay_mid_batch_states() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x0E4);
    let cross = BipartiteCross::new(Label(0), Label(1));
    for trial in 0..8 {
        let g = random_labeled(&mut rng, 14, 2 + trial % 2, 0.3);
        let mut overlay = OverlayGraph::new(&g);
        for step in 0..20 {
            let u = VertexId(rng.gen_range(0..14));
            let v = VertexId(rng.gen_range(0..14));
            if u == v {
                continue;
            }
            let op = if bcc_graph::GraphRead::has_edge(&overlay, u, v) {
                EdgeOp::Remove
            } else {
                EdgeOp::Insert
            };
            overlay.flip(&EdgeChange { u, v, op });
            // Every mid-batch state: overlay reads ≡ materialized snapshot
            // reads, for every kernel.
            let snapshot = overlay.materialize();
            let expected = butterfly_degrees_hash(&snapshot, cross);
            assert_eq!(
                butterfly_degrees(&overlay, cross),
                expected,
                "flat on overlay (trial {trial}, step {step})"
            );
            assert_eq!(
                butterfly_degrees_priority(&overlay, cross),
                expected,
                "priority on overlay (trial {trial}, step {step})"
            );
            assert_eq!(
                total_butterflies(&overlay, cross),
                expected.iter().sum::<u64>() / 4,
                "total on overlay (trial {trial}, step {step})"
            );
        }
        assert_kernels_agree(&overlay, cross, &format!("(overlay end state, trial {trial})"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat and priority kernels equal the brute-force oracle and the seed
    /// hash kernel on arbitrary 3-labeled edge soups.
    #[test]
    fn flat_and_priority_match_oracles(
        n in 4usize..14,
        labels in 2usize..4,
        edges in proptest::collection::vec((0u8..14, 0u8..14), 0..60),
    ) {
        let names = ["G0", "G1", "G2"];
        let mut b = GraphBuilder::new();
        let vs: Vec<VertexId> = (0..n).map(|i| b.add_vertex(names[i % labels])).collect();
        for &(x, y) in &edges {
            let (x, y) = (x as usize % n, y as usize % n);
            if x != y {
                b.add_edge(vs[x], vs[y]);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(Label(0), Label(1));
        let brute = brute_force_butterfly_degrees(&view, cross);
        prop_assert_eq!(&butterfly_degrees(&g, cross), &brute);
        prop_assert_eq!(&butterfly_degrees_priority(&g, cross), &brute);
        prop_assert_eq!(&butterfly_degrees_hash(&g, cross), &brute);
        let total = brute.iter().sum::<u64>() / 4;
        prop_assert_eq!(total_butterflies(&g, cross), total);
        prop_assert_eq!(total_butterflies_priority(&g, cross), total);
        for v in g.vertices() {
            prop_assert_eq!(butterfly_degree_of(&g, cross, v), brute[v.index()]);
        }
    }
}
