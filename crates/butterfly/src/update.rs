//! Algorithm 7 — butterfly-degree update for a leader vertex.
//!
//! When Algorithm 1 deletes a vertex `v`, a leader `p`'s butterfly degree
//! χ(p) only loses the butterflies containing *both* `p` and `v`. Algorithm 7
//! computes that loss in O(d²) instead of recounting the whole side:
//!
//! * same side (`ℓ(p) = ℓ(v)`): the lost butterflies pick 2 of the
//!   `α = |N(v) ∩ N(p)|` shared cross neighbors → `C(α, 2)`;
//! * opposite sides (`ℓ(p) ≠ ℓ(v)`): nothing is lost unless `v ∈ N(p)`;
//!   otherwise each wing partner `u ∈ N(v) \ {p}` contributes
//!   `|N(u) ∩ N(p)| − 1` (the shared cross neighbors other than `v`).
//!
//! Neighborhoods are in the bipartite cross-graph `B`.
//!
//! All routines read through [`bcc_graph::GraphRead`]: Algorithm 1 passes
//! its live [`bcc_graph::GraphView`], the incremental index maintenance
//! passes a bare snapshot or the mid-batch [`bcc_graph::OverlayGraph`] —
//! no O(|V|) view construction on the maintenance path. Neighborhood
//! membership runs on the dense epoch-stamped [`WedgeScratch`] (no hash
//! sets); the `*_with` variants take the scratch explicitly so loops reuse
//! one allocation across many deltas.

use bcc_graph::{GraphRead, VertexId, WedgeScratch};

use crate::bipartite::BipartiteCross;
use crate::counting::choose2;

/// How much χ(p) decreases when `v` is deleted. Must be called while `v` is
/// still live in `g` (i.e. *before* the view deletes it).
///
/// Returns 0 when either vertex lies outside the cross-graph. Borrows a
/// thread-local [`WedgeScratch`] for the neighborhood marks; hot loops
/// (e.g. the Algorithm 1 peel, the batched index patcher) should pass an
/// explicit reused scratch via [`leader_decrement_with`].
pub fn leader_decrement<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    p: VertexId,
    v: VertexId,
) -> u64 {
    WedgeScratch::with_thread_local(|scratch| leader_decrement_with(g, cross, p, v, scratch))
}

/// [`leader_decrement`] on a caller-provided scratch.
pub fn leader_decrement_with<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    p: VertexId,
    v: VertexId,
    scratch: &mut WedgeScratch,
) -> u64 {
    if p == v {
        return 0; // the caller is about to lose the leader entirely
    }
    let (lp, lv) = (g.label(p), g.label(v));
    if cross.opposite(lp).is_none() || cross.opposite(lv).is_none() {
        return 0;
    }
    if lp == lv {
        // Same side: butterflies containing p and v choose 2 common cross
        // neighbors.
        let alpha = common_cross_neighbors(g, cross, p, v, scratch);
        choose2(alpha as u64)
    } else {
        // Opposite sides: only butterflies using the edge (p, v) die.
        if !cross.cross_neighbors(g, p).any(|u| u == v) {
            return 0;
        }
        scratch.reset_for(g.vertex_count());
        for u in cross.cross_neighbors(g, p) {
            scratch.mark(u);
        }
        let mut beta = 0u64;
        for u in cross.cross_neighbors(g, v) {
            if u == p {
                continue;
            }
            // |N(u) ∩ N(p)| − 1: common cross neighbors of u and p other
            // than v itself (v is common since u ∈ N(v) and v ∈ N(p)).
            let common =
                cross.cross_neighbors(g, u).filter(|&w| scratch.contains(w)).count() as u64;
            beta += common.saturating_sub(1);
        }
        beta
    }
}

/// Algorithm 7 at *edge* granularity: the number of butterflies that
/// contain both `p` and the cross edge `{u, v}` — i.e. how much χ(p) drops
/// when that edge is deleted (equivalently: how much it rose when the edge
/// was just inserted, evaluated on the graph that contains the edge).
///
/// Butterflies are 2×2 bicliques, so a butterfly containing two adjacent
/// opposite-side vertices necessarily uses the edge between them; the
/// endpoint cases therefore reduce to [`leader_decrement`] verbatim, and a
/// wing vertex `p` on `u`'s side loses one butterfly `{u, p} × {v, w}` per
/// common cross neighbor `w ≠ v` — provided `p` is itself adjacent to `v`.
/// Cost is O(d²) like the vertex form.
///
/// Returns 0 when `p` is unrelated to the edge (not adjacent to the far
/// endpoint, outside the cross-graph, or dead in a view — a dead vertex has
/// no live neighbors). The edge must be present in `g`.
pub fn edge_decrement<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    p: VertexId,
    u: VertexId,
    v: VertexId,
) -> u64 {
    WedgeScratch::with_thread_local(|scratch| edge_decrement_with(g, cross, p, u, v, scratch))
}

/// [`edge_decrement`] on a caller-provided scratch — the form the batched
/// index patcher uses, one scratch for a whole commit.
pub fn edge_decrement_with<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    p: VertexId,
    u: VertexId,
    v: VertexId,
    scratch: &mut WedgeScratch,
) -> u64 {
    debug_assert!(g.has_edge(u, v), "edge deltas are evaluated while the edge exists");
    debug_assert_ne!(g.label(u), g.label(v), "cross edges are heterogeneous");
    if p == u {
        return leader_decrement_with(g, cross, u, v, scratch);
    }
    if p == v {
        return leader_decrement_with(g, cross, v, u, scratch);
    }
    let lp = g.label(p);
    if cross.opposite(lp).is_none() {
        return 0;
    }
    // A wing vertex must sit on one of the edge's sides and close the
    // 4-cycle with the far endpoint.
    let (near, far) = if lp == g.label(u) {
        (u, v)
    } else if lp == g.label(v) {
        (v, u)
    } else {
        return 0;
    };
    if !cross.cross_neighbors(g, p).any(|w| w == far) {
        return 0;
    }
    // Common cross neighbors of p and the same-side endpoint, minus `far`
    // itself (counted in the intersection because far ∈ N(near) ∩ N(p)).
    (common_cross_neighbors(g, cross, p, near, scratch) as u64).saturating_sub(1)
}

/// `|N(a) ∩ N(b)|` in the cross-graph for two same-side vertices, marking
/// `N(a)` in the scratch and probing it with `N(b)`.
fn common_cross_neighbors<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    a: VertexId,
    b: VertexId,
    scratch: &mut WedgeScratch,
) -> usize {
    scratch.reset_for(g.vertex_count());
    for u in cross.cross_neighbors(g, a) {
        scratch.mark(u);
    }
    cross.cross_neighbors(g, b).filter(|&u| scratch.contains(u)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::{butterfly_degrees, ButterflyCounts};
    use bcc_graph::{GraphBuilder, GraphView, Label, LabeledGraph};
    use rand::{Rng, SeedableRng};

    fn cross01() -> BipartiteCross {
        BipartiteCross::new(Label(0), Label(1))
    }

    /// The Figure 3 bipartite subgraph of the paper (used by Example 6):
    /// L = {v1, v2, v3}, R = {u1..u9} with the example's cross edges.
    fn figure3() -> (LabeledGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..3).map(|i| b.add_named_vertex(&format!("v{}", i + 1), "L")).collect();
        let r: Vec<_> = (0..9).map(|i| b.add_named_vertex(&format!("u{}", i + 1), "R")).collect();
        // Edges chosen so that χ(v1)=χ(v3)=6 and χ(u2)=χ(u3)=χ(u5)=χ(u6)=3,
        // the non-zero butterfly degrees quoted in Example 5.
        // v1 and v3 share cross neighbors {u2, u3, u5, u6}; v2 has {u1}.
        for &u in &[1usize, 2, 4, 5] {
            b.add_edge(l[0], r[u]);
            b.add_edge(l[2], r[u]);
        }
        b.add_edge(l[1], r[0]);
        let g = b.build();
        (g, l, r)
    }

    #[test]
    fn figure3_butterfly_degrees_match_example5() {
        let (g, l, r) = figure3();
        let view = GraphView::new(&g);
        let chi = butterfly_degrees(&view, cross01());
        assert_eq!(chi[l[0].index()], 6, "χ(v1) = 6");
        assert_eq!(chi[l[2].index()], 6, "χ(v3) = 6");
        for &u in &[1usize, 2, 4, 5] {
            assert_eq!(chi[r[u].index()], 3, "χ(u{}) = 3", u + 1);
        }
        assert_eq!(chi[l[1].index()], 0);
        assert_eq!(chi[r[0].index()], 0);
    }

    #[test]
    fn example6_same_label_update() {
        // Deleting u6 (same side as leader u2): common neighbors {v1, v3},
        // α = 2 → χ(u2) drops by C(2,2)... C(2,2)=1: 3 → 2.
        let (g, _l, r) = figure3();
        let view = GraphView::new(&g);
        let u2 = r[1];
        let u6 = r[5];
        let dec = leader_decrement(&view, cross01(), u2, u6);
        assert_eq!(dec, 1);
    }

    #[test]
    fn example6_cross_label_update() {
        // Deleting u6 with leader v1 (opposite sides, adjacent): β = 3,
        // χ(v1): 6 → 3.
        let (g, l, r) = figure3();
        let view = GraphView::new(&g);
        let dec = leader_decrement(&view, cross01(), l[0], r[5]);
        assert_eq!(dec, 3);
    }

    #[test]
    fn non_adjacent_cross_deletion_costs_nothing() {
        let (g, l, r) = figure3();
        let view = GraphView::new(&g);
        // u1 is only adjacent to v2; deleting it cannot affect v1.
        let dec = leader_decrement(&view, cross01(), l[0], r[0]);
        assert_eq!(dec, 0);
    }

    #[test]
    fn update_matches_recount_randomized() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..30 {
            let mut b = GraphBuilder::new();
            let left: Vec<_> = (0..7).map(|_| b.add_vertex("L")).collect();
            let right: Vec<_> = (0..7).map(|_| b.add_vertex("R")).collect();
            for &x in &left {
                for &y in &right {
                    if rng.gen_bool(0.4) {
                        b.add_edge(x, y);
                    }
                }
            }
            let g = b.build();
            let mut view = GraphView::new(&g);
            let cross = cross01();
            let before = butterfly_degrees(&view, cross);
            // Pick a leader and a victim on random sides.
            let all: Vec<VertexId> = left.iter().chain(&right).copied().collect();
            let p = all[rng.gen_range(0..all.len())];
            let mut v = all[rng.gen_range(0..all.len())];
            while v == p {
                v = all[rng.gen_range(0..all.len())];
            }
            let dec = leader_decrement(&view, cross, p, v);
            view.remove_vertex(v);
            let after = butterfly_degrees(&view, cross);
            assert_eq!(
                before[p.index()] - dec,
                after[p.index()],
                "trial {trial}: χ(p) {} − {dec} should equal {}",
                before[p.index()],
                after[p.index()]
            );
        }
    }

    #[test]
    fn figure3_edge_decrements() {
        // Butterflies containing the edge (v1, u2) are {v1, v3} × {u2, x}
        // for x ∈ {u3, u5, u6}: three of them.
        let (g, l, r) = figure3();
        let view = GraphView::new(&g);
        let (v1, v3, u2, u3, u1) = (l[0], l[2], r[1], r[2], r[0]);
        assert_eq!(edge_decrement(&view, cross01(), v1, v1, u2), 3, "endpoint v1");
        assert_eq!(edge_decrement(&view, cross01(), u2, v1, u2), 3, "endpoint u2");
        assert_eq!(edge_decrement(&view, cross01(), v3, v1, u2), 3, "wing v3");
        assert_eq!(edge_decrement(&view, cross01(), u3, v1, u2), 1, "wing u3");
        assert_eq!(edge_decrement(&view, cross01(), u1, v1, u2), 0, "u1 closes no 4-cycle");
        assert_eq!(edge_decrement(&view, cross01(), l[1], v1, u2), 0, "v2 closes no 4-cycle");
    }

    #[test]
    fn edge_decrement_matches_recount_randomized() {
        use bcc_graph::{apply_change, EdgeChange, EdgeOp};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for trial in 0..30 {
            let mut b = GraphBuilder::new();
            let left: Vec<_> = (0..6).map(|_| b.add_vertex("L")).collect();
            let right: Vec<_> = (0..6).map(|_| b.add_vertex("R")).collect();
            for &x in &left {
                for &y in &right {
                    if rng.gen_bool(0.45) {
                        b.add_edge(x, y);
                    }
                }
            }
            let g = b.build();
            let cross_edges: Vec<(VertexId, VertexId)> = g.edges().collect();
            if cross_edges.is_empty() {
                continue;
            }
            let (u, v) = cross_edges[rng.gen_range(0..cross_edges.len())];
            let shrunk =
                apply_change(&g, &EdgeChange { u, v, op: EdgeOp::Remove });
            let cross = cross01();
            let view = GraphView::new(&g);
            let before = butterfly_degrees(&view, cross);
            let after = butterfly_degrees(&GraphView::new(&shrunk), cross);
            for p in g.vertices() {
                assert_eq!(
                    before[p.index()] - edge_decrement(&view, cross, p, u, v),
                    after[p.index()],
                    "trial {trial}: χ({p}) delta for edge ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn counts_struct_agrees_with_figure3() {
        let (g, l, _r) = figure3();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross01());
        assert_eq!(counts.max_left, 6);
        assert_eq!(counts.max_right, 3);
        assert_eq!(counts.side_argmax(&view, g.label(l[0])).map(|v| counts.chi(v)), Some(6));
    }
}
