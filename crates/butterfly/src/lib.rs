//! Butterfly (2×2 biclique) analytics on the bipartite cross-graph between
//! two label groups.
//!
//! The BCC model quantifies cross-group interaction with *butterflies*
//! (Definition 2): complete 2×2 bicliques across the two labeled groups.
//! This crate implements:
//!
//! * [`counting`] — the per-vertex butterfly-degree algorithm of the paper's
//!   Algorithm 3 on a dense epoch-stamped wedge scratch (plus a BFC-VP-style
//!   vertex-priority per-vertex variant and global counters in the style of
//!   Wang et al. [41]; the seed's hash-map kernel is retained as the
//!   differential reference);
//! * [`update`] — Algorithm 7, the O(d²) butterfly-degree *update* for a
//!   leader vertex when a single vertex is deleted;
//! * [`leader`] — Algorithm 6, leader-pair identification by binary search
//!   over the butterfly-degree threshold within ρ hops of a query vertex;
//! * [`approx`] — randomized estimators (pair sampling, edge
//!   sparsification) in the style of Sanei-Mehri et al. [32].
//!
//! ```
//! use bcc_graph::{GraphBuilder, GraphView};
//! use bcc_butterfly::{BipartiteCross, ButterflyCounts};
//!
//! // One butterfly: {l0, l1} × {r0, r1}.
//! let mut b = GraphBuilder::new();
//! let l0 = b.add_vertex("L");
//! let l1 = b.add_vertex("L");
//! let r0 = b.add_vertex("R");
//! let r1 = b.add_vertex("R");
//! for (x, y) in [(l0, r0), (l0, r1), (l1, r0), (l1, r1)] {
//!     b.add_edge(x, y);
//! }
//! let g = b.build();
//!
//! let view = GraphView::new(&g);
//! let counts = ButterflyCounts::compute(&view, BipartiteCross::new(g.label(l0), g.label(r0)));
//! assert_eq!(counts.chi(l0), 1);
//! assert_eq!(counts.total(), 1);
//! assert!(counts.satisfies_leader_condition(1));
//! ```

pub mod approx;
pub mod bipartite;
pub mod counting;
pub mod leader;
pub mod update;

pub use approx::{approx_total_butterflies_espar, approx_total_butterflies_pairs};
pub use bipartite::BipartiteCross;
pub use counting::{
    brute_force_butterfly_degrees, butterfly_degree_of, butterfly_degree_of_with,
    butterfly_degrees, butterfly_degrees_hash, butterfly_degrees_priority, total_butterflies,
    total_butterflies_priority, ButterflyCounts,
};
pub use leader::{identify_leader, LeaderConfig};
pub use update::{edge_decrement, edge_decrement_with, leader_decrement, leader_decrement_with};
