//! Randomized approximate butterfly counting.
//!
//! The paper's related work (Section 2) cites the sampling estimators of
//! Sanei-Mehri et al. [32] as the standard way to trade accuracy for speed
//! when exact global counting is too expensive. This module implements two
//! of those estimators over the live cross-graph:
//!
//! * **pair sampling** — sample same-side vertex pairs `{v, w}` uniformly;
//!   each pair contributes `C(|N(v) ∩ N(w)|, 2)` butterflies, so scaling the
//!   sampled sum by `#pairs / samples` is unbiased;
//! * **edge sparsification (ESpar)** — keep each cross edge independently
//!   with probability `p` and count exactly on the sparsified graph; each
//!   butterfly survives with probability `p⁴`, so `count / p⁴` is unbiased.
//!
//! Both take an explicit seed so estimates are reproducible.

use bcc_graph::{GraphView, VertexId, WedgeScratch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::bipartite::BipartiteCross;
use crate::counting::choose2;

/// Unbiased butterfly-count estimate by uniform same-side pair sampling.
///
/// `samples` controls accuracy: the estimator averages `C(common, 2)` over
/// that many uniformly drawn same-side pairs and rescales. With 0 samples or
/// fewer than two side vertices the estimate is 0.
pub fn approx_total_butterflies_pairs(
    view: &GraphView<'_>,
    cross: BipartiteCross,
    samples: usize,
    seed: u64,
) -> f64 {
    // Sample pairs on the smaller side (fewer total pairs → lower variance
    // for the same budget).
    let left: Vec<VertexId> = cross.side_vertices(view, cross.left).collect();
    let right: Vec<VertexId> = cross.side_vertices(view, cross.right).collect();
    let side = if left.len() <= right.len() { &left } else { &right };
    let n = side.len();
    if n < 2 || samples == 0 {
        return 0.0;
    }
    let total_pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut scratch = WedgeScratch::new(view.graph().vertex_count());
    let mut acc = 0.0f64;
    for _ in 0..samples {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let (v, w) = (side[i], side[j]);
        scratch.reset_for(view.graph().vertex_count());
        for u in cross.cross_neighbors(view, v) {
            scratch.mark(u);
        }
        let common =
            cross.cross_neighbors(view, w).filter(|&u| scratch.contains(u)).count() as u64;
        acc += choose2(common) as f64;
    }
    acc / samples as f64 * total_pairs
}

/// Unbiased butterfly-count estimate by edge sparsification: keep each cross
/// edge with probability `p`, count exactly among kept edges, rescale by
/// `p⁻⁴`.
pub fn approx_total_butterflies_espar(
    view: &GraphView<'_>,
    cross: BipartiteCross,
    p: f64,
    seed: u64,
) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "keep probability must be in (0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = view.graph().vertex_count();
    // Sample the kept cross edges (each undirected edge decided once, from
    // its left endpoint, in ascending id order — the sampling sequence is
    // part of the per-seed contract) into dense adjacency, both directions.
    let mut kept_left: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
    let mut right_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in cross.side_vertices(view, cross.left) {
        let kept_neighbors: Vec<VertexId> = cross
            .cross_neighbors(view, v)
            .filter(|_| rng.gen_bool(p))
            .collect();
        if !kept_neighbors.is_empty() {
            for &u in &kept_neighbors {
                right_adj[u.index()].push(v);
            }
            kept_left.push((v, kept_neighbors));
        }
    }
    // Exact count restricted to kept edges: wedge-count from the left side
    // over one reused scratch. Each kept butterfly has two left vertices,
    // so the incremental pair sum counts it exactly twice.
    let mut scratch = WedgeScratch::new(n);
    let mut twice = 0u64;
    for (v, neighbors) in &kept_left {
        scratch.reset_for(n);
        for u in neighbors {
            for &w in &right_adj[u.index()] {
                if w != *v {
                    twice += (scratch.bump(w) - 1) as u64;
                }
            }
        }
    }
    (twice / 2) as f64 / p.powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::total_butterflies;
    use bcc_graph::{GraphBuilder, Label, LabeledGraph};
    use rand::Rng;

    fn random_bipartite(l: usize, r: usize, p: f64, seed: u64) -> LabeledGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let left: Vec<_> = (0..l).map(|_| b.add_vertex("L")).collect();
        let right: Vec<_> = (0..r).map(|_| b.add_vertex("R")).collect();
        for &x in &left {
            for &y in &right {
                if rng.gen_bool(p) {
                    b.add_edge(x, y);
                }
            }
        }
        b.build()
    }

    fn cross() -> BipartiteCross {
        BipartiteCross::new(Label(0), Label(1))
    }

    #[test]
    fn pair_sampling_exhaustive_is_exact_in_expectation() {
        let g = random_bipartite(12, 12, 0.4, 3);
        let view = GraphView::new(&g);
        let exact = total_butterflies(&view, cross()) as f64;
        // Averaging several seeds should land near the exact count.
        let trials = 16;
        let mean: f64 = (0..trials)
            .map(|s| approx_total_butterflies_pairs(&view, cross(), 600, s))
            .sum::<f64>()
            / trials as f64;
        let tolerance = (exact * 0.25).max(5.0);
        assert!(
            (mean - exact).abs() <= tolerance,
            "estimate {mean} too far from exact {exact}"
        );
    }

    #[test]
    fn espar_estimates_track_exact() {
        let g = random_bipartite(14, 14, 0.4, 9);
        let view = GraphView::new(&g);
        let exact = total_butterflies(&view, cross()) as f64;
        let trials = 24;
        let mean: f64 = (0..trials)
            .map(|s| approx_total_butterflies_espar(&view, cross(), 0.7, s))
            .sum::<f64>()
            / trials as f64;
        let tolerance = (exact * 0.3).max(8.0);
        assert!(
            (mean - exact).abs() <= tolerance,
            "estimate {mean} too far from exact {exact}"
        );
    }

    #[test]
    fn espar_with_p_one_is_exact() {
        let g = random_bipartite(10, 10, 0.5, 1);
        let view = GraphView::new(&g);
        let exact = total_butterflies(&view, cross()) as f64;
        let estimate = approx_total_butterflies_espar(&view, cross(), 1.0, 0);
        assert_eq!(estimate, exact);
    }

    #[test]
    fn degenerate_inputs_yield_zero() {
        let g = random_bipartite(1, 1, 1.0, 0);
        let view = GraphView::new(&g);
        assert_eq!(approx_total_butterflies_pairs(&view, cross(), 100, 0), 0.0);
        assert_eq!(approx_total_butterflies_pairs(&view, cross(), 0, 0), 0.0);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let g = random_bipartite(10, 10, 0.4, 5);
        let view = GraphView::new(&g);
        let a = approx_total_butterflies_pairs(&view, cross(), 50, 123);
        let b = approx_total_butterflies_pairs(&view, cross(), 50, 123);
        assert_eq!(a, b);
        let c = approx_total_butterflies_espar(&view, cross(), 0.5, 7);
        let d = approx_total_butterflies_espar(&view, cross(), 0.5, 7);
        assert_eq!(c, d);
    }
}
