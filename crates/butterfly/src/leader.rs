//! Algorithm 6 — leader-pair identification.
//!
//! A *leader* is a vertex whose butterfly degree is large enough (w.r.t. a
//! threshold `b_p`) that it keeps certifying the cross-group interaction
//! condition (Definition 4(4)) across many peeling iterations, sparing the
//! search from global butterfly recounts. Observations 1–2 of the paper:
//! prefer vertices with large χ *and* small query distance. The algorithm
//! binary-searches `b_p` downward from `b_max / 2` toward `b`, scanning the
//! query vertex's ρ-hop neighborhood inside its own label group.

use bcc_graph::{GraphView, Label, VertexId};

/// Tuning knobs of Algorithm 6.
#[derive(Clone, Copy, Debug)]
pub struct LeaderConfig {
    /// Search radius ρ: leaders are looked up within ρ hops of the query
    /// vertex (hops inside the query's label group).
    pub rho: u32,
    /// The BCC butterfly threshold b — the floor of the `b_p` halving loop.
    pub b: u64,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        // ρ = 3 follows Example 5 of the paper.
        LeaderConfig { rho: 3, b: 1 }
    }
}

/// Algorithm 6: picks a leader vertex for the side `side` containing query
/// vertex `q`. `chi` must hold current butterfly degrees for that side
/// (e.g. from [`crate::ButterflyCounts`]).
///
/// Returns `q` itself when no better-certified vertex exists in the ρ-hop
/// neighborhood (line 16 of the algorithm) — callers must then fall back to
/// checking the side maximum directly.
pub fn identify_leader(
    view: &GraphView<'_>,
    side: Label,
    q: VertexId,
    chi: &[u64],
    config: LeaderConfig,
) -> VertexId {
    debug_assert_eq!(view.graph().label(q), side, "query must belong to the side");
    let p = q;
    let b_max = view
        .alive_vertices()
        .filter(|&v| view.graph().label(v) == side)
        .map(|v| chi[v.index()])
        .max()
        .unwrap_or(0);
    if chi[p.index()] as f64 > b_max as f64 / 2.0 {
        return p; // the query vertex is itself leader-biased
    }
    if b_max < config.b {
        return p; // no vertex can certify the condition; caller re-checks
    }
    // Group the side's vertices by hop distance from q (within the label
    // group) once; the b_p halving loop then re-scans cheaply. The paper's
    // b_p sequence is {b_max/2, b_max/4, ..., b}: halving, floored at b.
    let rings = distance_rings(view, side, q, config.rho);
    let floor = config.b as f64;
    let mut b_p = (b_max as f64 / 2.0).max(floor);
    loop {
        for ring in &rings {
            if let Some(&s) = ring.iter().find(|&&s| chi[s.index()] as f64 >= b_p) {
                return s;
            }
        }
        if b_p <= floor {
            break;
        }
        b_p = (b_p / 2.0).max(floor);
    }
    p
}

/// Vertices of `side` grouped by hop distance `1..=rho` from `q`, where hops
/// only traverse same-label alive edges.
fn distance_rings(view: &GraphView<'_>, side: Label, q: VertexId, rho: u32) -> Vec<Vec<VertexId>> {
    let mut rings: Vec<Vec<VertexId>> = vec![Vec::new(); rho as usize];
    if !view.is_alive(q) {
        return rings;
    }
    let n = view.graph().vertex_count();
    let mut dist = vec![u32::MAX; n];
    dist[q.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(q);
    while let Some(v) = queue.pop_front() {
        let next = dist[v.index()] + 1;
        if next > rho {
            continue;
        }
        for u in view.same_label_neighbors(v) {
            debug_assert_eq!(view.graph().label(u), side);
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = next;
                rings[(next - 1) as usize].push(u);
                queue.push_back(u);
            }
        }
    }
    rings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteCross;
    use crate::counting::butterfly_degrees;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// Figure 3 of the paper plus the same-label edges needed for the
    /// Example 5 walk-through (ql adjacent to v1, v2, v3; qr adjacent to
    /// u1, u2, u3, u9).
    fn figure3_full() -> (LabeledGraph, VertexId, VertexId) {
        let mut b = GraphBuilder::new();
        let ql = b.add_named_vertex("ql", "L");
        let v: Vec<_> = (1..=3).map(|i| b.add_named_vertex(&format!("v{i}"), "L")).collect();
        let qr = b.add_named_vertex("qr", "R");
        let u: Vec<_> = (1..=9).map(|i| b.add_named_vertex(&format!("u{i}"), "R")).collect();
        // Same-label edges.
        for &x in &v {
            b.add_edge(ql, x);
        }
        for &i in &[0usize, 1, 2, 8] {
            b.add_edge(qr, u[i]);
        }
        // Cross edges giving χ(v1)=χ(v3)=6, χ(u2)=χ(u3)=χ(u5)=χ(u6)=3.
        for &i in &[1usize, 2, 4, 5] {
            b.add_edge(v[0], u[i]);
            b.add_edge(v[2], u[i]);
        }
        b.add_edge(v[1], u[0]);
        let g = b.build();
        (g, ql, qr)
    }

    #[test]
    fn example5_left_leader_is_v1() {
        let (g, ql, _qr) = figure3_full();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(ql), bcc_graph::Label(1));
        let chi = butterfly_degrees(&view, cross);
        let leader = identify_leader(&view, g.label(ql), ql, &chi, LeaderConfig { rho: 3, b: 1 });
        // v1 and v3 both have χ = 6 ≥ b_p = 3; v1 is found first among ql's
        // 1-hop neighbors (Example 5 returns v1).
        assert_eq!(g.vertex_name(leader), "v1");
    }

    #[test]
    fn example5_right_leader_is_u2() {
        let (g, _ql, qr) = figure3_full();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(bcc_graph::Label(0), g.label(qr));
        let chi = butterfly_degrees(&view, cross);
        let leader = identify_leader(&view, g.label(qr), qr, &chi, LeaderConfig { rho: 3, b: 1 });
        // b_max = 3 on the right, b_p = 1.5; u2 (χ=3) is qr's 1-hop neighbor.
        assert_eq!(g.vertex_name(leader), "u2");
    }

    #[test]
    fn leader_biased_query_returns_itself() {
        let (g, ql, _) = figure3_full();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(ql), bcc_graph::Label(1));
        let chi = butterfly_degrees(&view, cross);
        let v1 = g.vertex_by_name("v1").unwrap();
        let leader = identify_leader(&view, g.label(v1), v1, &chi, LeaderConfig::default());
        assert_eq!(leader, v1, "χ(v1)=6 > b_max/2=3 → returns the query itself");
    }

    #[test]
    fn falls_back_to_query_when_no_butterflies() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        b.add_edge(a0, a1);
        b.add_edge(a0, c0);
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(a0), g.label(c0));
        let chi = butterfly_degrees(&view, cross);
        let leader = identify_leader(&view, g.label(a1), a1, &chi, LeaderConfig::default());
        assert_eq!(leader, a1);
    }

    #[test]
    fn respects_rho_radius() {
        // Chain q - x - hub, where hub holds all the butterflies. With ρ=1
        // the hub is invisible; with ρ=2 it is found.
        let mut b = GraphBuilder::new();
        let q = b.add_vertex("L");
        let x = b.add_vertex("L");
        let hub = b.add_vertex("L");
        let l2 = b.add_vertex("L");
        let r: Vec<_> = (0..2).map(|_| b.add_vertex("R")).collect();
        b.add_edge(q, x);
        b.add_edge(x, hub);
        for &rr in &r {
            b.add_edge(hub, rr);
            b.add_edge(l2, rr);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(q), g.label(r[0]));
        let chi = butterfly_degrees(&view, cross);
        assert_eq!(chi[hub.index()], 1);
        let near = identify_leader(&view, g.label(q), q, &chi, LeaderConfig { rho: 1, b: 1 });
        assert_eq!(near, q, "hub out of ρ=1 reach");
        let far = identify_leader(&view, g.label(q), q, &chi, LeaderConfig { rho: 2, b: 1 });
        assert_eq!(far, hub);
    }
}
