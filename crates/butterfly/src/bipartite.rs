//! The bipartite cross-graph descriptor.
//!
//! Algorithm 2 line 4 forms `B = (V_B, E_B)` with `V_B = V_L ∪ V_R` and
//! `E_B = (V_L × V_R) ∩ E`. We never materialize `B`: all butterfly routines
//! traverse any live [`bcc_graph::GraphRead`] source — the peeling
//! algorithms pass a [`bcc_graph::GraphView`], the incremental maintenance
//! path a bare snapshot or [`bcc_graph::OverlayGraph`] — and filter edges by
//! label on the fly, so `B` shrinks automatically as the search peels
//! vertices. This struct names the two sides and provides the shared
//! iteration helpers.

use bcc_graph::{GraphRead, Label, VertexId};

/// The two sides of a bipartite cross-graph between label groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BipartiteCross {
    /// Label of the left group (`V_L`).
    pub left: Label,
    /// Label of the right group (`V_R`).
    pub right: Label,
}

impl BipartiteCross {
    /// Creates the descriptor. The two labels must differ.
    pub fn new(left: Label, right: Label) -> Self {
        assert_ne!(left, right, "a bipartite cross-graph needs two distinct labels");
        BipartiteCross { left, right }
    }

    /// The opposite side of `label`, or `None` if `label` is not a side.
    #[inline]
    pub fn opposite(&self, label: Label) -> Option<Label> {
        if label == self.left {
            Some(self.right)
        } else if label == self.right {
            Some(self.left)
        } else {
            None
        }
    }

    /// Returns `true` if `v` belongs to either side.
    #[inline]
    pub fn contains<G: GraphRead>(&self, g: &G, v: VertexId) -> bool {
        let l = g.label(v);
        l == self.left || l == self.right
    }

    /// Iterates `v`'s live neighbors on the opposite side (its neighborhood
    /// in `B`). Empty if `v` is on neither side.
    pub fn cross_neighbors<'a, G: GraphRead>(
        &self,
        g: &'a G,
        v: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'a {
        let other = self.opposite(g.label(v));
        g.neighbors_iter(v)
            .filter(move |&u| other == Some(g.label(u)))
    }

    /// `v`'s degree in `B` (live cross neighbors on the opposite side).
    pub fn cross_degree<G: GraphRead>(&self, g: &G, v: VertexId) -> usize {
        self.cross_neighbors(g, v).count()
    }

    /// Iterates the live vertices of one side.
    pub fn side_vertices<'a, G: GraphRead>(
        &self,
        g: &'a G,
        side: Label,
    ) -> impl Iterator<Item = VertexId> + 'a {
        g.vertices().filter(move |&v| g.label(v) == side)
    }

    /// Number of live cross edges in `B`.
    pub fn edge_count<G: GraphRead>(&self, g: &G) -> usize {
        self.side_vertices(g, self.left)
            .map(|v| self.cross_degree(g, v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, GraphView};

    #[test]
    fn sides_and_opposites() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        let z0 = b.add_vertex("Z");
        b.add_edge(a0, a1); // homogeneous, not in B
        b.add_edge(a0, c0); // cross edge in B
        b.add_edge(a0, z0); // cross edge to a non-side label, not in B
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(a0), g.label(c0));

        assert_eq!(cross.opposite(g.label(a0)), Some(g.label(c0)));
        assert_eq!(cross.opposite(g.label(z0)), None);
        assert!(cross.contains(&view, a1));
        assert!(!cross.contains(&view, z0));
        assert_eq!(cross.cross_neighbors(&view, a0).collect::<Vec<_>>(), vec![c0]);
        assert_eq!(cross.cross_degree(&view, a1), 0);
        assert_eq!(cross.edge_count(&view), 1);
    }

    #[test]
    fn respects_deletions() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        let c1 = b.add_vertex("B");
        b.add_edge(a0, c0);
        b.add_edge(a0, c1);
        let g = b.build();
        let mut view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(a0), g.label(c0));
        assert_eq!(cross.cross_degree(&view, a0), 2);
        view.remove_vertex(c1);
        assert_eq!(cross.cross_degree(&view, a0), 1);
        assert_eq!(cross.edge_count(&view), 1);
    }

    #[test]
    #[should_panic(expected = "distinct labels")]
    fn rejects_equal_labels() {
        BipartiteCross::new(Label(0), Label(0));
    }
}
