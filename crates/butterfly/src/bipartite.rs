//! The bipartite cross-graph descriptor.
//!
//! Algorithm 2 line 4 forms `B = (V_B, E_B)` with `V_B = V_L ∪ V_R` and
//! `E_B = (V_L × V_R) ∩ E`. We never materialize `B`: all butterfly routines
//! traverse the live [`bcc_graph::GraphView`] and filter edges by label on
//! the fly, so `B` shrinks automatically as the search peels vertices. This
//! struct names the two sides and provides the shared iteration helpers.

use bcc_graph::{GraphView, Label, VertexId};

/// The two sides of a bipartite cross-graph between label groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BipartiteCross {
    /// Label of the left group (`V_L`).
    pub left: Label,
    /// Label of the right group (`V_R`).
    pub right: Label,
}

impl BipartiteCross {
    /// Creates the descriptor. The two labels must differ.
    pub fn new(left: Label, right: Label) -> Self {
        assert_ne!(left, right, "a bipartite cross-graph needs two distinct labels");
        BipartiteCross { left, right }
    }

    /// The opposite side of `label`, or `None` if `label` is not a side.
    #[inline]
    pub fn opposite(&self, label: Label) -> Option<Label> {
        if label == self.left {
            Some(self.right)
        } else if label == self.right {
            Some(self.left)
        } else {
            None
        }
    }

    /// Returns `true` if `v` belongs to either side.
    #[inline]
    pub fn contains(&self, view: &GraphView<'_>, v: VertexId) -> bool {
        let l = view.graph().label(v);
        l == self.left || l == self.right
    }

    /// Iterates `v`'s alive neighbors on the opposite side (its neighborhood
    /// in `B`). Empty if `v` is on neither side.
    pub fn cross_neighbors<'a>(
        &self,
        view: &'a GraphView<'_>,
        v: VertexId,
    ) -> impl Iterator<Item = VertexId> + 'a {
        let other = self.opposite(view.graph().label(v));
        view.neighbors(v)
            .filter(move |&u| other == Some(view.graph().label(u)))
    }

    /// `v`'s degree in `B` (alive cross neighbors on the opposite side).
    pub fn cross_degree(&self, view: &GraphView<'_>, v: VertexId) -> usize {
        self.cross_neighbors(view, v).count()
    }

    /// Iterates the alive vertices of one side.
    pub fn side_vertices<'a>(
        &self,
        view: &'a GraphView<'_>,
        side: Label,
    ) -> impl Iterator<Item = VertexId> + 'a {
        view.alive_vertices()
            .filter(move |&v| view.graph().label(v) == side)
    }

    /// Number of alive cross edges in `B`.
    pub fn edge_count(&self, view: &GraphView<'_>) -> usize {
        self.side_vertices(view, self.left)
            .map(|v| self.cross_degree(view, v))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    #[test]
    fn sides_and_opposites() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        let z0 = b.add_vertex("Z");
        b.add_edge(a0, a1); // homogeneous, not in B
        b.add_edge(a0, c0); // cross edge in B
        b.add_edge(a0, z0); // cross edge to a non-side label, not in B
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(a0), g.label(c0));

        assert_eq!(cross.opposite(g.label(a0)), Some(g.label(c0)));
        assert_eq!(cross.opposite(g.label(z0)), None);
        assert!(cross.contains(&view, a1));
        assert!(!cross.contains(&view, z0));
        assert_eq!(cross.cross_neighbors(&view, a0).collect::<Vec<_>>(), vec![c0]);
        assert_eq!(cross.cross_degree(&view, a1), 0);
        assert_eq!(cross.edge_count(&view), 1);
    }

    #[test]
    fn respects_deletions() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        let c1 = b.add_vertex("B");
        b.add_edge(a0, c0);
        b.add_edge(a0, c1);
        let g = b.build();
        let mut view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(a0), g.label(c0));
        assert_eq!(cross.cross_degree(&view, a0), 2);
        view.remove_vertex(c1);
        assert_eq!(cross.cross_degree(&view, a0), 1);
        assert_eq!(cross.edge_count(&view), 1);
    }

    #[test]
    #[should_panic(expected = "distinct labels")]
    fn rejects_equal_labels() {
        BipartiteCross::new(Label(0), Label(0));
    }
}
