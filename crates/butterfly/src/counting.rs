//! Butterfly counting (Algorithm 3 and global variants).
//!
//! The butterfly degree χ(v) (Definition 3) is
//! `χ(v) = Σ_{w ∈ N²_v} C(|N(v) ∩ N(w)|, 2)` where neighborhoods are taken
//! in the bipartite cross-graph. Algorithm 3 computes it by counting 2-hop
//! paths per endpoint instead of doing pairwise set intersections.
//!
//! ## Kernels
//!
//! The hot kernels accumulate wedge endpoints in a dense epoch-stamped
//! [`WedgeScratch`] (flat `u32` counters indexed by vertex id, O(1) logical
//! clear — no hashing, no per-vertex allocation), and fold the binomial sum
//! incrementally: raising a counter from `c − 1` to `c` adds exactly
//! `C(c, 2) − C(c − 1, 2) = c − 1` new pairs, so one pass over the wedges
//! yields `Σ_w C(P[w], 2)` with no second pass over the counters.
//!
//! * [`butterfly_degrees`] / [`butterfly_degree_of`] — Algorithm 3 on the
//!   flat scratch;
//! * [`butterfly_degrees_priority`] — the same per-vertex counts via
//!   vertex-priority wedge processing in the style of Wang et al. [41]
//!   (BFC-VP): every butterfly is charged to its highest-priority vertex,
//!   bounding repeated wedge work on skewed degree distributions;
//! * [`total_butterflies`] / [`total_butterflies_priority`] — exact global
//!   counts on the same scratch;
//! * [`butterfly_degrees_hash`] — the seed's `FxHashMap` kernel, retained
//!   verbatim as the differential reference for tests and the
//!   `index_build` benchmark.
//!
//! All counting kernels are generic over [`GraphRead`], so they run
//! unchanged on a CSR snapshot, a peeling [`bcc_graph::GraphView`], or a
//! mid-batch [`bcc_graph::OverlayGraph`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bcc_graph::{GraphRead, GraphView, Label, VertexId, WedgeScratch};
use rustc_hash::FxHashMap;

use crate::bipartite::BipartiteCross;

/// Vertices handed to one parallel counting worker per claim of the atomic
/// cursor — mirrors the offline build's χ chunking: small enough that
/// skewed wedge costs balance, large enough that the cursor is uncontended.
const COUNT_CHUNK: usize = 256;

/// `C(c, 2)` in u64.
#[inline]
pub(crate) fn choose2(c: u64) -> u64 {
    c * c.saturating_sub(1) / 2
}

/// Per-vertex butterfly degrees over the cross-graph of `cross`, plus the
/// per-side maxima that Algorithm 2 (lines 6–7) needs.
#[derive(Clone, Debug)]
pub struct ButterflyCounts {
    /// The two sides these counts were computed for.
    pub cross: BipartiteCross,
    /// χ(v) per vertex id (0 for vertices outside the cross-graph).
    pub chi: Vec<u64>,
    /// Maximum χ over the left side (`max_l` of Algorithm 2).
    pub max_left: u64,
    /// Maximum χ over the right side (`max_r` of Algorithm 2).
    pub max_right: u64,
}

impl ButterflyCounts {
    /// Runs Algorithm 3 on the live cross-graph between `cross.left` and
    /// `cross.right` inside `view`.
    pub fn compute(view: &GraphView<'_>, cross: BipartiteCross) -> Self {
        let chi = butterfly_degrees(view, cross);
        let (mut max_left, mut max_right) = (0u64, 0u64);
        let graph = view.graph();
        for v in view.alive_vertices() {
            let label = graph.label(v);
            if label == cross.left {
                max_left = max_left.max(chi[v.index()]);
            } else if label == cross.right {
                max_right = max_right.max(chi[v.index()]);
            }
        }
        ButterflyCounts {
            cross,
            chi,
            max_left,
            max_right,
        }
    }

    /// [`ButterflyCounts::compute`] across up to `threads` workers (`0` =
    /// all cores, `≤ 1` = the sequential reference path): the chi vector is
    /// split into disjoint [`COUNT_CHUNK`]-sized slices drained through an
    /// atomic cursor, each worker counting its vertices' wedges on its own
    /// [`WedgeScratch`]. Per-vertex χ is an independent exact computation
    /// into a disjoint output slot and the side maxima are folded afterward
    /// in ascending vertex order, so any thread count produces **the same
    /// counts bit for bit** (pinned by tests and the service differential
    /// suite).
    pub fn compute_with_threads(
        view: &GraphView<'_>,
        cross: BipartiteCross,
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        let n = view.graph().vertex_count();
        if threads <= 1 || n <= COUNT_CHUNK {
            return Self::compute(view, cross);
        }
        let mut chi = vec![0u64; n];
        // Each chunk slot is claimed by exactly one worker (the cursor never
        // hands an index out twice); the Mutex<Option<..>> expresses that
        // ownership transfer safely.
        let chunks: Vec<Mutex<Option<&mut [u64]>>> =
            chi.chunks_mut(COUNT_CHUNK).map(|c| Mutex::new(Some(c))).collect();
        let cursor = AtomicUsize::new(0);
        let tasks = chunks.len();
        let workers = threads.min(tasks);
        let worker = || {
            let mut scratch = WedgeScratch::new(n);
            loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= tasks {
                    break;
                }
                let slice =
                    chunks[idx].lock().unwrap().take().expect("chunk claimed exactly once");
                let start = idx * COUNT_CHUNK;
                for (off, out) in slice.iter_mut().enumerate() {
                    let v = VertexId((start + off) as u32);
                    // Dead vertices have no live neighbors and off-side
                    // vertices are rejected by the kernel — both yield 0,
                    // matching the sequential pass that skips them.
                    *out = butterfly_degree_of_with(view, cross, v, &mut scratch);
                }
            }
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(worker);
            }
            worker();
        });
        drop(chunks);
        let (mut max_left, mut max_right) = (0u64, 0u64);
        let graph = view.graph();
        for v in view.alive_vertices() {
            let label = graph.label(v);
            if label == cross.left {
                max_left = max_left.max(chi[v.index()]);
            } else if label == cross.right {
                max_right = max_right.max(chi[v.index()]);
            }
        }
        ButterflyCounts {
            cross,
            chi,
            max_left,
            max_right,
        }
    }

    /// χ(v).
    #[inline]
    pub fn chi(&self, v: VertexId) -> u64 {
        self.chi[v.index()]
    }

    /// Maximum χ on the side of `label` (panics if `label` is not a side).
    pub fn side_max(&self, label: Label) -> u64 {
        if label == self.cross.left {
            self.max_left
        } else if label == self.cross.right {
            self.max_right
        } else {
            panic!("label {label} is not a side of this cross-graph");
        }
    }

    /// The condition of Definition 4(4): both sides contain a vertex with
    /// χ ≥ b.
    pub fn satisfies_leader_condition(&self, b: u64) -> bool {
        self.max_left >= b && self.max_right >= b
    }

    /// Total number of butterflies: each butterfly contains 4 vertices, so
    /// `Σ χ(v) / 4`.
    pub fn total(&self) -> u64 {
        self.chi.iter().sum::<u64>() / 4
    }

    /// The vertex on `label`'s side attaining the side maximum, or `None`
    /// when the side contains **no butterflies** (max χ = 0): Definition
    /// 4(4) defines a leader by χ(v) ≥ b ≥ 1, so a χ = 0 vertex is never a
    /// leader and callers must not treat one as such.
    pub fn side_argmax(&self, view: &GraphView<'_>, label: Label) -> Option<VertexId> {
        let graph = view.graph();
        view.alive_vertices()
            .filter(|&v| graph.label(v) == label && self.chi[v.index()] > 0)
            .max_by_key(|&v| self.chi[v.index()])
    }
}

/// Algorithm 3: butterfly degree of every vertex in the cross-graph.
///
/// For each vertex `v`, counts 2-hop paths `v → u → w` (with `u` on the
/// opposite side and `w ≠ v` back on `v`'s side) into one reused
/// [`WedgeScratch`], folding `Σ_w C(P[w], 2)` incrementally.
pub fn butterfly_degrees<G: GraphRead>(g: &G, cross: BipartiteCross) -> Vec<u64> {
    let n = g.vertex_count();
    let mut chi = vec![0u64; n];
    let mut scratch = WedgeScratch::new(n);
    for v in g.vertices() {
        if cross.opposite(g.label(v)).is_none() {
            continue;
        }
        chi[v.index()] = butterfly_degree_of_with(g, cross, v, &mut scratch);
    }
    chi
}

/// Butterfly degree of a single vertex (the Algorithm 3 kernel restricted
/// to one vertex). Used when a leader must be re-validated without
/// recounting the whole side. Borrows a thread-local scratch; loops should
/// call [`butterfly_degree_of_with`] with an explicit one instead.
pub fn butterfly_degree_of<G: GraphRead>(g: &G, cross: BipartiteCross, v: VertexId) -> u64 {
    WedgeScratch::with_thread_local(|scratch| butterfly_degree_of_with(g, cross, v, scratch))
}

/// [`butterfly_degree_of`] on a caller-provided scratch (reused across an
/// entire traversal — the form every hot loop uses).
pub fn butterfly_degree_of_with<G: GraphRead>(
    g: &G,
    cross: BipartiteCross,
    v: VertexId,
    scratch: &mut WedgeScratch,
) -> u64 {
    if cross.opposite(g.label(v)).is_none() {
        return 0;
    }
    scratch.reset_for(g.vertex_count());
    let mut chi = 0u64;
    for u in cross.cross_neighbors(g, v) {
        for w in cross.cross_neighbors(g, u) {
            if w != v {
                chi += (scratch.bump(w) - 1) as u64;
            }
        }
    }
    chi
}

/// The seed's Algorithm 3 kernel — `FxHashMap` wedge accumulators —
/// retained bit-for-bit as the differential reference: the kernel tests and
/// the `index_build` benchmark pin the flat kernels against it (equal
/// output, and the flat kernel must be faster).
pub fn butterfly_degrees_hash<G: GraphRead>(g: &G, cross: BipartiteCross) -> Vec<u64> {
    let n = g.vertex_count();
    let mut chi = vec![0u64; n];
    let mut paths: FxHashMap<u32, u32> = FxHashMap::default();
    for v in g.vertices() {
        let Some(_) = cross.opposite(g.label(v)) else {
            continue;
        };
        paths.clear();
        for u in cross.cross_neighbors(g, v) {
            for w in cross.cross_neighbors(g, u) {
                if w != v {
                    *paths.entry(w.0).or_insert(0) += 1;
                }
            }
        }
        chi[v.index()] = paths.values().map(|&c| choose2(c as u64)).sum();
    }
    chi
}

/// The cross-degree of every vertex in `cross`, the priority key of the
/// vertex-priority kernels (0 for vertices outside the cross-graph).
fn cross_degrees<G: GraphRead>(g: &G, cross: BipartiteCross) -> Vec<u32> {
    let mut deg = vec![0u32; g.vertex_count()];
    for v in g.vertices() {
        if cross.contains(g, v) {
            deg[v.index()] = cross.cross_degree(g, v) as u32;
        }
    }
    deg
}

/// Per-vertex butterfly degrees via vertex-priority wedge processing
/// (BFC-VP, Wang et al. [41]): every butterfly is enumerated exactly once,
/// from its highest-priority vertex `u` (priority orders by cross degree,
/// then id), and its +1 is credited to all four members. High-degree hubs
/// are therefore never re-walked from their low-degree partners, which
/// bounds repeated wedge work on skewed degree distributions.
///
/// Exact — returns the same array as [`butterfly_degrees`], pinned by the
/// differential suites.
pub fn butterfly_degrees_priority<G: GraphRead>(g: &G, cross: BipartiteCross) -> Vec<u64> {
    let n = g.vertex_count();
    let mut chi = vec![0u64; n];
    let deg = cross_degrees(g, cross);
    let priority = |v: VertexId| (deg[v.index()], v.0);
    let mut scratch = WedgeScratch::new(n);
    // (mid, far) wedge pairs below the current start vertex, reused.
    let mut wedges: Vec<(u32, u32)> = Vec::new();
    for u in g.vertices() {
        if cross.opposite(g.label(u)).is_none() {
            continue;
        }
        scratch.reset_for(n);
        wedges.clear();
        let pu = priority(u);
        for v in cross.cross_neighbors(g, u) {
            if priority(v) >= pu {
                continue;
            }
            for w in cross.cross_neighbors(g, v) {
                if w != u && priority(w) < pu {
                    scratch.bump(w);
                    wedges.push((v.0, w.0));
                }
            }
        }
        // A far endpoint w with c wedges closes C(c, 2) butterflies with u;
        // each is one butterfly of u and of w, and each wedge mid v is in
        // c − 1 of them (one per other mid sharing the (u, w) pair).
        let mut du = 0u64;
        for &w in scratch.touched() {
            let pairs = choose2(scratch.count(VertexId(w)) as u64);
            du += pairs;
            chi[w as usize] += pairs;
        }
        chi[u.index()] += du;
        for &(v, w) in &wedges {
            chi[v as usize] += (scratch.count(VertexId(w)) - 1) as u64;
        }
    }
    chi
}

/// Exact global butterfly count. Each butterfly has exactly two vertices on
/// either side, so summing the Algorithm 3 per-vertex kernel over one side
/// counts every butterfly twice; the side is chosen to minimize the wedge
/// work `Σ C(deg, 2)` of the implied centers (the opposite side), and the
/// whole count runs on one reused scratch — no per-center allocation.
pub fn total_butterflies<G: GraphRead>(g: &G, cross: BipartiteCross) -> u64 {
    let wedge_cost = |side: Label| -> u64 {
        cross
            .side_vertices(g, side)
            .map(|v| choose2(cross.cross_degree(g, v) as u64))
            .sum()
    };
    // Wedges from side S route through centers on the opposite side: start
    // from the side whose *opposite* is cheaper.
    let start_side = if wedge_cost(cross.left) <= wedge_cost(cross.right) {
        cross.right
    } else {
        cross.left
    };
    let mut scratch = WedgeScratch::new(g.vertex_count());
    let mut twice = 0u64;
    for v in cross.side_vertices(g, start_side) {
        twice += butterfly_degree_of_with(g, cross, v, &mut scratch);
    }
    twice / 2
}

/// Exact global butterfly count with the vertex-priority wedge processing of
/// Wang et al. [41]: each butterfly is counted exactly once from its
/// highest-priority vertex, where priority orders by (cross degree, id).
/// High degree vertices are visited first, which bounds repeated wedge work
/// on skewed graphs.
pub fn total_butterflies_priority<G: GraphRead>(g: &G, cross: BipartiteCross) -> u64 {
    let n = g.vertex_count();
    let deg = cross_degrees(g, cross);
    let priority = |v: VertexId| (deg[v.index()], v.0);
    let mut scratch = WedgeScratch::new(n);
    let mut total = 0u64;
    for u in g.vertices() {
        if cross.opposite(g.label(u)).is_none() {
            continue;
        }
        scratch.reset_for(n);
        let pu = priority(u);
        for v in cross.cross_neighbors(g, u) {
            if priority(v) >= pu {
                continue;
            }
            for w in cross.cross_neighbors(g, v) {
                if w != u && priority(w) < pu {
                    total += (scratch.bump(w) - 1) as u64;
                }
            }
        }
    }
    total
}

/// Brute-force O(n⁴) butterfly degree for tiny graphs — the test oracle.
pub fn brute_force_butterfly_degrees(view: &GraphView<'_>, cross: BipartiteCross) -> Vec<u64> {
    let graph = view.graph();
    let left: Vec<VertexId> = cross.side_vertices(view, cross.left).collect();
    let right: Vec<VertexId> = cross.side_vertices(view, cross.right).collect();
    let mut chi = vec![0u64; graph.vertex_count()];
    let cross_edge = |a: VertexId, b: VertexId| {
        graph.has_edge(a, b) && view.is_alive(a) && view.is_alive(b)
    };
    for i in 0..left.len() {
        for j in (i + 1)..left.len() {
            for x in 0..right.len() {
                for y in (x + 1)..right.len() {
                    let (l1, l2, r1, r2) = (left[i], left[j], right[x], right[y]);
                    if cross_edge(l1, r1)
                        && cross_edge(l1, r2)
                        && cross_edge(l2, r1)
                        && cross_edge(l2, r2)
                    {
                        for v in [l1, l2, r1, r2] {
                            chi[v.index()] += 1;
                        }
                    }
                }
            }
        }
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// The Figure 2 bow tie: {ql, v5} × {qr, u3} is one butterfly.
    fn single_butterfly() -> (LabeledGraph, [VertexId; 4]) {
        let mut b = GraphBuilder::new();
        let ql = b.add_vertex("SE");
        let v5 = b.add_vertex("SE");
        let qr = b.add_vertex("UI");
        let u3 = b.add_vertex("UI");
        for (x, y) in [(ql, qr), (ql, u3), (v5, qr), (v5, u3)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        (g, [ql, v5, qr, u3])
    }

    fn cross_of(_g: &LabeledGraph) -> BipartiteCross {
        BipartiteCross::new(bcc_graph::Label(0), bcc_graph::Label(1))
    }

    #[test]
    fn one_butterfly_means_chi_one_everywhere() {
        let (g, vs) = single_butterfly();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        for v in vs {
            assert_eq!(counts.chi(v), 1, "Example 1 of the paper: χ(qr)=1");
        }
        assert_eq!(counts.total(), 1);
        assert!(counts.satisfies_leader_condition(1));
        assert!(!counts.satisfies_leader_condition(2));
    }

    #[test]
    fn complete_bipartite_counts() {
        // K_{3,3}: χ(v) = C(2,1)*... each vertex is in C(2,1) choices? For
        // K_{m,n}, total butterflies = C(m,2)*C(n,2) = 9; each left vertex is
        // in C(2,1)=2 of the C(3,2)=3 left pairs → χ = 2*C(3,2) = 2*3 = 6.
        let mut b = GraphBuilder::new();
        let left: Vec<_> = (0..3).map(|_| b.add_vertex("L")).collect();
        let right: Vec<_> = (0..3).map(|_| b.add_vertex("R")).collect();
        for &l in &left {
            for &r in &right {
                b.add_edge(l, r);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        for v in g.vertices() {
            assert_eq!(counts.chi(v), 6);
        }
        assert_eq!(counts.total(), 9);
        assert_eq!(total_butterflies(&view, cross_of(&g)), 9);
        assert_eq!(total_butterflies_priority(&view, cross_of(&g)), 9);
    }

    #[test]
    fn homogeneous_edges_do_not_count() {
        let (g0, _) = single_butterfly();
        // Rebuild with an extra same-label edge — butterfly counts unchanged.
        let mut b = GraphBuilder::new();
        let ql = b.add_vertex("SE");
        let v5 = b.add_vertex("SE");
        let qr = b.add_vertex("UI");
        let u3 = b.add_vertex("UI");
        for (x, y) in [(ql, qr), (ql, u3), (v5, qr), (v5, u3), (ql, v5), (qr, u3)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        let view0 = GraphView::new(&g0);
        let counts0 = ButterflyCounts::compute(&view0, cross_of(&g0));
        assert_eq!(counts.chi, counts0.chi);
    }

    #[test]
    fn third_label_vertices_ignored() {
        let mut b = GraphBuilder::new();
        let l0 = b.add_vertex("L");
        let l1 = b.add_vertex("L");
        let r0 = b.add_vertex("R");
        let r1 = b.add_vertex("R");
        let z = b.add_vertex("Z");
        for (x, y) in [(l0, r0), (l0, r1), (l1, r0), (l1, r1)] {
            b.add_edge(x, y);
        }
        // z connects to everything but is not a side.
        for v in [l0, l1, r0, r1] {
            b.add_edge(z, v);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(l0), g.label(r0));
        let counts = ButterflyCounts::compute(&view, cross);
        assert_eq!(counts.chi(z), 0);
        assert_eq!(counts.chi(l0), 1);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn deletion_shrinks_counts() {
        let (g, vs) = single_butterfly();
        let mut view = GraphView::new(&g);
        view.remove_vertex(vs[1]); // drop v5 → no butterfly left
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        assert!(counts.chi.iter().all(|&c| c == 0));
        assert!(!counts.satisfies_leader_condition(1));
    }

    #[test]
    fn matches_brute_force_on_random_bipartite() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let mut b = GraphBuilder::new();
            let left: Vec<_> = (0..6).map(|_| b.add_vertex("L")).collect();
            let right: Vec<_> = (0..6).map(|_| b.add_vertex("R")).collect();
            for &l in &left {
                for &r in &right {
                    if rng.gen_bool(0.45) {
                        b.add_edge(l, r);
                    }
                }
            }
            // A few homogeneous edges that must not matter.
            b.add_edge(left[0], left[1]);
            b.add_edge(right[2], right[3]);
            let g = b.build();
            let view = GraphView::new(&g);
            let cross = cross_of(&g);
            let expected = brute_force_butterfly_degrees(&view, cross);
            let fast = butterfly_degrees(&view, cross);
            assert_eq!(fast, expected, "trial {trial}");
            assert_eq!(butterfly_degrees_hash(&view, cross), expected, "trial {trial} (hash)");
            assert_eq!(
                butterfly_degrees_priority(&view, cross),
                expected,
                "trial {trial} (priority)"
            );
            let total: u64 = expected.iter().sum::<u64>() / 4;
            assert_eq!(total_butterflies(&view, cross), total, "trial {trial}");
            assert_eq!(total_butterflies_priority(&view, cross), total, "trial {trial}");
            for &v in left.iter().chain(&right) {
                assert_eq!(
                    butterfly_degree_of(&view, cross, v),
                    expected[v.index()],
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn parallel_compute_is_bit_identical_at_every_thread_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xB1F);
        // Big enough to clear the COUNT_CHUNK sequential shortcut, with a
        // third label the cross-graph must ignore and a scatter of deletions.
        let mut b = GraphBuilder::new();
        let left: Vec<_> = (0..260).map(|_| b.add_vertex("L")).collect();
        let right: Vec<_> = (0..260).map(|_| b.add_vertex("R")).collect();
        let other: Vec<_> = (0..60).map(|_| b.add_vertex("Z")).collect();
        for &l in &left {
            for &r in &right {
                if rng.gen_bool(0.02) {
                    b.add_edge(l, r);
                }
            }
        }
        for (i, &z) in other.iter().enumerate() {
            b.add_edge(z, left[i % left.len()]);
            b.add_edge(z, right[(i * 7) % right.len()]);
        }
        let g = b.build();
        let mut view = GraphView::new(&g);
        for i in (0..g.vertex_count() as u32).step_by(11) {
            view.remove_vertex(VertexId(i));
        }
        let cross = cross_of(&g);
        let reference = ButterflyCounts::compute(&view, cross);
        for threads in [1usize, 2, 3, 7, 0] {
            let par = ButterflyCounts::compute_with_threads(&view, cross, threads);
            assert_eq!(par.chi, reference.chi, "threads {threads}");
            assert_eq!(par.max_left, reference.max_left, "threads {threads}");
            assert_eq!(par.max_right, reference.max_right, "threads {threads}");
        }
    }

    #[test]
    fn side_argmax_finds_leader() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex("L");
        let l1 = b.add_vertex("L");
        let l2 = b.add_vertex("L");
        let r: Vec<_> = (0..3).map(|_| b.add_vertex("R")).collect();
        // hub connects to all right vertices; l1/l2 to two each.
        for &x in &r {
            b.add_edge(hub, x);
        }
        b.add_edge(l1, r[0]);
        b.add_edge(l1, r[1]);
        b.add_edge(l2, r[1]);
        b.add_edge(l2, r[2]);
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = cross_of(&g);
        let counts = ButterflyCounts::compute(&view, cross);
        assert_eq!(counts.side_argmax(&view, g.label(hub)), Some(hub));
        assert_eq!(counts.side_max(g.label(hub)), counts.chi(hub));
    }

    #[test]
    fn side_argmax_is_none_without_butterflies() {
        // A 4-cycle missing one chord: edges (l0,r0), (l0,r1), (l1,r0) form
        // wedges but no butterfly — χ = 0 everywhere. Definition 4(4) admits
        // no leader, so side_argmax must not nominate an arbitrary χ = 0
        // vertex on either side (nor on a populated side of an otherwise
        // empty cross-graph).
        let mut b = GraphBuilder::new();
        let l0 = b.add_vertex("L");
        let l1 = b.add_vertex("L");
        let r0 = b.add_vertex("R");
        let r1 = b.add_vertex("R");
        for (x, y) in [(l0, r0), (l0, r1), (l1, r0)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        assert_eq!(counts.max_left, 0);
        assert_eq!(counts.side_argmax(&view, g.label(l0)), None);
        assert_eq!(counts.side_argmax(&view, g.label(r0)), None);
        assert!(!counts.satisfies_leader_condition(1));
    }

    #[test]
    fn side_argmax_ignores_chi_zero_vertices_next_to_real_leaders() {
        // One butterfly plus a pendant left vertex with a single cross edge:
        // the pendant has χ = 0 and must never shadow the real argmax, and
        // the butterfly members must still be found.
        let mut b = GraphBuilder::new();
        let ql = b.add_vertex("SE");
        let v5 = b.add_vertex("SE");
        let qr = b.add_vertex("UI");
        let u3 = b.add_vertex("UI");
        let pendant = b.add_vertex("SE");
        for (x, y) in [(ql, qr), (ql, u3), (v5, qr), (v5, u3), (pendant, qr)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        let leader = counts.side_argmax(&view, g.label(ql)).expect("side has a butterfly");
        assert_ne!(leader, pendant);
        assert_eq!(counts.chi(leader), 1);
    }
}
