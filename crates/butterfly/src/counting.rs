//! Butterfly counting (Algorithm 3 and global variants).
//!
//! The butterfly degree χ(v) (Definition 3) is
//! `χ(v) = Σ_{w ∈ N²_v} C(|N(v) ∩ N(w)|, 2)` where neighborhoods are taken
//! in the bipartite cross-graph. Algorithm 3 computes it by counting 2-hop
//! paths into a hash map instead of doing pairwise set intersections; we key
//! the map with `u32` vertex ids and use FxHash (hot integer-keyed map, per
//! the workspace performance guide).

use bcc_graph::{GraphRead, GraphView, Label, VertexId};
use rustc_hash::FxHashMap;

use crate::bipartite::BipartiteCross;

/// `C(c, 2)` in u64.
#[inline]
pub(crate) fn choose2(c: u64) -> u64 {
    c * c.saturating_sub(1) / 2
}

/// Per-vertex butterfly degrees over the cross-graph of `cross`, plus the
/// per-side maxima that Algorithm 2 (lines 6–7) needs.
#[derive(Clone, Debug)]
pub struct ButterflyCounts {
    /// The two sides these counts were computed for.
    pub cross: BipartiteCross,
    /// χ(v) per vertex id (0 for vertices outside the cross-graph).
    pub chi: Vec<u64>,
    /// Maximum χ over the left side (`max_l` of Algorithm 2).
    pub max_left: u64,
    /// Maximum χ over the right side (`max_r` of Algorithm 2).
    pub max_right: u64,
}

impl ButterflyCounts {
    /// Runs Algorithm 3 on the live cross-graph between `cross.left` and
    /// `cross.right` inside `view`.
    pub fn compute(view: &GraphView<'_>, cross: BipartiteCross) -> Self {
        let chi = butterfly_degrees(view, cross);
        let (mut max_left, mut max_right) = (0u64, 0u64);
        let graph = view.graph();
        for v in view.alive_vertices() {
            let label = graph.label(v);
            if label == cross.left {
                max_left = max_left.max(chi[v.index()]);
            } else if label == cross.right {
                max_right = max_right.max(chi[v.index()]);
            }
        }
        ButterflyCounts {
            cross,
            chi,
            max_left,
            max_right,
        }
    }

    /// χ(v).
    #[inline]
    pub fn chi(&self, v: VertexId) -> u64 {
        self.chi[v.index()]
    }

    /// Maximum χ on the side of `label` (panics if `label` is not a side).
    pub fn side_max(&self, label: Label) -> u64 {
        if label == self.cross.left {
            self.max_left
        } else if label == self.cross.right {
            self.max_right
        } else {
            panic!("label {label} is not a side of this cross-graph");
        }
    }

    /// The condition of Definition 4(4): both sides contain a vertex with
    /// χ ≥ b.
    pub fn satisfies_leader_condition(&self, b: u64) -> bool {
        self.max_left >= b && self.max_right >= b
    }

    /// Total number of butterflies: each butterfly contains 4 vertices, so
    /// `Σ χ(v) / 4`.
    pub fn total(&self) -> u64 {
        self.chi.iter().sum::<u64>() / 4
    }

    /// An arbitrary vertex on `label`'s side attaining the side maximum.
    pub fn side_argmax(&self, view: &GraphView<'_>, label: Label) -> Option<VertexId> {
        let graph = view.graph();
        view.alive_vertices()
            .filter(|&v| graph.label(v) == label)
            .max_by_key(|&v| self.chi[v.index()])
    }
}

/// Algorithm 3: butterfly degree of every vertex in the cross-graph.
///
/// For each vertex `v`, counts 2-hop paths `v → u → w` (with `u` on the
/// opposite side and `w ≠ v` back on `v`'s side) into a hash map `P`, then
/// sums `C(P[w], 2)`.
pub fn butterfly_degrees<G: GraphRead>(g: &G, cross: BipartiteCross) -> Vec<u64> {
    let n = g.vertex_count();
    let mut chi = vec![0u64; n];
    let mut paths: FxHashMap<u32, u32> = FxHashMap::default();
    for v in g.vertices() {
        let Some(_) = cross.opposite(g.label(v)) else {
            continue;
        };
        paths.clear();
        for u in cross.cross_neighbors(g, v) {
            for w in cross.cross_neighbors(g, u) {
                if w != v {
                    *paths.entry(w.0).or_insert(0) += 1;
                }
            }
        }
        chi[v.index()] = paths.values().map(|&c| choose2(c as u64)).sum();
    }
    chi
}

/// Butterfly degree of a single vertex (same wedge-hashing kernel as
/// Algorithm 3, restricted to one vertex). Used when a leader must be
/// re-validated without recounting the whole side.
pub fn butterfly_degree_of<G: GraphRead>(g: &G, cross: BipartiteCross, v: VertexId) -> u64 {
    if cross.opposite(g.label(v)).is_none() {
        return 0;
    }
    let mut paths: FxHashMap<u32, u32> = FxHashMap::default();
    for u in cross.cross_neighbors(g, v) {
        for w in cross.cross_neighbors(g, u) {
            if w != v {
                *paths.entry(w.0).or_insert(0) += 1;
            }
        }
    }
    paths.values().map(|&c| choose2(c as u64)).sum()
}

/// Exact global butterfly count via pair hashing: for every *center* vertex
/// `u` on one side, every pair of its cross neighbors `{v, w}` contributes a
/// wedge; butterflies = `Σ_{pairs} C(count, 2)`. The center side is chosen
/// to minimize `Σ C(deg, 2)`.
pub fn total_butterflies(view: &GraphView<'_>, cross: BipartiteCross) -> u64 {
    let wedge_cost = |side: Label| -> u64 {
        cross
            .side_vertices(view, side)
            .map(|v| choose2(cross.cross_degree(view, v) as u64))
            .sum()
    };
    let center_side = if wedge_cost(cross.left) <= wedge_cost(cross.right) {
        cross.left
    } else {
        cross.right
    };
    let mut pair_counts: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for u in cross.side_vertices(view, center_side) {
        let neighbors: Vec<VertexId> = cross.cross_neighbors(view, u).collect();
        for i in 0..neighbors.len() {
            for j in (i + 1)..neighbors.len() {
                let key = (neighbors[i].0, neighbors[j].0);
                *pair_counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    pair_counts.values().map(|&c| choose2(c as u64)).sum()
}

/// Exact global butterfly count with the vertex-priority wedge processing of
/// Wang et al. [41]: each butterfly is counted exactly once from its
/// highest-priority vertex, where priority orders by (degree, id). High
/// degree vertices are visited first, which bounds repeated wedge work on
/// skewed graphs.
pub fn total_butterflies_priority(view: &GraphView<'_>, cross: BipartiteCross) -> u64 {
    let graph = view.graph();
    // priority(v) = (cross degree, id); compare tuples.
    let deg: Vec<u32> = (0..graph.vertex_count() as u32)
        .map(|i| {
            let v = VertexId(i);
            if view.is_alive(v) && cross.contains(view, v) {
                cross.cross_degree(view, v) as u32
            } else {
                0
            }
        })
        .collect();
    let priority = |v: VertexId| (deg[v.index()], v.0);

    let mut total = 0u64;
    let mut wedge_count: FxHashMap<u32, u32> = FxHashMap::default();
    for u in view.alive_vertices() {
        if cross.opposite(graph.label(u)).is_none() {
            continue;
        }
        wedge_count.clear();
        let pu = priority(u);
        for v in cross.cross_neighbors(view, u) {
            if priority(v) >= pu {
                continue;
            }
            for w in cross.cross_neighbors(view, v) {
                if w != u && priority(w) < pu {
                    *wedge_count.entry(w.0).or_insert(0) += 1;
                }
            }
        }
        total += wedge_count.values().map(|&c| choose2(c as u64)).sum::<u64>();
    }
    total
}

/// Brute-force O(n⁴) butterfly degree for tiny graphs — the test oracle.
pub fn brute_force_butterfly_degrees(view: &GraphView<'_>, cross: BipartiteCross) -> Vec<u64> {
    let graph = view.graph();
    let left: Vec<VertexId> = cross.side_vertices(view, cross.left).collect();
    let right: Vec<VertexId> = cross.side_vertices(view, cross.right).collect();
    let mut chi = vec![0u64; graph.vertex_count()];
    let cross_edge = |a: VertexId, b: VertexId| {
        graph.has_edge(a, b) && view.is_alive(a) && view.is_alive(b)
    };
    for i in 0..left.len() {
        for j in (i + 1)..left.len() {
            for x in 0..right.len() {
                for y in (x + 1)..right.len() {
                    let (l1, l2, r1, r2) = (left[i], left[j], right[x], right[y]);
                    if cross_edge(l1, r1)
                        && cross_edge(l1, r2)
                        && cross_edge(l2, r1)
                        && cross_edge(l2, r2)
                    {
                        for v in [l1, l2, r1, r2] {
                            chi[v.index()] += 1;
                        }
                    }
                }
            }
        }
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// The Figure 2 bow tie: {ql, v5} × {qr, u3} is one butterfly.
    fn single_butterfly() -> (LabeledGraph, [VertexId; 4]) {
        let mut b = GraphBuilder::new();
        let ql = b.add_vertex("SE");
        let v5 = b.add_vertex("SE");
        let qr = b.add_vertex("UI");
        let u3 = b.add_vertex("UI");
        for (x, y) in [(ql, qr), (ql, u3), (v5, qr), (v5, u3)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        (g, [ql, v5, qr, u3])
    }

    fn cross_of(_g: &LabeledGraph) -> BipartiteCross {
        BipartiteCross::new(bcc_graph::Label(0), bcc_graph::Label(1))
    }

    #[test]
    fn one_butterfly_means_chi_one_everywhere() {
        let (g, vs) = single_butterfly();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        for v in vs {
            assert_eq!(counts.chi(v), 1, "Example 1 of the paper: χ(qr)=1");
        }
        assert_eq!(counts.total(), 1);
        assert!(counts.satisfies_leader_condition(1));
        assert!(!counts.satisfies_leader_condition(2));
    }

    #[test]
    fn complete_bipartite_counts() {
        // K_{3,3}: χ(v) = C(2,1)*... each vertex is in C(2,1) choices? For
        // K_{m,n}, total butterflies = C(m,2)*C(n,2) = 9; each left vertex is
        // in C(2,1)=2 of the C(3,2)=3 left pairs → χ = 2*C(3,2) = 2*3 = 6.
        let mut b = GraphBuilder::new();
        let left: Vec<_> = (0..3).map(|_| b.add_vertex("L")).collect();
        let right: Vec<_> = (0..3).map(|_| b.add_vertex("R")).collect();
        for &l in &left {
            for &r in &right {
                b.add_edge(l, r);
            }
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        for v in g.vertices() {
            assert_eq!(counts.chi(v), 6);
        }
        assert_eq!(counts.total(), 9);
        assert_eq!(total_butterflies(&view, cross_of(&g)), 9);
        assert_eq!(total_butterflies_priority(&view, cross_of(&g)), 9);
    }

    #[test]
    fn homogeneous_edges_do_not_count() {
        let (g0, _) = single_butterfly();
        // Rebuild with an extra same-label edge — butterfly counts unchanged.
        let mut b = GraphBuilder::new();
        let ql = b.add_vertex("SE");
        let v5 = b.add_vertex("SE");
        let qr = b.add_vertex("UI");
        let u3 = b.add_vertex("UI");
        for (x, y) in [(ql, qr), (ql, u3), (v5, qr), (v5, u3), (ql, v5), (qr, u3)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        let view0 = GraphView::new(&g0);
        let counts0 = ButterflyCounts::compute(&view0, cross_of(&g0));
        assert_eq!(counts.chi, counts0.chi);
    }

    #[test]
    fn third_label_vertices_ignored() {
        let mut b = GraphBuilder::new();
        let l0 = b.add_vertex("L");
        let l1 = b.add_vertex("L");
        let r0 = b.add_vertex("R");
        let r1 = b.add_vertex("R");
        let z = b.add_vertex("Z");
        for (x, y) in [(l0, r0), (l0, r1), (l1, r0), (l1, r1)] {
            b.add_edge(x, y);
        }
        // z connects to everything but is not a side.
        for v in [l0, l1, r0, r1] {
            b.add_edge(z, v);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = BipartiteCross::new(g.label(l0), g.label(r0));
        let counts = ButterflyCounts::compute(&view, cross);
        assert_eq!(counts.chi(z), 0);
        assert_eq!(counts.chi(l0), 1);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn deletion_shrinks_counts() {
        let (g, vs) = single_butterfly();
        let mut view = GraphView::new(&g);
        view.remove_vertex(vs[1]); // drop v5 → no butterfly left
        let counts = ButterflyCounts::compute(&view, cross_of(&g));
        assert!(counts.chi.iter().all(|&c| c == 0));
        assert!(!counts.satisfies_leader_condition(1));
    }

    #[test]
    fn matches_brute_force_on_random_bipartite() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let mut b = GraphBuilder::new();
            let left: Vec<_> = (0..6).map(|_| b.add_vertex("L")).collect();
            let right: Vec<_> = (0..6).map(|_| b.add_vertex("R")).collect();
            for &l in &left {
                for &r in &right {
                    if rng.gen_bool(0.45) {
                        b.add_edge(l, r);
                    }
                }
            }
            // A few homogeneous edges that must not matter.
            b.add_edge(left[0], left[1]);
            b.add_edge(right[2], right[3]);
            let g = b.build();
            let view = GraphView::new(&g);
            let cross = cross_of(&g);
            let expected = brute_force_butterfly_degrees(&view, cross);
            let fast = butterfly_degrees(&view, cross);
            assert_eq!(fast, expected, "trial {trial}");
            let total: u64 = expected.iter().sum::<u64>() / 4;
            assert_eq!(total_butterflies(&view, cross), total, "trial {trial}");
            assert_eq!(total_butterflies_priority(&view, cross), total, "trial {trial}");
            for &v in left.iter().chain(&right) {
                assert_eq!(
                    butterfly_degree_of(&view, cross, v),
                    expected[v.index()],
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn side_argmax_finds_leader() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex("L");
        let l1 = b.add_vertex("L");
        let l2 = b.add_vertex("L");
        let r: Vec<_> = (0..3).map(|_| b.add_vertex("R")).collect();
        // hub connects to all right vertices; l1/l2 to two each.
        for &x in &r {
            b.add_edge(hub, x);
        }
        b.add_edge(l1, r[0]);
        b.add_edge(l1, r[1]);
        b.add_edge(l2, r[1]);
        b.add_edge(l2, r[2]);
        let g = b.build();
        let view = GraphView::new(&g);
        let cross = cross_of(&g);
        let counts = ButterflyCounts::compute(&view, cross);
        assert_eq!(counts.side_argmax(&view, g.label(hub)), Some(hub));
        assert_eq!(counts.side_max(g.label(hub)), counts.chi(hub));
    }
}
