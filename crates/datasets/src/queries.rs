//! Query-workload generators (Section 8, "Queries and parameters").
//!
//! The paper varies two knobs when generating query pairs:
//!
//! * **degree rank** `Q_d`: a query vertex "has a degree higher than the
//!   degree of X% vertices in the whole network" (default 80%);
//! * **inter-distance** `l`: the shortest-path distance between the two
//!   query vertices (default 1 — directly connected).
//!
//! Quality experiments additionally need pairs drawn from inside one
//! ground-truth community (F1 is measured against that community). All
//! generators are seeded and deterministic.

use bcc_graph::{GraphView, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::planted::PlantedNetwork;

/// Constraints for query generation.
#[derive(Clone, Copy, Debug)]
pub struct QueryConstraints {
    /// Degree-rank threshold `Q_d` in percent: query vertices must have a
    /// degree above this percentile of the degree distribution.
    pub degree_rank: u32,
    /// Required shortest-path distance between the two query vertices
    /// (`None` = any finite distance).
    pub inter_distance: Option<u32>,
}

impl Default for QueryConstraints {
    fn default() -> Self {
        QueryConstraints {
            degree_rank: 80,
            inter_distance: Some(1),
        }
    }
}

/// A generated query: the pair plus the ground-truth community it was drawn
/// from.
#[derive(Clone, Debug)]
pub struct CommunityQuery {
    /// The query vertices (2 for pair queries, m for mBCC queries).
    pub vertices: Vec<VertexId>,
    /// Index of the ground-truth community the vertices belong to.
    pub community: usize,
}

/// The degree value at percentile `rank` (0–100) of the degree distribution.
fn degree_threshold(net: &PlantedNetwork, rank: u32) -> usize {
    let mut degrees: Vec<usize> = net.graph.vertices().map(|v| net.graph.degree(v)).collect();
    degrees.sort_unstable();
    let idx = ((rank.min(100) as usize) * degrees.len().saturating_sub(1)) / 100;
    degrees[idx]
}

/// Random query pairs from inside ground-truth communities, with different
/// labels, honoring `constraints`. Returns up to `count` queries (fewer if
/// the constraints are hard to satisfy).
pub fn random_community_queries(
    net: &PlantedNetwork,
    count: usize,
    constraints: QueryConstraints,
    seed: u64,
) -> Vec<CommunityQuery> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let threshold = degree_threshold(net, constraints.degree_rank);
    let view = GraphView::new(&net.graph);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count * 400;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let c = rng.gen_range(0..net.community_count());
        let members = net.community(c);
        if members.len() < 2 {
            continue;
        }
        let a = members[rng.gen_range(0..members.len())];
        let b = members[rng.gen_range(0..members.len())];
        if a == b || net.graph.label(a) == net.graph.label(b) {
            continue;
        }
        if net.graph.degree(a) < threshold || net.graph.degree(b) < threshold {
            continue;
        }
        if let Some(l) = constraints.inter_distance {
            let d = bcc_graph::bfs_distances(&view, a)[b.index()];
            if d != l {
                continue;
            }
        }
        out.push(CommunityQuery {
            vertices: vec![a, b],
            community: c,
        });
    }
    out
}

/// Query pairs for the degree-rank sweep of Figure 6 (inter-distance
/// unconstrained so higher ranks stay satisfiable).
pub fn queries_by_degree_rank(
    net: &PlantedNetwork,
    rank: u32,
    count: usize,
    seed: u64,
) -> Vec<CommunityQuery> {
    random_community_queries(
        net,
        count,
        QueryConstraints {
            degree_rank: rank,
            inter_distance: None,
        },
        seed,
    )
}

/// Query pairs for the inter-distance sweep of Figure 7.
pub fn queries_by_distance(
    net: &PlantedNetwork,
    l: u32,
    count: usize,
    seed: u64,
) -> Vec<CommunityQuery> {
    random_community_queries(
        net,
        count,
        QueryConstraints {
            degree_rank: 0,
            inter_distance: Some(l),
        },
        seed,
    )
}

/// m-label queries for the mBCC experiments: m vertices with pairwise
/// distinct labels drawn from a single ground-truth community.
pub fn mbcc_queries(
    net: &PlantedNetwork,
    m: usize,
    count: usize,
    seed: u64,
) -> Vec<CommunityQuery> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count * 400;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let c = rng.gen_range(0..net.community_count());
        let members = net.community(c);
        // Bucket by label, then take one representative per label.
        let mut by_label: std::collections::BTreeMap<u32, Vec<VertexId>> = Default::default();
        for &v in members {
            by_label.entry(net.graph.label(v).0).or_default().push(v);
        }
        if by_label.len() < m {
            continue;
        }
        let mut labels: Vec<u32> = by_label.keys().copied().collect();
        labels.shuffle(&mut rng);
        let vertices: Vec<VertexId> = labels[..m]
            .iter()
            .map(|l| {
                let bucket = &by_label[l];
                bucket[rng.gen_range(0..bucket.len())]
            })
            .collect();
        out.push(CommunityQuery {
            vertices,
            community: c,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::PlantedConfig;

    fn net() -> PlantedNetwork {
        PlantedNetwork::generate(PlantedConfig {
            communities: 10,
            community_size: (20, 30),
            ..Default::default()
        })
    }

    #[test]
    fn community_queries_have_distinct_labels() {
        let n = net();
        let queries = random_community_queries(&n, 20, QueryConstraints::default(), 1);
        assert!(!queries.is_empty());
        for q in &queries {
            let [a, b] = q.vertices[..] else { panic!("pair") };
            assert_ne!(n.graph.label(a), n.graph.label(b));
            assert_eq!(n.community_of(a), q.community);
            assert_eq!(n.community_of(b), q.community);
        }
    }

    #[test]
    fn inter_distance_respected() {
        let n = net();
        let view = GraphView::new(&n.graph);
        for l in 1..=2u32 {
            let queries = queries_by_distance(&n, l, 5, 7);
            for q in &queries {
                let d = bcc_graph::bfs_distances(&view, q.vertices[0])[q.vertices[1].index()];
                assert_eq!(d, l);
            }
        }
    }

    #[test]
    fn degree_rank_filters_low_degree_vertices() {
        let n = net();
        let q_high = queries_by_degree_rank(&n, 95, 10, 3);
        let threshold = super::degree_threshold(&n, 95);
        for q in &q_high {
            for &v in &q.vertices {
                assert!(n.graph.degree(v) >= threshold);
            }
        }
    }

    #[test]
    fn mbcc_queries_have_m_distinct_labels() {
        let n = PlantedNetwork::generate(PlantedConfig {
            communities: 8,
            community_size: (30, 40),
            groups_per_community: 3,
            label_pool: 6,
            ..Default::default()
        });
        let queries = mbcc_queries(&n, 3, 10, 5);
        assert!(!queries.is_empty());
        for q in &queries {
            let labels: std::collections::HashSet<_> =
                q.vertices.iter().map(|&v| n.graph.label(v)).collect();
            assert_eq!(labels.len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let n = net();
        let a = random_community_queries(&n, 10, QueryConstraints::default(), 42);
        let b = random_community_queries(&n, 10, QueryConstraints::default(), 42);
        assert_eq!(
            a.iter().map(|q| q.vertices.clone()).collect::<Vec<_>>(),
            b.iter().map(|q| q.vertices.clone()).collect::<Vec<_>>()
        );
    }
}
