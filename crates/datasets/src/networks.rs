//! Laptop-scale instantiations of the seven evaluation networks (Table 3).
//!
//! The paper's graphs range from 30K to 3.1M vertices; a full reproduction
//! of its query workloads over all five methods must run on one machine in
//! minutes, so each named network here is a scaled-down planted-community
//! build that preserves the *relative* ordering of sizes, densities, and
//! label counts across the seven networks (|V| ratios, avg-degree ratios,
//! many-label vs two-label structure). The `scale` knob lets callers grow
//! any network toward the paper's size on bigger hardware.
//!
//! | Network | paper \|V\|/\|E\|/labels | here (scale = 1) |
//! |---|---|---|
//! | Baidu-1 | 30K / 508K / 383 | ~2.3K vertices, 383-label pool |
//! | Baidu-2 | 41K / 2M / 346 | ~3.2K vertices, denser, 346 labels |
//! | Amazon | 335K / 926K / 2 | ~6K vertices, sparse, small communities |
//! | DBLP | 317K / 1M / 2 | ~6K vertices, mid density |
//! | Youtube | 1.1M / 3M / 2 | ~9K vertices, sparse + noisy |
//! | LiveJournal | 4M / 35M / 2 | ~13K vertices, dense |
//! | Orkut | 3.1M / 117M / 2 | ~16K vertices, densest |

use crate::planted::{PlantedConfig, PlantedNetwork};

/// A named network specification (used by the bench harness to iterate the
/// evaluation suite).
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Generator configuration.
    pub config: PlantedConfig,
}

impl NetworkSpec {
    /// Builds the network.
    pub fn build(&self) -> PlantedNetwork {
        PlantedNetwork::generate(self.config.clone())
    }
}

fn sized(base_communities: usize, scale: f64) -> usize {
    ((base_communities as f64 * scale).round() as usize).max(2)
}

/// Baidu-1: many labels (383 departments), three months of logs — smallest
/// of the pair.
pub fn baidu1(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "Baidu-1",
        config: PlantedConfig {
            communities: sized(60, scale),
            community_size: (24, 52),
            groups_per_community: 2,
            label_pool: 383,
            intra_prob: 0.30,
            cross_fraction: 0.10,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0xBA1D01,
        },
    }
}

/// Baidu-2: one year of logs — denser and slightly larger, 346 labels.
pub fn baidu2(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "Baidu-2",
        config: PlantedConfig {
            communities: sized(70, scale),
            community_size: (32, 60),
            groups_per_community: 2,
            label_pool: 346,
            intra_prob: 0.45,
            cross_fraction: 0.12,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0xBA1D02,
        },
    }
}

/// Amazon: sparse co-purchase graph, many small communities, 2 labels.
pub fn amazon(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "Amazon",
        config: PlantedConfig {
            communities: sized(300, scale),
            community_size: (12, 28),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.18,
            cross_fraction: 0.10,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0xA3A201,
        },
    }
}

/// DBLP: collaboration graph, mid-sized communities, 2 labels.
pub fn dblp(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "DBLP",
        config: PlantedConfig {
            communities: sized(220, scale),
            community_size: (16, 40),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.28,
            cross_fraction: 0.10,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0xDB1901,
        },
    }
}

/// Youtube: large, sparse, noisy — the network where every method scores
/// lowest in the paper's Figure 4.
pub fn youtube(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "Youtube",
        config: PlantedConfig {
            communities: sized(320, scale),
            community_size: (14, 36),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.16,
            cross_fraction: 0.10,
            noise_fraction: 0.17,
            plant_butterflies: true,
            hubs_per_group: 1,
            seed: 0x707B01,
        },
    }
}

/// LiveJournal: large and dense.
pub fn livejournal(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "LiveJournal",
        config: PlantedConfig {
            communities: sized(360, scale),
            community_size: (20, 52),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.35,
            cross_fraction: 0.10,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0x111701,
        },
    }
}

/// Orkut: the largest and densest network of the suite.
pub fn orkut(scale: f64) -> NetworkSpec {
    NetworkSpec {
        name: "Orkut",
        config: PlantedConfig {
            communities: sized(380, scale),
            community_size: (24, 60),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.42,
            cross_fraction: 0.12,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0x04C701,
        },
    }
}

/// The five two-label quality/efficiency networks plus the two Baidu
/// networks — the full Figure 4/5 suite in paper order.
pub fn all_two_label(scale: f64) -> Vec<NetworkSpec> {
    vec![
        baidu1(scale),
        baidu2(scale),
        amazon(scale),
        dblp(scale),
        youtube(scale),
        livejournal(scale),
        orkut(scale),
    ]
}

fn multi_labeled(base: NetworkSpec, name: &'static str, m: usize) -> NetworkSpec {
    let mut config = base.config;
    config.groups_per_community = m;
    config.label_pool = config.label_pool.max(m);
    config.community_size = (config.community_size.0.max(m * 8), config.community_size.1.max(m * 10));
    NetworkSpec { name, config }
}

/// DBLP-M: six labels assigned for the mBCC experiments (Exp-10).
pub fn dblp_m(scale: f64, m: usize) -> NetworkSpec {
    multi_labeled(dblp(scale), "DBLP-M", m)
}

/// LiveJournal-M: six-label variant.
pub fn livejournal_m(scale: f64, m: usize) -> NetworkSpec {
    multi_labeled(livejournal(scale), "LiveJournal-M", m)
}

/// Orkut-M: six-label variant.
pub fn orkut_m(scale: f64, m: usize) -> NetworkSpec {
    multi_labeled(orkut(scale), "Orkut-M", m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_sizes_preserved() {
        let nets: Vec<_> = all_two_label(0.2).iter().map(|s| s.build()).collect();
        let v: Vec<usize> = nets.iter().map(|n| n.graph.vertex_count()).collect();
        // Baidu-1 < Baidu-2; Amazon <= DBLP <= Youtube <= LiveJournal <= Orkut
        assert!(v[0] < v[2], "Baidu-1 is the smallest: {v:?}");
        assert!(v[2] <= v[3] + v[3] / 2, "Amazon ~ DBLP: {v:?}");
        assert!(v[4] <= v[5], "Youtube <= LiveJournal: {v:?}");
        assert!(v[5] <= v[6], "LiveJournal <= Orkut: {v:?}");
    }

    #[test]
    fn baidu_networks_have_many_labels() {
        let net = baidu1(0.2).build();
        assert!(net.graph.label_count() > 50, "{}", net.graph.label_count());
        let amazon = amazon(0.1).build();
        assert_eq!(amazon.graph.label_count(), 2);
    }

    #[test]
    fn orkut_is_densest() {
        let o = orkut(0.1).build();
        let a = amazon(0.1).build();
        let davg = |n: &PlantedNetwork| 2.0 * n.graph.edge_count() as f64 / n.graph.vertex_count() as f64;
        assert!(davg(&o) > davg(&a), "orkut {} vs amazon {}", davg(&o), davg(&a));
    }

    #[test]
    fn m_variant_has_m_groups() {
        let net = dblp_m(0.05, 4).build();
        let labels: std::collections::HashSet<_> = net.communities[0]
            .iter()
            .map(|&v| net.graph.label(v))
            .collect();
        assert_eq!(labels.len(), 4);
    }
}
