//! The planted cross-group community generator.
//!
//! Mirrors the paper's dataset construction (Section 8, "Datasets"): each
//! ground-truth community is split into labeled groups; group members are
//! densely connected internally (homogeneous edges); ~10% of each
//! community's edges cross between its groups (the collaboration behaviour);
//! and ~10% global noise cross edges are sprinkled over the whole graph.
//! Additionally every community plants one butterfly between each pair of
//! adjacent groups so that a leader pair exists by construction — the
//! analogue of the paper's observation that real collaboration communities
//! have leaders/liaisons.
//!
//! All randomness flows from a single seed through ChaCha, so every build of
//! a named network is reproducible.

use bcc_graph::{GraphBuilder, LabeledGraph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the planted generator.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Number of ground-truth communities.
    pub communities: usize,
    /// Inclusive range of community sizes (vertices per community).
    pub community_size: (usize, usize),
    /// Labeled groups per community (2 for the two-label experiments, up to
    /// 6 for the mBCC experiments).
    pub groups_per_community: usize,
    /// Number of distinct labels in the pool (383/346 for the Baidu-style
    /// networks, exactly `groups_per_community` for SNAP-style networks).
    pub label_pool: usize,
    /// Probability of an intra-group edge beyond the connectivity backbone.
    pub intra_prob: f64,
    /// Cross-group edges inside a community, as a fraction of its
    /// homogeneous edge count (the paper uses 10%).
    pub cross_fraction: f64,
    /// Global noise cross edges as a fraction of total edges (paper: 10%).
    pub noise_fraction: f64,
    /// Plant one butterfly per adjacent group pair (guaranteed leader pair).
    pub plant_butterflies: bool,
    /// Number of *hub* vertices per group: hubs connect to every member of
    /// their group, producing the heavy-tailed degree distributions of
    /// networks like Youtube (Table 3's d_max column).
    pub hubs_per_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            communities: 40,
            community_size: (20, 60),
            groups_per_community: 2,
            label_pool: 2,
            intra_prob: 0.25,
            cross_fraction: 0.10,
            noise_fraction: 0.10,
            plant_butterflies: true,
            hubs_per_group: 0,
            seed: 0xBCC,
        }
    }
}

/// A generated labeled graph plus its ground-truth communities.
#[derive(Clone, Debug)]
pub struct PlantedNetwork {
    /// The labeled graph.
    pub graph: LabeledGraph,
    /// Ground-truth communities (each the union of its labeled groups),
    /// sorted vertex lists.
    pub communities: Vec<Vec<VertexId>>,
    /// `membership[v]` = community index of vertex v (every generated
    /// vertex belongs to exactly one community).
    pub membership: Vec<u32>,
    /// The configuration that produced this network.
    pub config: PlantedConfig,
}

impl PlantedNetwork {
    /// Generates a network from `config`.
    pub fn generate(config: PlantedConfig) -> Self {
        assert!(config.groups_per_community >= 2, "need at least two groups");
        assert!(
            config.label_pool >= config.groups_per_community,
            "label pool must cover one label per group"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut builder = GraphBuilder::new();
        // Fix the label universe up front so label ids are stable.
        let labels: Vec<_> = (0..config.label_pool)
            .map(|i| builder.intern_label(&format!("L{i:03}")))
            .collect();

        let mut communities: Vec<Vec<VertexId>> = Vec::with_capacity(config.communities);
        let mut membership: Vec<u32> = Vec::new();
        let mut groups_of: Vec<Vec<Vec<VertexId>>> = Vec::with_capacity(config.communities);

        for c in 0..config.communities {
            let size = rng.gen_range(config.community_size.0..=config.community_size.1);
            // Pick distinct labels for this community's groups.
            let mut pool: Vec<usize> = (0..config.label_pool).collect();
            pool.shuffle(&mut rng);
            let group_labels: Vec<_> = pool[..config.groups_per_community]
                .iter()
                .map(|&i| labels[i])
                .collect();

            // Split the community into groups (sizes as even as possible,
            // minimum 4 so small cores exist).
            let g = config.groups_per_community;
            let base = (size / g).max(4);
            let mut members: Vec<Vec<VertexId>> = Vec::with_capacity(g);
            for label in group_labels.iter().copied() {
                let group: Vec<VertexId> = (0..base)
                    .map(|_| {
                        let v = builder.add_vertex_with_label(label);
                        membership.push(c as u32);
                        v
                    })
                    .collect();
                // Hubs: the first few members link to the whole group.
                for h in 0..config.hubs_per_group.min(group.len()) {
                    for i in 0..group.len() {
                        if i != h {
                            builder.add_edge(group[h], group[i]);
                        }
                    }
                }
                // Intra-group backbone: ring, then random chords.
                for i in 0..group.len() {
                    builder.add_edge(group[i], group[(i + 1) % group.len()]);
                    builder.add_edge(group[i], group[(i + 2) % group.len()]);
                }
                for i in 0..group.len() {
                    for j in (i + 3)..group.len() {
                        if rng.gen_bool(config.intra_prob) {
                            builder.add_edge(group[i], group[j]);
                        }
                    }
                }
                members.push(group);
            }

            // Cross edges between every group pair: a joint project's teams
            // all interact (for g = 2 this is the single left/right pair).
            let intra_edges: usize = members
                .iter()
                .map(|grp| grp.len() * 2 + (grp.len() * grp.len()) / 8)
                .sum();
            let cross_budget =
                ((intra_edges as f64 * config.cross_fraction).ceil() as usize).max(2);
            let pair_list: Vec<(usize, usize)> = (0..g)
                .flat_map(|i| ((i + 1)..g).map(move |j| (i, j)))
                .collect();
            for &(a, b) in &pair_list {
                if config.plant_butterflies {
                    // A guaranteed butterfly: the two lowest-id members of
                    // each side form the 2×2 biclique (the "leader pair").
                    for &x in &members[a][..2] {
                        for &y in &members[b][..2] {
                            builder.add_edge(x, y);
                        }
                    }
                }
                for _ in 0..cross_budget / pair_list.len() {
                    let x = members[a][rng.gen_range(0..members[a].len())];
                    let y = members[b][rng.gen_range(0..members[b].len())];
                    builder.add_edge(x, y);
                }
            }

            let mut all: Vec<VertexId> = members.iter().flatten().copied().collect();
            all.sort_unstable();
            communities.push(all);
            groups_of.push(members);
        }

        // Global noise: random cross-label edges across communities.
        let n = builder.vertex_count();
        let approx_edges: usize = communities.iter().map(|c| c.len() * 4).sum();
        let noise = (approx_edges as f64 * config.noise_fraction).ceil() as usize;
        let flat: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        for _ in 0..noise {
            let u = flat[rng.gen_range(0..n)];
            let v = flat[rng.gen_range(0..n)];
            builder.add_edge(u, v);
        }

        let graph = builder.build();
        PlantedNetwork {
            graph,
            communities,
            membership,
            config,
        }
    }

    /// The ground-truth community index of `v`.
    pub fn community_of(&self, v: VertexId) -> usize {
        self.membership[v.index()] as usize
    }

    /// The members of community `idx`.
    pub fn community(&self, idx: usize) -> &[VertexId] {
        &self.communities[idx]
    }

    /// Number of planted communities.
    pub fn community_count(&self) -> usize {
        self.communities.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphView;

    fn small() -> PlantedNetwork {
        PlantedNetwork::generate(PlantedConfig {
            communities: 6,
            community_size: (16, 24),
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = PlantedNetwork::generate(PlantedConfig {
            communities: 6,
            community_size: (16, 24),
            seed: 999,
            ..Default::default()
        });
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn membership_is_consistent() {
        let net = small();
        for (idx, community) in net.communities.iter().enumerate() {
            for &v in community {
                assert_eq!(net.community_of(v), idx);
            }
        }
        let total: usize = net.communities.iter().map(Vec::len).sum();
        assert_eq!(total, net.graph.vertex_count());
    }

    #[test]
    fn each_community_has_two_labels_and_a_butterfly() {
        let net = small();
        let view = GraphView::new(&net.graph);
        for community in &net.communities {
            let labels: std::collections::HashSet<_> =
                community.iter().map(|&v| net.graph.label(v)).collect();
            assert_eq!(labels.len(), 2);
            // The planted butterfly: the two lowest-id vertices per group.
            let mut by_label: std::collections::HashMap<_, Vec<VertexId>> = Default::default();
            for &v in community {
                by_label.entry(net.graph.label(v)).or_default().push(v);
            }
            let sides: Vec<_> = by_label.values().collect();
            let cross = bcc_butterfly_probe(&view, sides[0], sides[1]);
            assert!(cross >= 1, "each community must contain a butterfly");
        }
    }

    /// Counts butterflies between two vertex sets by brute force on the
    /// first few members (the planted ones are at the lowest ids).
    fn bcc_butterfly_probe(
        view: &GraphView<'_>,
        a: &[VertexId],
        b: &[VertexId],
    ) -> usize {
        let g = view.graph();
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        let mut count = 0;
        for i in 0..a.len().min(4) {
            for j in (i + 1)..a.len().min(4) {
                for x in 0..b.len().min(4) {
                    for y in (x + 1)..b.len().min(4) {
                        if g.has_edge(a[i], b[x])
                            && g.has_edge(a[i], b[y])
                            && g.has_edge(a[j], b[x])
                            && g.has_edge(a[j], b[y])
                        {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    #[test]
    fn multi_group_communities() {
        let net = PlantedNetwork::generate(PlantedConfig {
            communities: 4,
            community_size: (24, 30),
            groups_per_community: 3,
            label_pool: 6,
            ..Default::default()
        });
        for community in &net.communities {
            let labels: std::collections::HashSet<_> =
                community.iter().map(|&v| net.graph.label(v)).collect();
            assert_eq!(labels.len(), 3);
        }
    }

    #[test]
    fn groups_are_internally_connected() {
        let net = small();
        let view = GraphView::new(&net.graph);
        // Ring + chord backbone ⇒ every vertex has intra-degree ≥ 2.
        for v in net.graph.vertices() {
            assert!(view.intra_degree(v) >= 2, "vertex {v} under-connected");
        }
    }
}
