//! Labeled-graph datasets with ground-truth communities, case-study
//! networks, and query workloads.
//!
//! The paper evaluates on two proprietary Baidu professional networks and
//! five SNAP graphs with ground-truth communities, synthesizing labels by
//! splitting each community into two labeled halves, adding 10% cross edges
//! inside communities and 10% global noise cross edges (Section 8,
//! "Datasets"). None of those inputs ship with this repository, so
//! [`planted`] implements exactly that construction as a seeded generator,
//! and [`networks`] instantiates it at laptop scale for each of the seven
//! networks of Table 3 (relative sizes and densities preserved; see
//! DESIGN.md §4 for the substitution rationale).
//!
//! [`case_studies`] rebuilds the four narrative networks of Section 8.2
//! (global flights, international trade, the Harry Potter character graph,
//! and an academic collaboration network), and [`queries`] generates the
//! degree-rank / inter-distance / multi-label query workloads of the
//! efficiency experiments.

pub mod case_studies;
pub mod networks;
pub mod planted;
pub mod queries;

pub use case_studies::{academic_network, fiction_network, flight_network, trade_network};
pub use networks::{
    amazon, baidu1, baidu2, dblp, dblp_m, livejournal, livejournal_m, orkut, orkut_m, youtube,
    NetworkSpec,
};
pub use planted::{PlantedConfig, PlantedNetwork};
pub use queries::{
    mbcc_queries, queries_by_degree_rank, queries_by_distance, random_community_queries,
    QueryConstraints,
};
