//! The four case-study networks of Sections 8.2–8.3.
//!
//! The paper's case studies use OpenFlights routes, World Bank WITS trade
//! data, the `potter-network` character graph, and the Aminer DBLP citation
//! dump — none of which are available offline. Each builder here synthesizes
//! a network with the same labeled structure the paper's figures rely on
//! (dense domestic cores + international butterflies; continental trade
//! blocks; two fiction camps; field-labeled collaboration clusters), with
//! the *named* vertices of the paper's narratives placed deterministically
//! so the case-study binaries can run the exact queries of Exp-6/7/8/11.
//! See DESIGN.md §4 for the substitution table.

use bcc_graph::{GraphBuilder, LabeledGraph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn connect_clique(b: &mut GraphBuilder, vs: &[VertexId]) {
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            b.add_edge(vs[i], vs[j]);
        }
    }
}

/// A scaled global flight network: vertices are cities labeled by country;
/// dense domestic hub cores; international edges concentrated on hub
/// cities. The Canadian K7 hub core, the German K6 hub core, and the
/// Toronto/Vancouver/Montreal × Frankfurt/Munich/Duesseldorf butterflies of
/// Figure 11 are planted verbatim.
pub fn flight_network(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    // Canada: the 7 hub cities of Figure 11(a) form a complete K7 (6-core).
    let canada_hubs: Vec<VertexId> = [
        "Toronto", "Vancouver", "Montreal", "Calgary", "Ottawa", "Edmonton", "Winnipeg",
    ]
    .iter()
    .map(|c| b.add_named_vertex(c, "Canada"))
    .collect();
    connect_clique(&mut b, &canada_hubs);

    // Germany: the 6 hub cities form a complete K6 (5-core).
    let germany_hubs: Vec<VertexId> = [
        "Frankfurt", "Munich", "Duesseldorf", "Hamburg", "Stuttgart", "Westerland",
    ]
    .iter()
    .map(|c| b.add_named_vertex(c, "Germany"))
    .collect();
    connect_clique(&mut b, &germany_hubs);

    // Transatlantic butterflies: 3 Canadian × 3 German hubs, fully
    // connected → χ = 6 on both sides (≥ b = 3, Exp-6's setting).
    for &cc in &canada_hubs[..3] {
        for &gg in &germany_hubs[..3] {
            b.add_edge(cc, gg);
        }
    }

    // Domestic spokes: smaller cities attach to 1–3 hubs of their country.
    let attach_spokes = |b: &mut GraphBuilder,
                             rng: &mut ChaCha8Rng,
                             hubs: &[VertexId],
                             country: &str,
                             count: usize| {
        for i in 0..count {
            let v = b.add_named_vertex(&format!("{country} City {i:02}"), country);
            let links = rng.gen_range(1..=3usize);
            for _ in 0..links {
                b.add_edge(v, hubs[rng.gen_range(0..hubs.len())]);
            }
        }
    };
    attach_spokes(&mut b, &mut rng, &canada_hubs, "Canada", 18);
    attach_spokes(&mut b, &mut rng, &germany_hubs, "Germany", 14);

    // Other countries: a hub triangle-or-clique plus spokes; first hubs get
    // international edges.
    let countries = [
        ("United States", 6usize, 24usize),
        ("United Kingdom", 4, 12),
        ("France", 4, 12),
        ("China", 5, 20),
        ("Japan", 4, 12),
        ("Brazil", 4, 12),
        ("Australia", 3, 8),
        ("India", 4, 14),
        ("Mexico", 3, 8),
        ("Spain", 3, 8),
        ("Italy", 3, 8),
        ("Netherlands", 2, 4),
    ];
    let mut first_hubs = vec![canada_hubs[0], germany_hubs[0]];
    for (country, hub_count, spoke_count) in countries {
        let hubs: Vec<VertexId> = (0..hub_count)
            .map(|i| b.add_named_vertex(&format!("{country} Hub {i}"), country))
            .collect();
        connect_clique(&mut b, &hubs);
        attach_spokes(&mut b, &mut rng, &hubs, country, spoke_count);
        first_hubs.push(hubs[0]);
    }
    // International mesh between first hubs (sparse random).
    for i in 0..first_hubs.len() {
        for j in (i + 1)..first_hubs.len() {
            if rng.gen_bool(0.35) {
                b.add_edge(first_hubs[i], first_hubs[j]);
            }
        }
    }
    b.build()
}

/// A full-size international trade network (the paper's has 249 vertices):
/// countries labeled by continent, edges between top trade partners. The
/// Asian and North American blocks of Figure 12(a) are planted with their
/// named members; the United States × China butterflies certify the
/// cross-group interaction.
pub fn trade_network(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    // Figure 12(a)'s Asian block: a dense core of Asian economies.
    let asia_named = [
        "China", "Singapore", "Philippines", "Malaysia", "Brunei", "Hong Kong",
        "United Arab Emirates", "India", "Maldives", "Japan", "Saudi Arabia", "Korea",
        "Thailand",
    ];
    let asia: Vec<VertexId> = asia_named
        .iter()
        .map(|c| b.add_named_vertex(c, "Asia"))
        .collect();
    // Circulant C13(1,2,3): 6-regular, so every named Asian economy sits in
    // the same 6-core (and the coreness default k2 = 6 keeps all of them).
    for i in 0..asia.len() {
        for d in 1..=3usize {
            b.add_edge(asia[i], asia[(i + d) % asia.len()]);
        }
    }

    // North American block: C9(1,2) — a uniform 4-core.
    let na_named = [
        "United States", "Costa Rica", "Guatemala", "Mexico", "Nicaragua", "El Salvador",
        "Canada", "Honduras", "Panama",
    ];
    let na: Vec<VertexId> = na_named
        .iter()
        .map(|c| b.add_named_vertex(c, "North America"))
        .collect();
    for i in 0..na.len() {
        for d in 1..=2usize {
            b.add_edge(na[i], na[(i + d) % na.len()]);
        }
    }

    // Transpacific butterflies: US, Mexico, Canada × China, Japan, Korea —
    // all six inside their blocks' cores.
    for &x in &[na[0], na[3], na[6]] {
        for &y in &[asia[0], asia[9], asia[11]] {
            b.add_edge(x, y);
        }
    }

    // Remaining continents: block per continent with generated names.
    let continents = [
        ("Europe", 45usize),
        ("Africa", 50),
        ("South America", 13),
        ("Oceania", 14),
        ("Asia", 30),          // remaining Asian economies
        ("North America", 14), // Caribbean etc.
        ("Europe", 8),
    ];
    let mut block_reps: Vec<VertexId> = vec![asia[0], na[0]];
    for (bi, (continent, size)) in continents.iter().enumerate() {
        let vs: Vec<VertexId> = (0..*size)
            .map(|i| b.add_named_vertex(&format!("{continent} Economy {bi}-{i:02}"), continent))
            .collect();
        // Hub core + attachments.
        let hubs = vs.len().min(5);
        connect_clique(&mut b, &vs[..hubs]);
        for &v in &vs[hubs..] {
            for _ in 0..3 {
                b.add_edge(v, vs[rng.gen_range(0..hubs)]);
            }
        }
        block_reps.push(vs[0]);
    }
    // Inter-block trade edges.
    for i in 0..block_reps.len() {
        for j in (i + 1)..block_reps.len() {
            if rng.gen_bool(0.5) {
                b.add_edge(block_reps[i], block_reps[j]);
            }
        }
    }
    b.build()
}

/// The Harry Potter character network (deterministic, no RNG): two camps
/// ("justice" / "evil"), family-and-ally edges inside camps, hostility
/// edges across. The 18 members of Figure 13(a)'s BCC — the Weasley family,
/// Harry, Hermione, Dumbledore on one side; Voldemort, the Malfoys, the
/// Crabbes, Goyle, Bellatrix on the other — are wired so that
/// {Harry, Ron, Hermione} × {Draco, Crabbe, Goyle} carry the butterflies.
pub fn fiction_network() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let justice = |b: &mut GraphBuilder, n: &str| b.add_named_vertex(n, "justice");
    let evil = |b: &mut GraphBuilder, n: &str| b.add_named_vertex(n, "evil");

    // Figure 13(a) members.
    let harry = justice(&mut b, "Harry Potter");
    let ron = justice(&mut b, "Ron Weasley");
    let hermione = justice(&mut b, "Hermione Granger");
    let dumbledore = justice(&mut b, "Albus Dumbledore");
    let ginny = justice(&mut b, "Ginny Weasley");
    let fred = justice(&mut b, "Fred Weasley");
    let george = justice(&mut b, "George Weasley");
    let bill = justice(&mut b, "Bill Weasley");
    let charlie = justice(&mut b, "Charlie Weasley");
    let arthur = justice(&mut b, "Arthur Weasley");
    let molly = justice(&mut b, "Molly Weasley");

    let voldemort = evil(&mut b, "Lord Voldemort");
    let draco = evil(&mut b, "Draco Malfoy");
    let lucius = evil(&mut b, "Lucius Malfoy");
    let crabbe = evil(&mut b, "Vincent Crabbe");
    let crabbe_sr = evil(&mut b, "Vincent Crabbe Sr.");
    let goyle = evil(&mut b, "Gregory Goyle");
    let bellatrix = evil(&mut b, "Bellatrix Lestrange");

    // Justice camp: the 11 members of Figure 13(a) wired as a circulant
    // C11(1,2) ring (4-regular → a clean 4-core), ordered so that ring
    // adjacency follows the story's closest relationships. Keeping the core
    // exactly 4-regular makes coreness(Ron) = 4 with Harry, Hermione, and
    // Dumbledore *inside* Ron's 4-core — the paper's community.
    let justice_ring = [
        harry, ron, hermione, ginny, molly, arthur, bill, charlie, fred, george, dumbledore,
    ];
    for i in 0..justice_ring.len() {
        let n = justice_ring.len();
        b.add_edge(justice_ring[i], justice_ring[(i + 1) % n]);
        b.add_edge(justice_ring[i], justice_ring[(i + 2) % n]);
    }

    // Evil camp: Voldemort's inner circle as a C7(1,2) ring (again a
    // 4-regular 4-core).
    let evil_ring = [voldemort, lucius, draco, crabbe, goyle, crabbe_sr, bellatrix];
    for i in 0..evil_ring.len() {
        let n = evil_ring.len();
        b.add_edge(evil_ring[i], evil_ring[(i + 1) % n]);
        b.add_edge(evil_ring[i], evil_ring[(i + 2) % n]);
    }

    // Hostility (cross) edges: the trio versus Draco's gang form the
    // butterflies; the leaders clash too.
    for &j in &[harry, ron, hermione] {
        for &e in &[draco, crabbe, goyle] {
            b.add_edge(j, e);
        }
    }
    b.add_edge(harry, voldemort);
    b.add_edge(harry, lucius);
    b.add_edge(harry, bellatrix);
    b.add_edge(dumbledore, voldemort);
    b.add_edge(ginny, voldemort);
    b.add_edge(arthur, lucius);
    b.add_edge(fred, draco);
    b.add_edge(george, draco);
    b.add_edge(molly, bellatrix);

    // Supporting cast outside the Figure 13(a) community: loosely attached,
    // so the search peels them away.
    let neville = justice(&mut b, "Neville Longbottom");
    let luna = justice(&mut b, "Luna Lovegood");
    let sirius = justice(&mut b, "Sirius Black");
    let lupin = justice(&mut b, "Remus Lupin");
    let hagrid = justice(&mut b, "Rubeus Hagrid");
    let mcgonagall = justice(&mut b, "Minerva McGonagall");
    let snape = evil(&mut b, "Severus Snape");
    let wormtail = evil(&mut b, "Peter Pettigrew");
    let quirrell = evil(&mut b, "Quirinus Quirrell");
    let umbridge = evil(&mut b, "Dolores Umbridge");
    let dementor = evil(&mut b, "Barty Crouch Jr.");

    // Periphery stays below justice-degree 4 so the 4-core excludes it.
    b.add_edge(neville, harry);
    b.add_edge(neville, luna);
    b.add_edge(luna, hermione);
    b.add_edge(hagrid, harry);
    b.add_edge(hagrid, ron);
    b.add_edge(sirius, harry);
    b.add_edge(sirius, lupin);
    b.add_edge(lupin, harry);
    b.add_edge(mcgonagall, dumbledore);
    b.add_edge(mcgonagall, harry);
    b.add_edge(snape, voldemort);
    b.add_edge(snape, lucius);
    b.add_edge(snape, dumbledore); // the double agent
    b.add_edge(snape, harry);
    b.add_edge(wormtail, voldemort);
    b.add_edge(wormtail, sirius);
    b.add_edge(wormtail, lupin);
    b.add_edge(quirrell, voldemort);
    b.add_edge(quirrell, harry);
    b.add_edge(umbridge, harry);
    b.add_edge(umbridge, mcgonagall);
    b.add_edge(dementor, voldemort);
    b.add_edge(dementor, harry);

    b.build()
}

/// A field-labeled academic collaboration network (scaled stand-in for the
/// Aminer DBLP-v12 graph of Exp-11): seven research-field labels, clustered
/// collaboration groups, and the two planted interdisciplinary communities
/// of Figure 15 — a Database × Machine Learning group around Tim Kraska and
/// Michael I. Jordan, and a three-field group adding Ion Stoica's Systems
/// community (bridged via Michael J. Franklin).
pub fn academic_network(seed: u64) -> LabeledGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let fields = [
        "Database",
        "Machine Learning",
        "Systems and Networking",
        "Theory",
        "Computer Vision",
        "NLP",
        "Security",
    ];

    // --- Figure 15 anchors -------------------------------------------------
    // Database group: a 3-core of 13 scholars around Franklin and Kraska.
    let franklin = b.add_named_vertex("Michael J. Franklin", "Database");
    let kraska = b.add_named_vertex("Tim Kraska", "Database");
    let mut db_group = vec![franklin, kraska];
    for i in 0..11 {
        db_group.push(b.add_named_vertex(&format!("DB Scholar {i:02}"), "Database"));
    }
    // Ring + chords to get a 3-core of 13 vertices.
    for i in 0..db_group.len() {
        b.add_edge(db_group[i], db_group[(i + 1) % db_group.len()]);
        b.add_edge(db_group[i], db_group[(i + 2) % db_group.len()]);
        b.add_edge(db_group[i], db_group[(i + 4) % db_group.len()]);
    }

    // Machine Learning group: a 4-clique around Jordan.
    let jordan = b.add_named_vertex("Michael I. Jordan", "Machine Learning");
    let mut ml_group = vec![jordan];
    for i in 0..5 {
        ml_group.push(b.add_named_vertex(&format!("ML Scholar {i:02}"), "Machine Learning"));
    }
    connect_clique(&mut b, &ml_group);

    // Systems group: a 3-core around Stoica.
    let stoica = b.add_named_vertex("Ion Stoica", "Systems and Networking");
    let mut sys_group = vec![stoica];
    for i in 0..7 {
        sys_group.push(b.add_named_vertex(&format!("SYS Scholar {i:02}"), "Systems and Networking"));
    }
    connect_clique(&mut b, &sys_group[..5]);
    let anchors: Vec<VertexId> = sys_group[..3].to_vec();
    for &v in &sys_group[5..] {
        for &u in &anchors {
            b.add_edge(v, u);
        }
    }

    // DB × ML butterflies (ML4DB/DB4ML): Kraska and two DB colleagues
    // collaborate with Jordan and two ML colleagues — χ(Kraska) = 6,
    // χ(Jordan) = 6 ≥ b = 3.
    for &d in &[kraska, db_group[2], db_group[3]] {
        for &m in &[jordan, ml_group[1], ml_group[2]] {
            b.add_edge(d, m);
        }
    }
    // DB × SYS butterflies through Franklin/Stoica (AMPLab style).
    for &d in &[franklin, db_group[4], db_group[5]] {
        for &s in &[stoica, sys_group[1], sys_group[2]] {
            b.add_edge(d, s);
        }
    }
    // ML × SYS: one shared project (butterfly) so the 3-label community can
    // also be certified directly where needed.
    for &m in &[ml_group[3], ml_group[4]] {
        for &s in &[sys_group[3], sys_group[4]] {
            b.add_edge(m, s);
        }
    }

    // --- Background collaboration clusters ---------------------------------
    for cluster in 0..60 {
        let field = fields[rng.gen_range(0..fields.len())];
        let size = rng.gen_range(6..16usize);
        let vs: Vec<VertexId> = (0..size)
            .map(|i| b.add_named_vertex(&format!("{field} Author {cluster:02}-{i:02}"), field))
            .collect();
        for i in 0..vs.len() {
            b.add_edge(vs[i], vs[(i + 1) % vs.len()]);
            b.add_edge(vs[i], vs[(i + 2) % vs.len()]);
            if rng.gen_bool(0.3) {
                let j = rng.gen_range(0..vs.len());
                b.add_edge(vs[i], vs[j]);
            }
        }
        // Occasional interdisciplinary edge into the anchor groups.
        if rng.gen_bool(0.3) {
            let anchor = [db_group[6], ml_group[3], sys_group[3]][rng.gen_range(0..3usize)];
            b.add_edge(vs[0], anchor);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphView;

    #[test]
    fn flight_network_has_planted_structure() {
        let g = flight_network(7);
        let toronto = g.vertex_by_name("Toronto").unwrap();
        let frankfurt = g.vertex_by_name("Frankfurt").unwrap();
        assert_ne!(g.label(toronto), g.label(frankfurt));
        // Canadian hubs form a 6-core within their label.
        let view = GraphView::new(&g);
        let coreness = bcc_cohesion::label_core_decomposition(&view);
        assert!(coreness[toronto.index()] >= 6, "{}", coreness[toronto.index()]);
        assert!(coreness[frankfurt.index()] >= 5);
        // The transatlantic butterflies exist with χ ≥ 3 on both sides.
        let cross = bcc_butterfly::BipartiteCross::new(g.label(toronto), g.label(frankfurt));
        let counts = bcc_butterfly::ButterflyCounts::compute(&view, cross);
        assert!(counts.chi(toronto) >= 3, "χ(Toronto) = {}", counts.chi(toronto));
        assert!(counts.chi(frankfurt) >= 3);
    }

    #[test]
    fn trade_network_names_resolve() {
        let g = trade_network(7);
        let us = g.vertex_by_name("United States").unwrap();
        let china = g.vertex_by_name("China").unwrap();
        assert_eq!(g.interner().name(g.label(us)), Some("North America"));
        assert_eq!(g.interner().name(g.label(china)), Some("Asia"));
        assert!(g.label_count() >= 6);
        assert!(g.vertex_count() >= 150, "{}", g.vertex_count());
    }

    #[test]
    fn fiction_network_camps_and_butterflies() {
        let g = fiction_network();
        let ron = g.vertex_by_name("Ron Weasley").unwrap();
        let draco = g.vertex_by_name("Draco Malfoy").unwrap();
        assert_ne!(g.label(ron), g.label(draco));
        let view = GraphView::new(&g);
        let cross = bcc_butterfly::BipartiteCross::new(g.label(ron), g.label(draco));
        let counts = bcc_butterfly::ButterflyCounts::compute(&view, cross);
        assert!(counts.max_left >= 3 && counts.max_right >= 3);
        // Voldemort must be findable (the vertex CTC famously misses).
        assert!(g.vertex_by_name("Lord Voldemort").is_some());
    }

    #[test]
    fn academic_network_anchors() {
        let g = academic_network(7);
        for name in [
            "Tim Kraska",
            "Michael I. Jordan",
            "Michael J. Franklin",
            "Ion Stoica",
        ] {
            assert!(g.vertex_by_name(name).is_some(), "{name} missing");
        }
        let kraska = g.vertex_by_name("Tim Kraska").unwrap();
        let jordan = g.vertex_by_name("Michael I. Jordan").unwrap();
        let view = GraphView::new(&g);
        let cross = bcc_butterfly::BipartiteCross::new(g.label(kraska), g.label(jordan));
        let counts = bcc_butterfly::ButterflyCounts::compute(&view, cross);
        assert!(counts.chi(kraska) >= 3, "χ(Kraska) = {}", counts.chi(kraska));
        assert!(counts.chi(jordan) >= 3);
        assert_eq!(g.label_count(), 7);
    }

    #[test]
    fn case_studies_are_deterministic() {
        let a = flight_network(1);
        let b = flight_network(1);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let f1 = fiction_network();
        let f2 = fiction_network();
        assert_eq!(f1.edge_count(), f2.edge_count());
    }
}
