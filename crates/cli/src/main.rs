//! `bcc` — command-line butterfly-core community search.
//!
//! ```text
//! bcc stats    <graph-file>
//! bcc search   <graph-file> --ql <name|id> --qr <name|id> [--k1 N] [--k2 N] [--b N] [--method online|lp|l2p] [--query-threads N]
//! bcc msearch  <graph-file> --q <name|id> --q <name|id> --q ... [--k N] [--b N] [--method online|lp|l2p] [--query-threads N]
//! bcc serve    <graph-file> [--shards N] [--workers N] [--cache N] [--cache-weight-cap N] [--name NAME] [--index-threads N] [--query-threads N]
//! bcc listen   <graph-file> <addr> [--max-conns N] [--queue-depth N] [--timeout-ms N]
//! bcc batch    <graph-file> <queries-file> [--workers N] [--cache N] [--name NAME] [--index-threads N] [--query-threads N]
//! bcc generate <output-file> [--network baidu1|baidu2|amazon|dblp|youtube|livejournal|orkut] [--scale F]
//! bcc case     <flight|trade|fiction|academic> [--out FILE]
//! ```
//!
//! Graph files use the `bcc-graph` text format (`v <id> <label> [name]` /
//! `e <u> <v>` lines). `serve` reads request lines from stdin and prints one
//! JSON result line each (see `bcc-service` for the protocol); `batch` runs
//! a file of request lines concurrently across the worker pool.

use std::process::ExitCode;
use std::time::Instant;

use bcc_core::{
    BccIndex, BccParams, BccQuery, LpBcc, MbccParams, MbccQuery, MultiLabelBcc, MultiStrategy,
};
use bcc_graph::{GraphView, LabeledGraph, VertexId};
use bcc_service::{BccService, Server, ServerConfig, ServiceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h")
        || args.first().map(String::as_str) == Some("help")
    {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bcc stats    <graph-file>
  bcc search   <graph-file> --ql <name|id> --qr <name|id> [--k1 N] [--k2 N] [--b N] [--method online|lp|l2p] [--index-threads N] [--query-threads N]
  bcc msearch  <graph-file> --q <name|id> --q <name|id> [--q ...] [--k N] [--b N] [--method online|lp|l2p] [--index-threads N] [--query-threads N]
  bcc serve    <graph-file> [--shards N] [--workers N] [--cache N] [--cache-weight-cap N] [--name NAME] [--index-threads N] [--query-threads N] [--no-metrics] [--slow-query-ms N] [--fault SPEC]... [--breaker-threshold N] [--breaker-cooldown-ms N]
  bcc listen   <graph-file> <addr> [--max-conns N] [--queue-depth N] [--timeout-ms N] [--metrics-addr ADDR] [serve flags]
  bcc batch    <graph-file> <queries-file> [--shards N] [--workers N] [--cache N] [--cache-weight-cap N] [--name NAME] [--index-threads N] [--query-threads N] [--no-metrics] [--slow-query-ms N] [--fault SPEC]... [--breaker-threshold N] [--breaker-cooldown-ms N]
  bcc generate <output-file> [--network dblp] [--scale 1.0]
  bcc case     <flight|trade|fiction|academic> [--out FILE]

--index-threads parallelizes the offline BCindex build (0 = one thread per
core). Defaults: 0 for serve/batch (the build amortizes across a session),
1 for one-shot search/msearch (a single query does not grab every core
unasked). The produced index is bit-identical at any setting.

--query-threads parallelizes the stages *inside* each search — BFS query
distances, label-core reduction, butterfly recounts (0 = one thread per
core, explicit 1 = the sequential reference). Results and responses are
bit-identical at any setting. One-shot search/msearch default to 1; the
serving commands default to AUTO (sequential on small graphs, one thread
per core on large ones).

--shards splits the serving commands into N independent worker pools
(default 1). A routing table pins each graph to a shard by name; `shard
assign <graph> <id>` overrides the default hash placement and `shard list`
shows the topology. An `msearch` of more than two vertices scatters its
label-pair sub-queries across the owning shards and gathers them into one
response — responses stay byte-identical at any shard count. --cache-weight-cap
bounds the result cache by total community members instead of entry count
(0 = entry-count only).

serve reads `search ql=<v> qr=<v> [k1=N] [k2=N] [b=N] [method=...]` /
`msearch q=<v>,<v>,...` / `add_edge u=<v> v=<v>` / `remove_edge u=<v> v=<v>` /
`commit` / `stats` / `graphs` / `metrics` / `shard list` /
`shard assign <graph> <id>` / `quit` lines from stdin and prints one JSON
result line per request; batch runs a file of such lines concurrently and
prints results in input order. add_edge/remove_edge stage live edge
updates; commit applies them, patching the BCindex in place and
invalidating only the affected cache entries.

Observability: per-verb latency histograms, per-phase query/commit timings,
queue-wait distribution, and a slow-query log (one JSON line to stderr per
query over --slow-query-ms, default 250). The `metrics` verb returns the
whole registry as one JSON line; --metrics-addr additionally serves
Prometheus text exposition over HTTP. --no-metrics disables the histogram
tier (responses are byte-identical either way; telemetry is out-of-band).

listen serves the same protocol over TCP to many concurrent clients, each on
its own connection (newline-delimited JSON or length-prefixed binary frames,
negotiated per connection from its first byte). --max-conns caps concurrent
connections; --queue-depth bounds the admission queue — requests beyond it
are rejected with a structured `overloaded` error. A `quit` line closes the
issuing connection; `shutdown` stops the whole server. The bound address is
printed to stderr.

Fault tolerance (serve/batch/listen): --fault <site>:<action>[:<from>[:<count>]]
(repeatable) arms deterministic fault injection — action is panic, error, or
delay<N>ms; site is a query/commit phase (query_distance, core_decomp,
butterfly_counting, leader_pairing, overlay_apply, cascade, chi_delta,
cache_invalidate, query_dist_expand, query_dist_merge) or a transport site
(codec_decode, admission, worker_execute, scatter_pair). The Nth..N+count-1th
matches at the site fire; everything else is untouched. Worker panics are
contained (a structured `internal` error; the worker is respawned so pool
capacity never decays). --breaker-threshold (default 5, 0 disables) opens a
per-shard circuit breaker after that many consecutive failures — an open
shard's scatter sub-queries are rerouted to the home shard, with half-open
probes after --breaker-cooldown-ms (default 250). Breaker state appears in
`shard list` and `stats`.";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "stats" => stats(args),
        "search" => search(args),
        "msearch" => msearch(args),
        "serve" => serve(args),
        "listen" => listen(args),
        "batch" => batch(args),
        "generate" => generate(args),
        "case" => case(args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].as_str())
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The shared `--index-threads` knob (0 ⇒ one per available core): how
/// many workers the offline BCindex build uses. Any value produces a
/// bit-identical index — the knob only moves build wall time. `default`
/// applies when the flag is absent: 0 for the serving commands (the build
/// is amortized across a whole session), 1 for one-shot search/msearch
/// (a single query should not grab every core unasked).
fn index_threads(args: &[String], default: usize) -> Result<usize, String> {
    flag_value(args, "--index-threads")
        .map(|t| t.parse().map_err(|_| "--index-threads must be an integer".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(default))
}

/// The shared `--query-threads` knob (0 ⇒ one per available core): how many
/// workers each search's internal stages (BFS distances, label-core
/// reduction, butterfly recounts) use. Results are bit-identical at any
/// setting. Defaults to 1 everywhere: the serving commands already
/// parallelize *across* queries, and a one-shot search should not grab
/// every core unasked.
fn query_threads(args: &[String]) -> Result<usize, String> {
    flag_value(args, "--query-threads")
        .map(|t| t.parse().map_err(|_| "--query-threads must be an integer".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(1))
}

fn load(args: &[String]) -> Result<LabeledGraph, String> {
    let path = args.get(1).ok_or("missing graph file")?;
    bcc_graph::io::read_graph_file(path).map_err(|e| e.to_string())
}

fn resolve(graph: &LabeledGraph, token: &str) -> Result<VertexId, String> {
    if let Some(v) = graph.vertex_by_name(token) {
        return Ok(v);
    }
    let id: u32 = token
        .parse()
        .map_err(|_| format!("`{token}` is neither a vertex name nor an id"))?;
    if (id as usize) < graph.vertex_count() {
        Ok(VertexId(id))
    } else {
        Err(format!("vertex id {id} out of range"))
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let graph = load(args)?;
    let view = GraphView::new(&graph);
    println!("vertices : {}", graph.vertex_count());
    println!("edges    : {}", graph.edge_count());
    println!("labels   : {}", graph.label_count());
    println!("k_max    : {}", bcc_cohesion::max_coreness(&view));
    println!("d_max    : {}", graph.max_degree());
    let hist = graph.label_histogram();
    for (label, name) in graph.interner().iter() {
        println!("  label {name}: {} vertices", hist[label.index()]);
    }
    Ok(())
}

fn search(args: &[String]) -> Result<(), String> {
    let graph = load(args)?;
    let ql = resolve(&graph, flag_value(args, "--ql").ok_or("--ql required")?)?;
    let qr = resolve(&graph, flag_value(args, "--qr").ok_or("--qr required")?)?;
    let query = BccQuery::pair(ql, qr);
    let mut params = BccParams::auto(&graph, &query);
    if let Some(k1) = flag_value(args, "--k1") {
        params.k1 = k1.parse().map_err(|_| "--k1 must be an integer")?;
    }
    if let Some(k2) = flag_value(args, "--k2") {
        params.k2 = k2.parse().map_err(|_| "--k2 must be an integer")?;
    }
    if let Some(b) = flag_value(args, "--b") {
        params.b = b.parse().map_err(|_| "--b must be an integer")?;
    }
    let method = flag_value(args, "--method").unwrap_or("lp");
    println!(
        "searching ({}, {}, {})-BCC for {{{}, {}}} with {method}",
        params.k1,
        params.k2,
        params.b,
        graph.vertex_name(ql),
        graph.vertex_name(qr)
    );
    // The BCindex is consulted only by l2p: build it lazily in that arm so
    // online/lp pay nothing, and report its (offline, amortizable) build
    // time separately from the search itself.
    let qt = query_threads(args)?;
    let search_started = Instant::now();
    let result = match method {
        "online" => bcc_core::OnlineBcc::default()
            .with_query_threads(qt)
            .search(&graph, &query, &params),
        "lp" => LpBcc::default().with_query_threads(qt).search(&graph, &query, &params),
        "l2p" => {
            let index_started = Instant::now();
            let index = BccIndex::build_with_threads(&graph, index_threads(args, 1)?);
            println!("index build   : {:?}", index_started.elapsed());
            let search_started = Instant::now();
            let result = bcc_core::L2pBcc::default()
                .with_query_threads(qt)
                .search(&graph, &index, &query, &params);
            println!("search time   : {:?}", search_started.elapsed());
            result
        }
        other => return Err(format!("unknown method `{other}`")),
    };
    if method != "l2p" {
        println!("search time   : {:?}", search_started.elapsed());
    }
    match result {
        Ok(result) => {
            println!(
                "community of {} members, query distance {}, {} iterations:",
                result.community.len(),
                result.query_distance,
                result.iterations
            );
            for &v in &result.community {
                println!(
                    "  {} [{}]",
                    graph.vertex_name(v),
                    graph.interner().name(graph.label(v)).unwrap_or("?")
                );
            }
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn msearch(args: &[String]) -> Result<(), String> {
    let graph = load(args)?;
    let tokens = flag_values(args, "--q");
    if tokens.len() < 2 {
        return Err("msearch needs at least two --q vertices".into());
    }
    let queries: Result<Vec<VertexId>, String> =
        tokens.iter().map(|t| resolve(&graph, t)).collect();
    let query = MbccQuery::new(queries?);
    let mut params = MbccParams::auto(&graph, &query);
    if let Some(k) = flag_value(args, "--k") {
        let k: u32 = k.parse().map_err(|_| "--k must be an integer")?;
        params.ks = vec![k; query.m()];
    }
    if let Some(b) = flag_value(args, "--b") {
        params.b = b.parse().map_err(|_| "--b must be an integer")?;
    }
    let method = flag_value(args, "--method").unwrap_or("lp");
    // One source of truth for the token → strategy mapping (including the
    // Local eta/weights defaults): the service's Method.
    let strategy = match method {
        "online" => bcc_service::Method::Online.multi_strategy(),
        "lp" => bcc_service::Method::Lp.multi_strategy(),
        "l2p" => bcc_service::Method::L2p.multi_strategy(),
        other => return Err(format!("unknown method `{other}`")),
    };
    // As in `search`: only the local (l2p) strategy reads the BCindex, so
    // it alone pays the build, reported separately from the search.
    let index = match strategy {
        MultiStrategy::Local { .. } => {
            let index_started = Instant::now();
            let index = BccIndex::build_with_threads(&graph, index_threads(args, 1)?);
            println!("index build   : {:?}", index_started.elapsed());
            Some(index)
        }
        _ => None,
    };
    let searcher = MultiLabelBcc::with_strategy(strategy).with_query_threads(query_threads(args)?);
    let search_started = Instant::now();
    let result = searcher.search(&graph, index.as_ref(), &query, &params);
    println!("search time   : {:?}", search_started.elapsed());
    match result {
        Ok(result) => {
            println!(
                "mBCC community of {} members (m = {}):",
                result.community.len(),
                query.m()
            );
            for &v in &result.community {
                println!(
                    "  {} [{}]",
                    graph.vertex_name(v),
                    graph.interner().name(graph.label(v)).unwrap_or("?")
                );
            }
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Collect repeated `--fault <site>:<action>[:<from>[:<count>]]` specs and
/// pre-validate them: `BccService::new` panics on a malformed plan (it has no
/// error channel), so parse the whole set here and surface a clean CLI error
/// instead.
fn fault_specs(args: &[String]) -> Result<Vec<String>, String> {
    let specs: Vec<String> = flag_values(args, "--fault")
        .into_iter()
        .map(str::to_string)
        .collect();
    bcc_service::FaultPlan::parse(&specs).map_err(|e| format!("invalid --fault spec: {e}"))?;
    Ok(specs)
}

/// Shared setup for `serve`/`batch`: load the graph file and start a
/// service with it registered under `--name` (default: the file stem).
fn start_service(args: &[String]) -> Result<BccService, String> {
    let path = args.get(1).ok_or("missing graph file")?;
    let graph = bcc_graph::io::read_graph_file(path).map_err(|e| e.to_string())?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("default")
        .to_string();
    let config = ServiceConfig {
        shards: flag_value(args, "--shards")
            .map(|s| s.parse().map_err(|_| "--shards must be an integer"))
            .transpose()?
            .unwrap_or(1),
        workers: flag_value(args, "--workers")
            .map(|w| w.parse().map_err(|_| "--workers must be an integer"))
            .transpose()?
            .unwrap_or(0),
        cache_capacity: flag_value(args, "--cache")
            .map(|c| c.parse().map_err(|_| "--cache must be an integer"))
            .transpose()?
            .unwrap_or(4096),
        cache_weight_cap: flag_value(args, "--cache-weight-cap")
            .map(|c| c.parse().map_err(|_| "--cache-weight-cap must be an integer"))
            .transpose()?
            .unwrap_or(0),
        default_timeout_ms: None,
        default_graph: flag_value(args, "--name").unwrap_or(&stem).to_string(),
        index_threads: index_threads(args, 0)?,
        metrics: !has_flag(args, "--no-metrics"),
        slow_query_ms: flag_value(args, "--slow-query-ms")
            .map(|t| t.parse().map_err(|_| "--slow-query-ms must be an integer"))
            .transpose()?
            .unwrap_or(250),
        // Under the service the knob is adaptive by default (sequential on
        // small graphs, all cores on big ones); `--query-threads 1` stays
        // the explicit sequential reference.
        query_threads: flag_value(args, "--query-threads")
            .map(|t| t.parse().map_err(|_| "--query-threads must be an integer"))
            .transpose()?
            .unwrap_or(bcc_service::QUERY_THREADS_AUTO),
        faults: fault_specs(args)?,
        breaker_threshold: flag_value(args, "--breaker-threshold")
            .map(|t| t.parse().map_err(|_| "--breaker-threshold must be an integer"))
            .transpose()?
            .unwrap_or(5),
        breaker_cooldown_ms: flag_value(args, "--breaker-cooldown-ms")
            .map(|t| t.parse().map_err(|_| "--breaker-cooldown-ms must be an integer"))
            .transpose()?
            .unwrap_or(250),
    };
    let service = BccService::with_graph(config, graph);
    // Banner on stderr: stdout carries only protocol responses.
    let entry = service
        .registry()
        .get(&service.config().default_graph)
        .expect("default graph was just registered");
    eprintln!(
        "serving `{}` ({} vertices, {} edges, {} labels) with {} shards × {} workers, cache {}",
        entry.name(),
        entry.graph().vertex_count(),
        entry.graph().edge_count(),
        entry.graph().label_count(),
        service.shard_map().shard_count(),
        service.shard_map().shard(0).pool().workers(),
        service.config().cache_capacity,
    );
    Ok(service)
}

fn serve(args: &[String]) -> Result<(), String> {
    let service = start_service(args)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    service
        .run_session(stdin.lock(), stdout.lock())
        .map_err(|e| e.to_string())
}

fn listen(args: &[String]) -> Result<(), String> {
    // `listen <graph-file> <addr>`: the graph file rides in the same slot
    // as serve's, so `start_service` applies unchanged.
    let addr = args.get(2).ok_or("missing listen address (e.g. 127.0.0.1:7447)")?;
    let mut config = ServerConfig::default();
    if let Some(m) = flag_value(args, "--max-conns") {
        config.max_connections = m.parse().map_err(|_| "--max-conns must be an integer")?;
    }
    if let Some(q) = flag_value(args, "--queue-depth") {
        config.queue_depth = q.parse().map_err(|_| "--queue-depth must be an integer")?;
    }
    if let Some(t) = flag_value(args, "--timeout-ms") {
        config.default_timeout_ms =
            Some(t.parse().map_err(|_| "--timeout-ms must be an integer")?);
    }
    let service = std::sync::Arc::new(start_service(args)?);
    let handle = Server::bind(std::sync::Arc::clone(&service), addr.as_str(), config)
        .map_err(|e| e.to_string())?;
    // Stderr like the serve banner — and the *bound* address, so `:0`
    // callers (tests, scripts) learn the kernel-chosen port.
    eprintln!("listening on {}", handle.addr());
    if let Some(metrics_addr) = flag_value(args, "--metrics-addr") {
        let bound = spawn_metrics_exporter(std::sync::Arc::clone(&service), metrics_addr)?;
        eprintln!("metrics exposition on http://{bound}/metrics");
    }
    handle.join();
    eprintln!("server shut down");
    Ok(())
}

/// Binds `addr` and serves the service's Prometheus text exposition to
/// every connection as one HTTP/1.0 response. A trivial hand-rolled
/// responder — no HTTP dependency: read (and discard) the request head,
/// write status line + headers + body, close. Scrapes are rare and tiny,
/// so one acceptor thread handles connections sequentially; a slow or
/// silent client is cut off by a read timeout rather than wedging the
/// exporter. Returns the bound address (`:0` picks a free port).
fn spawn_metrics_exporter(
    service: std::sync::Arc<BccService>,
    addr: &str,
) -> Result<std::net::SocketAddr, String> {
    use std::io::{Read as _, Write as _};
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
            // Drain the request head (best effort: stop at the blank line,
            // a timeout, or 8 KiB — whichever comes first).
            let mut head = Vec::with_capacity(512);
            let mut chunk = [0u8; 512];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        head.extend_from_slice(&chunk[..n]);
                        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                            break;
                        }
                    }
                }
            }
            let body = service.prometheus();
            let response = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(bound)
}

fn batch(args: &[String]) -> Result<(), String> {
    let queries_path = args.get(2).ok_or("missing queries file")?;
    let lines: Vec<String> = std::fs::read_to_string(queries_path)
        .map_err(|e| format!("{queries_path}: {e}"))?
        .lines()
        .map(str::to_owned)
        .collect();
    let service = start_service(args)?;
    let started = Instant::now();
    let responses = service.run_batch(&lines);
    let elapsed = started.elapsed();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    use std::io::Write as _;
    for line in &responses {
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    let stats = service.stats();
    eprintln!(
        "{} responses in {:?} ({:.0} q/s); cache hits {}, misses {}, searches {}",
        responses.len(),
        elapsed,
        responses.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.cache.hits,
        stats.cache.misses,
        stats.searches_executed,
    );
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let out = args.get(1).ok_or("missing output file")?;
    let network = flag_value(args, "--network").unwrap_or("dblp");
    let scale: f64 = flag_value(args, "--scale")
        .unwrap_or("1.0")
        .parse()
        .map_err(|_| "--scale must be a number")?;
    let spec = match network {
        "baidu1" => bcc_datasets::baidu1(scale),
        "baidu2" => bcc_datasets::baidu2(scale),
        "amazon" => bcc_datasets::amazon(scale),
        "dblp" => bcc_datasets::dblp(scale),
        "youtube" => bcc_datasets::youtube(scale),
        "livejournal" => bcc_datasets::livejournal(scale),
        "orkut" => bcc_datasets::orkut(scale),
        other => return Err(format!("unknown network `{other}`")),
    };
    let net = spec.build();
    bcc_graph::io::write_graph_file(&net.graph, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} vertices, {} edges, {} labels) to {out}",
        spec.name,
        net.graph.vertex_count(),
        net.graph.edge_count(),
        net.graph.label_count()
    );
    Ok(())
}

fn case(args: &[String]) -> Result<(), String> {
    let which = args.get(1).ok_or("missing case-study name")?;
    let graph = match which.as_str() {
        "flight" => bcc_datasets::flight_network(42),
        "trade" => bcc_datasets::trade_network(42),
        "fiction" => bcc_datasets::fiction_network(),
        "academic" => bcc_datasets::academic_network(42),
        other => return Err(format!("unknown case study `{other}`")),
    };
    match flag_value(args, "--out") {
        Some(path) => {
            bcc_graph::io::write_graph_file(&graph, path).map_err(|e| e.to_string())?;
            println!("wrote {which} network to {path}");
        }
        None => {
            println!(
                "{which}: {} vertices, {} edges, {} labels",
                graph.vertex_count(),
                graph.edge_count(),
                graph.label_count()
            );
        }
    }
    Ok(())
}
