//! End-to-end test of `bcc serve` and `bcc batch`: spawn the real binary,
//! drive a scripted stdin session, and check the response lines.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_bcc");

/// Writes a small two-clique butterfly graph file and returns its path.
fn graph_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut b = bcc_graph::GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    let path = dir.join("butterfly.g");
    bcc_graph::io::write_graph_file(&b.build(), &path).expect("write graph file");
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcc-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn scripted_serve_session_end_to_end() {
    let dir = temp_dir("serve");
    let graph = graph_file(&dir);

    let mut child = Command::new(BIN)
        .arg("serve")
        .arg(&graph)
        .args(["--workers", "2", "--name", "demo"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bcc serve");

    let script = "# scripted session\n\
                  search ql=l0 qr=r0\n\
                  search ql=r0 qr=l0\n\
                  msearch q=l0,r0 k=3\n\
                  not a request\n\
                  search ql=nobody qr=r0\n\
                  stats\n\
                  quit\n\
                  search ql=l1 qr=r1\n";
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("session completes");
    assert!(output.status.success(), "serve exited with {:?}", output.status);

    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines.len(),
        6,
        "comment is silent, quit ends the session before the last query:\n{stdout}"
    );
    assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
    assert!(lines[0].contains("\"graph\":\"demo\""), "{}", lines[0]);
    assert!(lines[0].contains("\"size\":8"), "{}", lines[0]);
    assert_eq!(
        lines[0].split("\"community\"").nth(1),
        lines[1].split("\"community\"").nth(1),
        "symmetric query serves the identical community"
    );
    assert!(lines[2].contains("\"ok\":true"), "msearch: {}", lines[2]);
    assert!(lines[3].contains("\"error\":\"parse\""), "{}", lines[3]);
    assert!(lines[4].contains("\"error\":\"resolve\""), "{}", lines[4]);
    assert!(lines[5].contains("\"cache_hits\":1"), "stats line: {}", lines[5]);

    let stderr = String::from_utf8(output.stderr).expect("utf8 stderr");
    assert!(
        stderr.contains("serving `demo` (8 vertices"),
        "banner goes to stderr: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutate_then_search_session_end_to_end() {
    let dir = temp_dir("mutate");
    let graph = graph_file(&dir);

    let mut child = Command::new(BIN)
        .arg("serve")
        .arg(&graph)
        .args(["--workers", "2", "--name", "live"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bcc serve");

    // Warm the cache, grow the butterfly bridge to all 4x4 cross pairs,
    // commit, and search again: the answer must reflect the live graph.
    let script = "search ql=l0 qr=r0 method=l2p\n\
                  add_edge u=l2 v=r2\n\
                  add_edge u=l2 v=r3\n\
                  add_edge u=l3 v=r2\n\
                  add_edge u=l3 v=r3\n\
                  commit\n\
                  search ql=l2 qr=r2 method=l2p\n\
                  remove_edge u=l9 v=r0\n\
                  quit\n";
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let output = child.wait_with_output().expect("session completes");
    assert!(output.status.success(), "serve exited with {:?}", output.status);

    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "one response per request line:\n{stdout}");
    assert!(lines[0].contains("\"size\":8"), "warmup: {}", lines[0]);
    for staged in &lines[1..5] {
        assert!(staged.contains("\"op\":\"add_edge\""), "{staged}");
        assert!(staged.contains("\"ok\":true"), "{staged}");
    }
    assert!(lines[4].contains("\"staged\":4"), "{}", lines[4]);
    assert!(lines[5].contains("\"op\":\"commit\""), "{}", lines[5]);
    assert!(lines[5].contains("\"applied\":4"), "{}", lines[5]);
    assert!(lines[5].contains("\"edges\":20"), "{}", lines[5]);
    assert!(
        lines[5].contains("\"index_patched\":true"),
        "the l2p search built the index, so commit patches it: {}",
        lines[5]
    );
    // The new cross edges make {l2, r2} butterfly-connected: a search that
    // was infeasible on the old snapshot now returns the full community.
    assert!(lines[6].contains("\"ok\":true"), "{}", lines[6]);
    assert!(lines[6].contains("\"size\":8"), "{}", lines[6]);
    // Unknown vertex in a mutation: structured error, session continues.
    assert!(lines[7].contains("\"ok\":false"), "{}", lines[7]);
    assert!(lines[7].contains("\"error\":\"mutate\""), "{}", lines[7]);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_runs_a_query_file_in_order() {
    let dir = temp_dir("batch");
    let graph = graph_file(&dir);
    let queries = dir.join("queries.txt");
    std::fs::write(
        &queries,
        "search ql=l0 qr=r0\nsearch ql=l0 qr=r0 method=online\nbroken\n",
    )
    .expect("write queries");

    let run = |workers: &str| {
        let output = Command::new(BIN)
            .arg("batch")
            .arg(&graph)
            .arg(&queries)
            .args(["--workers", workers])
            .stderr(Stdio::piped())
            .output()
            .expect("run bcc batch");
        assert!(output.status.success());
        String::from_utf8(output.stdout).expect("utf8")
    };

    let single = run("1");
    let lines: Vec<&str> = single.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"method\":\"lp\""));
    assert!(lines[1].contains("\"method\":\"online\""));
    assert!(lines[2].contains("\"error\":\"parse\""));
    // Worker count never changes the bytes.
    assert_eq!(single, run("4"));

    let _ = std::fs::remove_dir_all(&dir);
}
