//! End-to-end test of `bcc listen`: spawn the real binary, parse the bound
//! address off stderr, drive concurrent TCP clients over both codecs, and
//! shut the server down cleanly over the wire.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_bcc");

/// Writes a small two-clique butterfly graph file and returns its path.
fn graph_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut b = bcc_graph::GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    let path = dir.join("butterfly.g");
    bcc_graph::io::write_graph_file(&b.build(), &path).expect("write graph file");
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcc-listen-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spawns `bcc listen <graph> 127.0.0.1:0 <extra>` and parses the bound
/// address from the stderr banner. The stderr reader is returned too:
/// dropping it closes the pipe and the child's later shutdown banner
/// would die on EPIPE.
fn spawn_listen(
    graph: &std::path::Path,
    extra: &[&str],
) -> (Child, SocketAddr, std::io::Lines<BufReader<std::process::ChildStderr>>) {
    let mut child = Command::new(BIN)
        .arg("listen")
        .arg(graph)
        .arg("127.0.0.1:0")
        .args(["--workers", "2"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bcc listen");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("stderr open until the banner")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse().expect("bound address parses");
        }
    };
    (child, addr, lines)
}

/// One test client; `binary` selects the length-prefixed codec.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    fn connect(addr: SocketAddr, binary: bool) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("set_nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
            binary,
        }
    }

    fn send(&mut self, payload: &str) {
        let mut frame = Vec::with_capacity(5 + payload.len());
        if self.binary {
            frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            frame.extend_from_slice(payload.as_bytes());
        } else {
            frame.extend_from_slice(payload.as_bytes());
            frame.push(b'\n');
        }
        self.writer.write_all(&frame).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Option<String> {
        if self.binary {
            let mut prefix = [0u8; 4];
            self.reader.read_exact(&mut prefix).ok()?;
            let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
            self.reader.read_exact(&mut payload).ok()?;
            Some(String::from_utf8(payload).expect("utf8 response"))
        } else {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => None,
                Ok(_) => {
                    while line.ends_with('\n') || line.ends_with('\r') {
                        line.pop();
                    }
                    Some(line)
                }
            }
        }
    }

    fn round_trip(&mut self, payload: &str) -> String {
        self.send(payload);
        self.recv().expect("response")
    }
}

#[test]
fn listen_serves_concurrent_clients_and_shuts_down_over_the_wire() {
    let dir = temp_dir("serve");
    let graph = graph_file(&dir);
    let (mut child, addr, stderr_lines) = spawn_listen(&graph, &[]);

    // Read-only queries against the shared graph: responses are
    // deterministic, so every client — text or binary — must get the
    // same bytes in the same (per-session seq) order.
    let queries = [
        "search ql=l0 qr=r0",
        "search ql=r0 qr=l0",
        "msearch q=l0,r0 k=3 b=1",
        "definitely not a request",
        "search ql=l1 qr=r1 method=online",
    ];
    let transcripts: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                s.spawn(move || {
                    let mut client = Client::connect(addr, i % 2 == 0);
                    let responses: Vec<String> =
                        queries.iter().map(|q| client.round_trip(q)).collect();
                    client.send("quit");
                    assert!(client.recv().is_none(), "quit closes this connection");
                    responses
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    for transcript in &transcripts[1..] {
        assert_eq!(
            transcript, &transcripts[0],
            "identical queries, identical bytes, regardless of codec"
        );
    }
    assert!(transcripts[0][0].contains("\"ok\":true"), "{}", transcripts[0][0]);
    assert!(transcripts[0][0].contains("\"size\":8"), "{}", transcripts[0][0]);
    assert!(transcripts[0][3].contains("\"error\":\"parse\""), "{}", transcripts[0][3]);

    // All four sessions quit; the server is still alive for new clients.
    let mut last = Client::connect(addr, false);
    assert!(last.round_trip("graphs").contains("\"graphs\":[\"butterfly\"]"));

    // `shutdown` over the wire stops the whole process.
    last.send("shutdown");
    let status = child.wait().expect("bcc listen exits after shutdown");
    assert!(status.success(), "clean exit, got {status:?}");
    let farewell: Vec<String> = stderr_lines.map(|l| l.expect("read stderr")).collect();
    assert!(
        farewell.iter().any(|l| l == "server shut down"),
        "shutdown banner on stderr: {farewell:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn listen_metrics_addr_serves_prometheus_populated_by_real_queries() {
    let dir = temp_dir("metrics");
    let graph = graph_file(&dir);
    let (mut child, addr, mut stderr_lines) =
        spawn_listen(&graph, &["--metrics-addr", "127.0.0.1:0", "--slow-query-ms", "0"]);
    // The exporter banner follows the listen banner on stderr.
    let metrics_addr: SocketAddr = loop {
        let line = stderr_lines
            .next()
            .expect("stderr open until the exporter banner")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("metrics exposition on http://") {
            break rest
                .trim()
                .trim_end_matches("/metrics")
                .parse()
                .expect("exporter address parses");
        }
    };

    // Real traffic over the protocol socket, then its own snapshot verb.
    let mut client = Client::connect(addr, false);
    assert!(client.round_trip("search ql=l0 qr=r0").contains("\"ok\":true"));
    assert!(client.round_trip("search ql=l1 qr=r1").contains("\"ok\":true"));
    let snapshot = client.round_trip("metrics");
    assert!(snapshot.starts_with("{\"ok\":true,\"metrics_enabled\":true"), "{snapshot}");
    assert!(snapshot.contains("\"search\":{\"requests\":2,\"count\":2,"), "{snapshot}");

    // Scrape the Prometheus endpoint like a collector would.
    let mut scrape = TcpStream::connect(metrics_addr).expect("connect exporter");
    scrape
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: bcc\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    scrape.read_to_string(&mut response).expect("read scrape");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"), "{response}");
    assert!(response.contains("bcc_requests_total{verb=\"search\"} 2"), "{response}");
    assert!(response.contains("bcc_requests_total{verb=\"metrics\"} 1"), "{response}");
    assert!(
        response.contains("bcc_verb_latency_microseconds_count{verb=\"search\"} 2"),
        "{response}"
    );
    // --slow-query-ms 0 flags every query with nonzero elapsed time.
    assert!(!response.contains("bcc_slow_queries_total 0"), "{response}");

    // A second scrape works: the exporter serves one response per
    // connection, sequentially, and survives the first close.
    let mut again = TcpStream::connect(metrics_addr).expect("reconnect exporter");
    again.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send scrape");
    let mut response2 = String::new();
    again.read_to_string(&mut response2).expect("read scrape");
    assert!(response2.starts_with("HTTP/1.0 200 OK\r\n"), "{response2}");

    client.send("shutdown");
    assert!(child.wait().expect("exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn listen_framing_violation_gets_structured_error_then_close() {
    let dir = temp_dir("framing");
    let graph = graph_file(&dir);
    let (mut child, addr, _stderr_lines) = spawn_listen(&graph, &[]);

    // First byte 0x01 negotiates the binary codec, and the frame it opens
    // claims 16 MiB + 1 — one byte over the cap.
    let mut client = Client::connect(addr, true);
    client.writer.write_all(&[0x01, 0x00, 0x00, 0x01]).unwrap();
    client.writer.flush().unwrap();
    let error = client.recv().expect("structured framing error");
    assert!(error.contains("\"error\":{\"kind\":\"framing\""), "{error}");
    assert!(client.recv().is_none(), "the violating connection is closed");

    // The server survives the bad client.
    let mut ok = Client::connect(addr, false);
    assert!(ok.round_trip("search ql=l0 qr=r0").contains("\"ok\":true"));
    ok.send("shutdown");
    assert!(child.wait().expect("exits").success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn listen_survives_clients_dying_mid_frame_without_leaking_sessions() {
    let dir = temp_dir("midframe");
    let graph = graph_file(&dir);
    let (mut child, addr, _stderr_lines) = spawn_listen(&graph, &[]);

    // Clients that die at the nastiest points of the wire protocol: the
    // session threads must see each one as end-of-stream (or a framing
    // violation), release the connection slot, and exit — never block on
    // a frame that will never complete.
    for _round in 0..2 {
        // Binary codec negotiated, then death inside the length prefix.
        let half_prefix = TcpStream::connect(addr).expect("connect");
        (&half_prefix).write_all(&[0x01, 0x00]).unwrap();
        drop(half_prefix);

        // A full prefix declaring 64 payload bytes, but only 10 arrive.
        let half_payload = TcpStream::connect(addr).expect("connect");
        (&half_payload)
            .write_all(&[0x01, 0x00, 0x00, 0x40, b'x', b'x', b'x', b'x', b'x'])
            .unwrap();
        drop(half_payload);

        // Text codec, death before the newline ends the first line.
        let half_line = TcpStream::connect(addr).expect("connect");
        (&half_line).write_all(b"search ql=l0").unwrap();
        drop(half_line);

        // Connect and vanish before sending a single byte.
        drop(TcpStream::connect(addr).expect("connect"));
    }

    // The server keeps serving a well-behaved client...
    let mut ok = Client::connect(addr, false);
    assert!(ok.round_trip("search ql=l0 qr=r0").contains("\"ok\":true"));

    // ...and every dead session drains: the gauge must fall back to 1
    // (this client alone). Poll briefly — the disconnects are racing us.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = ok.round_trip("stats");
        if stats.contains("\"active_sessions\":1,") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "dead sessions never drained: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // Shutdown joins every session thread before the process exits — a
    // leaked thread stuck in a dead client's read would hang this wait.
    ok.send("shutdown");
    assert!(child.wait().expect("exits").success());
    let _ = std::fs::remove_dir_all(&dir);
}
