//! Shared experiment harness for the benchmark binaries.
//!
//! Every `src/bin/*` binary reproduces one table or figure of the paper's
//! Section 8. This library holds the common machinery: network
//! preparation (graph + all indices), the five evaluated methods (PSA, CTC,
//! Online-BCC, LP-BCC, L2P-BCC), the per-query runner, and rayon-parallel
//! workload evaluation (parallelism is across queries — per-query latency
//! is measured inside the worker, so the reported numbers are
//! single-threaded latencies, as in the paper).

use std::time::{Duration, Instant};

use bcc_baselines::{CtcIndex, CtcSearch, PsaSearch};
use bcc_core::{
    BccIndex, BccParams, BccQuery, L2pBcc, LpBcc, MbccParams, MbccQuery, MultiLabelBcc,
    MultiStrategy, OnlineBcc, SearchStats,
};
use bcc_datasets::queries::CommunityQuery;
use bcc_datasets::{NetworkSpec, PlantedNetwork};
use bcc_eval::MethodAggregate;
use bcc_graph::{GraphView, VertexId};
use rayon::prelude::*;

/// The five evaluated methods, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Progressive minimum k-core search [23].
    Psa,
    /// Closest truss community [20].
    Ctc,
    /// Algorithm 1.
    OnlineBcc,
    /// Algorithm 1 + Algorithms 5–7.
    LpBcc,
    /// LP + index-based local exploration (Algorithm 8).
    L2pBcc,
}

impl Method {
    /// All five methods in paper order.
    pub fn all() -> [Method; 5] {
        [
            Method::Psa,
            Method::Ctc,
            Method::OnlineBcc,
            Method::LpBcc,
            Method::L2pBcc,
        ]
    }

    /// The three BCC variants only (Figures 6–10).
    pub fn bcc_only() -> [Method; 3] {
        [Method::OnlineBcc, Method::LpBcc, Method::L2pBcc]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Psa => "PSA",
            Method::Ctc => "CTC",
            Method::OnlineBcc => "Online-BCC",
            Method::LpBcc => "LP-BCC",
            Method::L2pBcc => "L2P-BCC",
        }
    }
}

/// A network with every per-graph index the methods need, built once per
/// experiment.
pub struct PreparedNetwork {
    /// Display name (paper's network name).
    pub name: String,
    /// The generated network + ground truth.
    pub net: PlantedNetwork,
    /// BCindex for L2P-BCC (label coreness + butterfly degrees).
    pub index: BccIndex,
    /// Truss decomposition for CTC.
    pub ctc_index: CtcIndex,
    /// Label-blind coreness for PSA.
    pub coreness: Vec<u32>,
}

impl PreparedNetwork {
    /// Builds the network and all indices.
    pub fn prepare(spec: &NetworkSpec) -> Self {
        let net = spec.build();
        let index = BccIndex::build(&net.graph);
        let ctc_index = CtcIndex::build(&net.graph);
        let coreness = bcc_cohesion::core_decomposition(&GraphView::new(&net.graph));
        PreparedNetwork {
            name: spec.name.to_string(),
            net,
            index,
            ctc_index,
            coreness,
        }
    }

    /// The paper's default `(k1, k2, b)` for a query pair: per-label
    /// coreness of the query vertices and b = 1.
    pub fn default_params(&self, query: &CommunityQuery) -> BccParams {
        BccParams {
            k1: self.index.coreness(query.vertices[0]),
            k2: self.index.coreness(query.vertices[1]),
            b: 1,
        }
    }
}

/// Parameter overrides for the sweep experiments (Figures 8–9).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParamOverride {
    /// Fix both k1 and k2 to this value (Figure 8).
    pub k: Option<u32>,
    /// Fix b to this value (Figure 9).
    pub b: Option<u64>,
}

/// Outcome of one method on one query.
pub struct QueryOutcome {
    /// The community (None if the method failed / found nothing).
    pub community: Option<Vec<VertexId>>,
    /// Wall time of the search call.
    pub elapsed: Duration,
    /// Instrumentation (BCC methods only).
    pub stats: Option<SearchStats>,
}

/// Runs `method` on one query pair with the paper's default parameters
/// (plus overrides).
pub fn run_query(
    prepared: &PreparedNetwork,
    method: Method,
    query: &CommunityQuery,
    overrides: ParamOverride,
) -> QueryOutcome {
    let graph = &prepared.net.graph;
    let mut params = prepared.default_params(query);
    if let Some(k) = overrides.k {
        params.k1 = k;
        params.k2 = k;
    }
    if let Some(b) = overrides.b {
        params.b = b;
    }
    let pair = BccQuery::pair(query.vertices[0], query.vertices[1]);
    let start = Instant::now();
    match method {
        Method::Psa => {
            let result =
                PsaSearch::default().search_with_coreness(graph, &prepared.coreness, &query.vertices);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.ok().map(|r| r.community),
                stats: None,
            }
        }
        Method::Ctc => {
            let result = CtcSearch::default().search(graph, &prepared.ctc_index, &query.vertices);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.ok().map(|r| r.community),
                stats: None,
            }
        }
        Method::OnlineBcc => {
            let result = OnlineBcc::default().search(graph, &pair, &params);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.as_ref().ok().map(|r| r.community.clone()),
                stats: result.ok().map(|r| r.stats),
            }
        }
        Method::LpBcc => {
            let result = LpBcc::default().search(graph, &pair, &params);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.as_ref().ok().map(|r| r.community.clone()),
                stats: result.ok().map(|r| r.stats),
            }
        }
        Method::L2pBcc => {
            let result = L2pBcc::default().search(graph, &prepared.index, &pair, &params);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.as_ref().ok().map(|r| r.community.clone()),
                stats: result.ok().map(|r| r.stats),
            }
        }
    }
}

/// Runs an mBCC method on a multi-label query with the paper's defaults
/// (k_i = per-label coreness of q_i, b = 1). CTC/PSA take the query set
/// label-blind.
pub fn run_mbcc_query(
    prepared: &PreparedNetwork,
    method: Method,
    query: &CommunityQuery,
) -> QueryOutcome {
    let graph = &prepared.net.graph;
    let mquery = MbccQuery::new(query.vertices.clone());
    let mparams = MbccParams {
        ks: query
            .vertices
            .iter()
            .map(|&q| prepared.index.coreness(q).max(1))
            .collect(),
        b: 1,
    };
    let start = Instant::now();
    match method {
        Method::Psa => {
            let result =
                PsaSearch::default().search_with_coreness(graph, &prepared.coreness, &query.vertices);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.ok().map(|r| r.community),
                stats: None,
            }
        }
        Method::Ctc => {
            let result = CtcSearch::default().search(graph, &prepared.ctc_index, &query.vertices);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.ok().map(|r| r.community),
                stats: None,
            }
        }
        Method::OnlineBcc | Method::LpBcc | Method::L2pBcc => {
            let searcher = match method {
                Method::OnlineBcc => MultiLabelBcc::with_strategy(MultiStrategy::Online),
                Method::LpBcc => MultiLabelBcc::with_strategy(MultiStrategy::LeaderPair),
                _ => MultiLabelBcc::with_strategy(MultiStrategy::Local {
                    eta: 2048,
                    weights: Default::default(),
                }),
            };
            let result = searcher.search(graph, Some(&prepared.index), &mquery, &mparams);
            QueryOutcome {
                elapsed: start.elapsed(),
                community: result.as_ref().ok().map(|r| r.community.clone()),
                stats: result.ok().map(|r| r.stats),
            }
        }
    }
}

/// Evaluates one method over a workload, in parallel across queries.
/// Returns the aggregate plus the summed search stats (BCC methods).
pub fn evaluate_method(
    prepared: &PreparedNetwork,
    method: Method,
    queries: &[CommunityQuery],
    overrides: ParamOverride,
    multi_label: bool,
) -> (MethodAggregate, SearchStats) {
    let partials: Vec<(MethodAggregate, SearchStats)> = queries
        .par_iter()
        .map(|q| {
            let outcome = if multi_label {
                run_mbcc_query(prepared, method, q)
            } else {
                run_query(prepared, method, q, overrides)
            };
            let mut agg = MethodAggregate::default();
            let mut stats = SearchStats::default();
            match &outcome.community {
                Some(community) => {
                    let truth = prepared.net.community(q.community);
                    // For multi-label queries the target is the queried
                    // label groups of the community, not every group it has
                    // (an m = 2 query over a 6-group community asks for 2
                    // teams). Pair queries on 2-group communities are
                    // unaffected.
                    let f1 = if multi_label {
                        let graph = &prepared.net.graph;
                        let allowed: Vec<_> =
                            q.vertices.iter().map(|&v| graph.label(v)).collect();
                        let filtered: Vec<VertexId> = truth
                            .iter()
                            .copied()
                            .filter(|&v| allowed.contains(&graph.label(v)))
                            .collect();
                        bcc_eval::f1_score(community, &filtered)
                    } else {
                        bcc_eval::f1_score(community, truth)
                    };
                    agg.record_success(f1, outcome.elapsed, community.len());
                }
                None => agg.record_failure(outcome.elapsed),
            }
            if let Some(s) = &outcome.stats {
                stats.merge(s);
            }
            (agg, stats)
        })
        .collect();
    let mut agg = MethodAggregate::default();
    let mut stats = SearchStats::default();
    for (a, s) in partials {
        agg.f1_sum += a.f1_sum;
        agg.time_sum += a.time_sum;
        agg.queries += a.queries;
        agg.successes += a.successes;
        agg.size_sum += a.size_sum;
        stats.merge(&s);
    }
    (agg, stats)
}

/// Tiny CLI argument helper shared by the binaries: `--key value` flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Presence of a bare `--name` flag.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Default workload size for quality/efficiency experiments. The paper uses
/// 1000 random queries; the laptop-scale default is smaller and can be
/// raised via `--queries`.
pub const DEFAULT_QUERIES: usize = 40;

/// Default scale multiplier for the seven networks.
pub const DEFAULT_SCALE: f64 = 1.0;

/// Runs one case study (Exps 6–8): LP-BCC with `b` and k = the queries'
/// label coreness, versus CTC, printing both communities grouped by label.
pub fn case_study_compare(
    graph: &bcc_graph::LabeledGraph,
    title: &str,
    ql_name: &str,
    qr_name: &str,
    b: u64,
) {
    let ql = graph
        .vertex_by_name(ql_name)
        .unwrap_or_else(|| panic!("{ql_name} not in graph"));
    let qr = graph
        .vertex_by_name(qr_name)
        .unwrap_or_else(|| panic!("{qr_name} not in graph"));
    let index = BccIndex::build(graph);
    let params = BccParams {
        k1: index.coreness(ql),
        k2: index.coreness(qr),
        b,
    };
    println!("== {title}");
    println!(
        "Query: {{\"{ql_name}\" [{}], \"{qr_name}\" [{}]}}, k1={}, k2={}, b={b}",
        graph.interner().name(graph.label(ql)).unwrap_or("?"),
        graph.interner().name(graph.label(qr)).unwrap_or("?"),
        params.k1,
        params.k2,
    );
    let pair = BccQuery::pair(ql, qr);
    match LpBcc::default().search(graph, &pair, &params) {
        Ok(result) => {
            println!(
                "-- BCC community ({} members, query distance {}):",
                result.community.len(),
                result.query_distance
            );
            print_by_label(graph, &result.community);
        }
        Err(e) => println!("-- BCC search failed: {e}"),
    }
    let ctc_index = CtcIndex::build(graph);
    match CtcSearch::default().search(graph, &ctc_index, &[ql, qr]) {
        Ok(result) => {
            println!("-- CTC community ({} members):", result.community.len());
            print_by_label(graph, &result.community);
        }
        Err(e) => println!("-- CTC search failed: {e:?}"),
    }
    println!();
}

/// Prints community members grouped by label.
pub fn print_by_label(graph: &bcc_graph::LabeledGraph, community: &[VertexId]) {
    let mut by_label: std::collections::BTreeMap<u32, Vec<String>> = Default::default();
    for &v in community {
        by_label
            .entry(graph.label(v).0)
            .or_default()
            .push(graph.vertex_name(v));
    }
    for (label, mut names) in by_label {
        names.sort();
        let label_name = graph
            .interner()
            .name(bcc_graph::Label(label))
            .unwrap_or("?")
            .to_string();
        println!("   [{label_name}] {}", names.join(", "));
    }
}

/// One network's results across all five methods (Figures 4 and 5 come
/// from the same pass).
pub struct SuiteRow {
    /// Network display name.
    pub network: String,
    /// `(method, aggregate, summed stats)` per method in paper order.
    pub per_method: Vec<(Method, MethodAggregate, SearchStats)>,
}

/// Runs the Exp-1/Exp-2 suite: all five methods over random ground-truth
/// queries on the seven networks.
pub fn run_quality_suite(scale: f64, n_queries: usize, seed: u64) -> Vec<SuiteRow> {
    let mut rows = Vec::new();
    for spec in bcc_datasets::networks::all_two_label(scale) {
        let prepared = PreparedNetwork::prepare(&spec);
        let queries = bcc_datasets::random_community_queries(
            &prepared.net,
            n_queries,
            bcc_datasets::QueryConstraints::default(),
            seed,
        );
        let per_method = Method::all()
            .into_iter()
            .map(|m| {
                let (agg, stats) =
                    evaluate_method(&prepared, m, &queries, ParamOverride::default(), false);
                (m, agg, stats)
            })
            .collect();
        rows.push(SuiteRow {
            network: prepared.name.clone(),
            per_method,
        });
        eprintln!("[suite] {} done ({} queries)", prepared.name, queries.len());
    }
    rows
}
