//! Figure 11 (Exp-6) — case study on the global flight network:
//! Q = {"Toronto", "Frankfurt"}, b = 3. The BCC should return the dense
//! Canadian and German domestic hub cores bridged by transatlantic
//! butterflies; CTC (label-blind) mostly returns Canadian cities.
//!
//! `cargo run -p bcc-bench --release --bin fig11_flight [--seed 42]`

use bcc_bench::{case_study_compare, Args};

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 42u64);
    let graph = bcc_datasets::flight_network(seed);
    println!(
        "Flight network: {} cities, {} routes, {} countries\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );
    case_study_compare(
        &graph,
        "Figure 11: flight network case study",
        "Toronto",
        "Frankfurt",
        3,
    );
}
