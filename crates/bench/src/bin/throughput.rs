//! Serving throughput: queries/sec through `bcc-service` at 1, 2, and N
//! workers, cold cache vs warm cache, on the planted DBLP-style network.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin throughput -- \
//!     [--scale 0.3] [--queries 24] [--repeat 3] [--out throughput.json]
//! ```
//!
//! Each cell replays the same request batch; "cold" is a fresh service
//! (first batch, all misses), "warm" re-runs the identical batch on the
//! now-populated cache. The binary also *verifies* the serving invariants
//! (results byte-identical across worker counts; warm batches 100% cache
//! hits; N-worker warm throughput > 1-worker cold throughput) and exits
//! non-zero if any fails, so CI can gate on it while uploading the JSON
//! summary as an artifact.

use std::time::Instant;

use bcc_bench::Args;
use bcc_datasets::{queries, QueryConstraints};
use bcc_eval::Table;
use bcc_service::{BccService, ServiceConfig};

struct Cell {
    workers: usize,
    cold_qps: f64,
    warm_qps: f64,
    cold_ms: f64,
    warm_ms: f64,
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.3f64);
    let query_count = args.get("queries", 24usize);
    let repeat = args.get("repeat", 3usize).max(1);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);

    let spec = bcc_datasets::dblp(scale);
    let net = spec.build();
    eprintln!(
        "planted {} x{scale}: {} vertices, {} edges",
        spec.name,
        net.graph.vertex_count(),
        net.graph.edge_count()
    );

    // A deterministic workload of distinct query pairs across the three
    // methods (l2p included: the index build is part of the cold cost).
    let qs = queries::random_community_queries(
        &net,
        query_count,
        QueryConstraints { degree_rank: 0, inter_distance: None },
        0xBCC,
    );
    assert!(!qs.is_empty(), "no queries generated — raise --scale");
    let mut seen = std::collections::HashSet::new();
    let lines: Vec<String> = qs
        .iter()
        .enumerate()
        .filter(|(_, q)| {
            let (a, b) = (q.vertices[0].0, q.vertices[1].0);
            seen.insert((a.min(b), a.max(b)))
        })
        .map(|(i, q)| {
            let method = ["lp", "online", "l2p"][i % 3];
            format!(
                "search ql={} qr={} method={method}",
                q.vertices[0].0, q.vertices[1].0
            )
        })
        .collect();
    eprintln!("workload: {} distinct query lines, {repeat} repeats per cell", lines.len());

    let n = bcc_service::default_workers();
    let mut worker_counts = vec![1usize, 2, n];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    let service_for = |workers: usize| {
        BccService::with_graph(
            ServiceConfig { workers, cache_capacity: 4096, ..Default::default() },
            net.graph.clone(),
        )
    };

    let mut cells = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for &workers in &worker_counts {
        // Best-of-`repeat` on fresh services for cold, then warm replays on
        // the last service (its cache is now populated).
        let mut cold_best = f64::INFINITY;
        let mut service = None;
        let mut responses = Vec::new();
        for _ in 0..repeat {
            let s = service_for(workers);
            let started = Instant::now();
            responses = s.run_batch(&lines);
            cold_best = cold_best.min(started.elapsed().as_secs_f64());
            service = Some(s);
        }
        let service = service.expect("repeat >= 1");

        match &reference {
            None => reference = Some(responses.clone()),
            Some(reference) => assert_eq!(
                reference, &responses,
                "INVARIANT VIOLATED: answers differ between worker counts"
            ),
        }

        let hits_before = service.stats().cache.hits;
        let mut warm_best = f64::INFINITY;
        for _ in 0..repeat {
            let started = Instant::now();
            let warm = service.run_batch(&lines);
            warm_best = warm_best.min(started.elapsed().as_secs_f64());
            assert_eq!(&warm, reference.as_ref().expect("set above"));
        }
        let warm_hits = service.stats().cache.hits - hits_before;
        assert_eq!(
            warm_hits,
            (repeat * lines.len()) as u64,
            "INVARIANT VIOLATED: warm batches must be 100% cache hits"
        );

        cells.push(Cell {
            workers,
            cold_qps: lines.len() as f64 / cold_best,
            warm_qps: lines.len() as f64 / warm_best,
            cold_ms: cold_best * 1e3,
            warm_ms: warm_best * 1e3,
        });
    }

    let mut table = Table::new(
        format!(
            "Serving throughput (q/s), {} queries on {} x{scale}",
            lines.len(),
            spec.name
        ),
        vec![
            "workers".into(),
            "cold q/s".into(),
            "warm q/s".into(),
            "cold ms".into(),
            "warm ms".into(),
        ],
    );
    for cell in &cells {
        table.push_row(vec![
            cell.workers.to_string(),
            format!("{:.0}", cell.cold_qps),
            format!("{:.0}", cell.warm_qps),
            format!("{:.2}", cell.cold_ms),
            format!("{:.2}", cell.warm_ms),
        ]);
    }
    println!("{}", table.render());

    let single_cold = cells.first().expect("at least one cell").cold_qps;
    let last = cells.last().expect("at least one cell");
    let (max_workers, multi_warm) = (last.workers, last.warm_qps);
    assert!(
        multi_warm > single_cold,
        "INVARIANT VIOLATED: {max_workers}-worker warm throughput ({multi_warm:.0} q/s) \
         must beat 1-worker cold throughput ({single_cold:.0} q/s)"
    );
    println!(
        "speedup: {max_workers}-worker warm {multi_warm:.0} q/s vs 1-worker cold \
         {single_cold:.0} q/s ({:.1}x)",
        multi_warm / single_cold
    );

    if let Some(path) = out_path {
        std::fs::write(&path, table.to_json()).expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
}
