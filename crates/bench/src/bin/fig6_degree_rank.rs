//! Figure 6 (Exp-3) — query time of the three BCC methods while varying the
//! query vertices' degree rank Q_d ∈ {20, 40, 60, 80, 100}%.
//!
//! `cargo run -p bcc-bench --release --bin fig6_degree_rank [--scale 1.0] [--queries 15] [--seed 7]`

use bcc_bench::{
    evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE,
};
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 15usize);
    let seed = args.get("seed", 7u64);
    let ranks = [20u32, 40, 60, 80, 100];

    // The paper's Figure 6 uses Baidu-1, Baidu-2, DBLP, LiveJournal, Orkut.
    let specs = vec![
        bcc_datasets::baidu1(scale),
        bcc_datasets::baidu2(scale),
        bcc_datasets::dblp(scale),
        bcc_datasets::livejournal(scale),
        bcc_datasets::orkut(scale),
    ];
    for spec in specs {
        let prepared = PreparedNetwork::prepare(&spec);
        let mut headers = vec!["degree rank (%)".to_string()];
        headers.extend(Method::bcc_only().iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!("Figure 6 ({}): time (s) vs degree rank", prepared.name),
            headers,
        );
        for rank in ranks {
            let workload =
                bcc_datasets::queries_by_degree_rank(&prepared.net, rank, queries, seed);
            if workload.is_empty() {
                table.push_row(vec![rank.to_string(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let mut cells = vec![rank.to_string()];
            for m in Method::bcc_only() {
                let (agg, _) =
                    evaluate_method(&prepared, m, &workload, ParamOverride::default(), false);
                cells.push(fmt_seconds(agg.mean_seconds()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
