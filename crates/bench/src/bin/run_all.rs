//! Runs every experiment binary in sequence and captures the output —
//! regenerating all tables and figures of the paper's Section 8 in one go.
//!
//! `cargo run -p bcc-bench --release --bin run_all [--scale 1.0] [--queries 40] [--out report.md]`
//!
//! The per-figure flags are forwarded where meaningful; sweep experiments
//! use smaller per-cell workloads to keep the full pass in minutes.

use std::io::Write as _;
use std::process::Command;

use bcc_bench::Args;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 1.0f64);
    let queries = args.get("queries", 40usize);
    let sweep_queries = args.get("sweep-queries", 10usize);
    let out_path = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone());

    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let scale_s = scale.to_string();
    let queries_s = queries.to_string();
    let sweep_s = sweep_queries.to_string();
    let runs: Vec<(&str, Vec<&str>)> = vec![
        ("table3_stats", vec!["--scale", &scale_s]),
        ("fig4_quality", vec!["--scale", &scale_s, "--queries", &queries_s]),
        ("fig5_efficiency", vec!["--scale", &scale_s, "--queries", &queries_s]),
        ("fig6_degree_rank", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("fig7_inter_distance", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("fig8_vary_k", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("fig9_vary_b", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("table4_breakdown", vec!["--scale", &scale_s, "--queries", &queries_s]),
        ("fig10_mbcc_time", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("fig14_mbcc_quality", vec!["--scale", &scale_s, "--queries", &sweep_s]),
        ("fig11_flight", vec![]),
        ("fig12_trade", vec![]),
        ("fig13_fiction", vec![]),
        ("fig15_academic", vec![]),
        ("ablation_strategies", vec!["--scale", &scale_s, "--queries", &sweep_s]),
    ];

    let mut report = String::new();
    report.push_str(&format!(
        "# BCC reproduction report (scale = {scale}, queries = {queries})\n\n"
    ));
    for (bin, bin_args) in runs {
        let path = exe_dir.join(bin);
        eprintln!("[run_all] running {bin} {:?}", bin_args);
        let started = std::time::Instant::now();
        let output = Command::new(&path)
            .args(&bin_args)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        let stdout = String::from_utf8_lossy(&output.stdout);
        println!("{stdout}");
        report.push_str(&format!(
            "## {bin} ({:.1}s)\n\n```text\n{stdout}```\n\n",
            started.elapsed().as_secs_f64()
        ));
        if !output.status.success() {
            eprintln!(
                "[run_all] {bin} FAILED: {}",
                String::from_utf8_lossy(&output.stderr)
            );
        }
    }

    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("[run_all] report written to {path}");
    }
}
