//! Figure 8 (Exp-4) — query time of the three BCC methods while varying the
//! core value k = k1 = k2 ∈ {2..6} (b fixed at 1).
//!
//! `cargo run -p bcc-bench --release --bin fig8_vary_k [--scale 1.0] [--queries 15] [--seed 7]`

use bcc_bench::{
    evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE,
};
use bcc_datasets::QueryConstraints;
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 15usize);
    let seed = args.get("seed", 7u64);

    let specs = vec![
        bcc_datasets::baidu1(scale),
        bcc_datasets::baidu2(scale),
        bcc_datasets::dblp(scale),
        bcc_datasets::livejournal(scale),
        bcc_datasets::orkut(scale),
    ];
    for spec in specs {
        let prepared = PreparedNetwork::prepare(&spec);
        let workload = bcc_datasets::random_community_queries(
            &prepared.net,
            queries,
            QueryConstraints::default(),
            seed,
        );
        let mut headers = vec!["k".to_string()];
        headers.extend(Method::bcc_only().iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!("Figure 8 ({}): time (s) vs core value k (b = 1)", prepared.name),
            headers,
        );
        for k in 2u32..=6 {
            let overrides = ParamOverride {
                k: Some(k),
                b: Some(1),
            };
            let mut cells = vec![k.to_string()];
            for m in Method::bcc_only() {
                let (agg, _) = evaluate_method(&prepared, m, &workload, overrides, false);
                cells.push(fmt_seconds(agg.mean_seconds()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
