//! Multi-client TCP load benchmark: sustained q/s and p50/p99 latency
//! through `bcc-service`'s socket front-end, plus a deterministic overload
//! phase proving the admission controller rejects — with a structured
//! error, never a hang — when the queue is full.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin load_bench -- \
//!     [--scale 0.3] [--queries 32] [--clients 8] [--out load_bench.json]
//! ```
//!
//! Phase 1 drives one client over the line codec; phase 2 drives
//! `--clients` concurrent clients (alternating line/binary codecs), each
//! with its own distinct query set (cold cache both times — fresh server
//! per phase). The binary *verifies* the serving invariants and exits
//! non-zero on failure so CI can gate on it:
//!
//! * every overload response is the structured `overloaded` error;
//! * N-client throughput ≥ 1-client throughput (SKIPPED on single-core
//!   machines, where concurrency cannot help).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bcc_bench::Args;
use bcc_datasets::{queries, QueryConstraints};
use bcc_eval::Table;
use bcc_service::{BccService, Priority, Server, ServerConfig, ServiceConfig};

/// One benchmark client over either codec.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    fn connect(addr: SocketAddr, binary: bool) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        // Latency bench: measure the service, not Nagle + delayed ACKs.
        stream.set_nodelay(true).expect("set_nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            binary,
        }
    }

    fn round_trip(&mut self, payload: &str) -> String {
        let mut frame = Vec::with_capacity(5 + payload.len());
        if self.binary {
            frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            frame.extend_from_slice(payload.as_bytes());
        } else {
            frame.extend_from_slice(payload.as_bytes());
            frame.push(b'\n');
        }
        self.writer.write_all(&frame).expect("send request");
        self.writer.flush().expect("flush");
        if self.binary {
            let mut prefix = [0u8; 4];
            self.reader.read_exact(&mut prefix).expect("response prefix");
            let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
            self.reader.read_exact(&mut payload).expect("response payload");
            String::from_utf8(payload).expect("utf8 response")
        } else {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("response line");
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            line
        }
    }
}

/// Distinct query lines for one client (seed-disjoint across clients so
/// the result cache cannot serve one client from another's work).
fn query_lines(net: &bcc_datasets::PlantedNetwork, count: usize, seed: u64) -> Vec<String> {
    let qs = queries::random_community_queries(
        net,
        count,
        QueryConstraints { degree_rank: 0, inter_distance: None },
        seed,
    );
    let mut seen = std::collections::HashSet::new();
    qs.iter()
        .enumerate()
        .filter(|(_, q)| {
            let (a, b) = (q.vertices[0].0, q.vertices[1].0);
            seen.insert((a.min(b), a.max(b)))
        })
        .map(|(i, q)| {
            let method = ["lp", "online", "l2p"][i % 3];
            format!("search ql={} qr={} method={method}", q.vertices[0].0, q.vertices[1].0)
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx]
}

struct Phase {
    label: &'static str,
    clients: usize,
    requests: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs one phase: a fresh server, `client_lines[i]` played by client `i`
/// (even clients binary, odd clients lines), per-request latencies pooled.
fn run_phase(
    label: &'static str,
    graph: &bcc_graph::LabeledGraph,
    client_lines: &[Vec<String>],
) -> Phase {
    let service = Arc::new(BccService::with_graph(
        ServiceConfig { workers: 0, cache_capacity: 4096, ..Default::default() },
        graph.clone(),
    ));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind bench server");
    let addr = handle.addr();

    // Pre-warm the BCindex so the one-off offline build (an l2p cold-start
    // cost, not a serving latency) doesn't land in some client's p99.
    if let Some(line) = client_lines.iter().flatten().find(|l| l.ends_with("l2p")) {
        let mut warm = Client::connect(addr, false);
        warm.round_trip(line);
    }

    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = client_lines
            .iter()
            .enumerate()
            .map(|(i, lines)| {
                s.spawn(move || {
                    let mut client = Client::connect(addr, i % 2 == 0);
                    lines
                        .iter()
                        .map(|line| {
                            let t = Instant::now();
                            let response = client.round_trip(line);
                            assert!(
                                response.contains("\"ok\":"),
                                "malformed response: {response}"
                            );
                            t.elapsed()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    handle.join();

    let mut ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Phase {
        label,
        clients: client_lines.len(),
        requests: ms.len(),
        qps: ms.len() as f64 / wall,
        p50_ms: percentile(&ms, 0.50),
        p99_ms: percentile(&ms, 0.99),
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.3f64);
    let per_client = args.get("queries", 32usize);
    let clients = args.get("clients", 8usize).max(2);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);

    let spec = bcc_datasets::dblp(scale);
    let net = spec.build();
    eprintln!(
        "planted {} x{scale}: {} vertices, {} edges",
        spec.name,
        net.graph.vertex_count(),
        net.graph.edge_count()
    );

    let all_lines: Vec<Vec<String>> = (0..clients)
        .map(|i| query_lines(&net, per_client, 0xBCC + i as u64))
        .collect();
    let total: usize = all_lines.iter().map(Vec::len).sum();
    eprintln!("workload: {clients} clients, {total} distinct query lines total");

    let single = run_phase("1 client", &net.graph, &all_lines[..1]);
    let multi = run_phase("N clients", &net.graph, &all_lines);

    // Overload phase: a depth-0 queue whose only slot is held externally —
    // every request must be rejected, structurally, immediately.
    let service = Arc::new(BccService::with_graph(
        ServiceConfig { workers: 1, cache_capacity: 0, ..Default::default() },
        net.graph.clone(),
    ));
    let handle = Server::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { concurrency: 1, queue_depth: 0, ..ServerConfig::default() },
    )
    .expect("bind overload server");
    let permit = handle
        .admission()
        .admit(u64::MAX, Priority::Normal, None)
        .expect("hold the only admission slot");
    let mut client = Client::connect(handle.addr(), false);
    let overload_requests = 16usize;
    let reject_started = Instant::now();
    for line in all_lines[0].iter().take(overload_requests).cycle().take(overload_requests) {
        let response = client.round_trip(line);
        assert!(
            response.contains("\"error\":{\"kind\":\"overloaded\""),
            "INVARIANT VIOLATED: overload must reject with the structured \
             error, got: {response}"
        );
    }
    let reject_elapsed = reject_started.elapsed();
    drop(permit);
    drop(client);
    let rejected = service.stats().rejected_overloaded;
    handle.shutdown();
    handle.join();
    assert_eq!(
        rejected, overload_requests as u64,
        "INVARIANT VIOLATED: every overload request is counted rejected"
    );
    println!(
        "overload: {overload_requests} requests rejected structurally in {:.1} ms total",
        reject_elapsed.as_secs_f64() * 1e3
    );

    let mut table = Table::new(
        format!("TCP load bench on {} x{scale} ({total} distinct queries)", spec.name),
        vec![
            "phase".into(),
            "clients".into(),
            "requests".into(),
            "q/s".into(),
            "p50 ms".into(),
            "p99 ms".into(),
        ],
    );
    for phase in [&single, &multi] {
        table.push_row(vec![
            phase.label.to_string(),
            phase.clients.to_string(),
            phase.requests.to_string(),
            format!("{:.0}", phase.qps),
            format!("{:.2}", phase.p50_ms),
            format!("{:.2}", phase.p99_ms),
        ]);
    }
    table.push_row(vec![
        "overload".into(),
        "1".into(),
        overload_requests.to_string(),
        format!("{:.0}", overload_requests as f64 / reject_elapsed.as_secs_f64()),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        println!(
            "throughput gate SKIPPED: {cores} core(s) available — concurrent \
             clients cannot outrun one client without parallelism"
        );
    } else {
        assert!(
            multi.qps >= single.qps,
            "INVARIANT VIOLATED: {clients}-client throughput ({:.0} q/s) fell \
             below 1-client throughput ({:.0} q/s) on a {cores}-core machine",
            multi.qps,
            single.qps
        );
        println!(
            "scaling: {clients} clients {:.0} q/s vs 1 client {:.0} q/s ({:.1}x)",
            multi.qps,
            single.qps,
            multi.qps / single.qps
        );
    }

    if let Some(path) = out_path {
        std::fs::write(&path, table.to_json()).expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
}
