//! Multi-client TCP load benchmark: sustained q/s and p50/p99 latency
//! through `bcc-service`'s socket front-end, plus a deterministic overload
//! phase proving the admission controller rejects — with a structured
//! error, never a hang — when the queue is full.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin load_bench -- \
//!     [--scale 0.3] [--queries 32] [--clients 8] [--shards 1,2,4] \
//!     [--out load_bench.json]
//! ```
//!
//! Phase 1 drives one client over the line codec; phase 2 drives
//! `--clients` concurrent clients (alternating line/binary codecs), each
//! with its own distinct query set (cold cache both times — fresh server
//! per phase); phase 3 replays phase 2's workload with the metrics tier
//! disabled. Client-side latencies land in a `bcc-obs` log₂ histogram
//! (p50/p99 are histogram quantiles, the same math the live `metrics` verb
//! uses), and the JSON summary carries the server's per-phase breakdown
//! read back from its metrics registry. The binary *verifies* the serving
//! invariants and exits non-zero on failure so CI can gate on it:
//!
//! * every overload response is the structured `overloaded` error;
//! * N-client throughput ≥ 1-client throughput (SKIPPED on single-core
//!   machines, where concurrency cannot help);
//! * metrics-on throughput within 5% of metrics-off (same SKIP rule);
//! * the query-thread sweep — the same single-client workload forced to
//!   method=online with `query_threads` 1 vs 0 (all cores) — must run
//!   strictly faster parallel than sequential (same SKIP rule);
//! * the shard sweep — an msearch-heavy workload replayed at each
//!   `--shards` count — must not run slower on its best multi-shard
//!   configuration than on the single pool (same SKIP rule);
//! * the chaos phase — a canned fault plan panics the first four pool
//!   executions — must surface each injected panic as a structured
//!   internal error and then serve the whole workload on a full-width
//!   pool;
//! * an armed-but-never-firing fault plan must stay within 2% of the
//!   fault-free baseline throughput (same SKIP rule).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use bcc_bench::Args;
use bcc_datasets::{queries, QueryConstraints};
use bcc_eval::Table;
use bcc_obs::{Histogram, HistogramSnapshot, Phase};
use bcc_service::{BccService, Priority, Server, ServerConfig, ServiceConfig};

/// One benchmark client over either codec.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    fn connect(addr: SocketAddr, binary: bool) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        // Latency bench: measure the service, not Nagle + delayed ACKs.
        stream.set_nodelay(true).expect("set_nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            binary,
        }
    }

    fn round_trip(&mut self, payload: &str) -> String {
        let mut frame = Vec::with_capacity(5 + payload.len());
        if self.binary {
            frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            frame.extend_from_slice(payload.as_bytes());
        } else {
            frame.extend_from_slice(payload.as_bytes());
            frame.push(b'\n');
        }
        self.writer.write_all(&frame).expect("send request");
        self.writer.flush().expect("flush");
        if self.binary {
            let mut prefix = [0u8; 4];
            self.reader.read_exact(&mut prefix).expect("response prefix");
            let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
            self.reader.read_exact(&mut payload).expect("response payload");
            String::from_utf8(payload).expect("utf8 response")
        } else {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("response line");
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            line
        }
    }
}

/// Distinct query lines for one client (seed-disjoint across clients so
/// the result cache cannot serve one client from another's work).
fn query_lines(net: &bcc_datasets::PlantedNetwork, count: usize, seed: u64) -> Vec<String> {
    let qs = queries::random_community_queries(
        net,
        count,
        QueryConstraints { degree_rank: 0, inter_distance: None },
        seed,
    );
    let mut seen = std::collections::HashSet::new();
    qs.iter()
        .enumerate()
        .filter(|(_, q)| {
            let (a, b) = (q.vertices[0].0, q.vertices[1].0);
            seen.insert((a.min(b), a.max(b)))
        })
        .map(|(i, q)| {
            let method = ["lp", "online", "l2p"][i % 3];
            format!("search ql={} qr={} method={method}", q.vertices[0].0, q.vertices[1].0)
        })
        .collect()
}

/// Histogram quantile in milliseconds (samples are recorded in µs).
fn quantile_ms(snap: &HistogramSnapshot, p: f64) -> f64 {
    snap.quantile(p) as f64 / 1e3
}

struct BenchPhase {
    label: String,
    clients: usize,
    requests: usize,
    qps: f64,
    /// Pooled client-side request latencies (µs).
    latency: HistogramSnapshot,
    /// Server-side per-engine-phase histograms, [`Phase::ALL`] order
    /// (all empty when the phase ran with metrics off).
    engine_phases: Vec<HistogramSnapshot>,
    /// The server's Prometheus exposition after the run.
    prom: String,
}

/// Runs one phase: a fresh server, `client_lines[i]` played by client `i`
/// (even clients binary, odd clients lines), per-request latencies pooled
/// into one log₂ histogram.
fn run_phase(
    label: &str,
    graph: &bcc_graph::LabeledGraph,
    client_lines: &[Vec<String>],
    metrics: bool,
    query_threads: usize,
    shards: usize,
    faults: &[String],
) -> BenchPhase {
    let service = Arc::new(BccService::with_graph(
        ServiceConfig {
            shards,
            workers: 0,
            cache_capacity: 4096,
            metrics,
            query_threads,
            faults: faults.to_vec(),
            ..Default::default()
        },
        graph.clone(),
    ));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind bench server");
    let addr = handle.addr();

    // Pre-warm the BCindex so the one-off offline build (an l2p cold-start
    // cost, not a serving latency) doesn't land in some client's p99.
    if let Some(line) = client_lines.iter().flatten().find(|l| l.ends_with("l2p")) {
        let mut warm = Client::connect(addr, false);
        warm.round_trip(line);
    }

    // One lock-free histogram shared by every client thread: the same
    // recording path the server's own metrics registry uses.
    let latency = Histogram::new();
    let started = Instant::now();
    std::thread::scope(|s| {
        for (i, lines) in client_lines.iter().enumerate() {
            let latency = &latency;
            s.spawn(move || {
                let mut client = Client::connect(addr, i % 2 == 0);
                for line in lines {
                    let t = Instant::now();
                    let response = client.round_trip(line);
                    assert!(response.contains("\"ok\":"), "malformed response: {response}");
                    latency.record_duration(t.elapsed());
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    handle.join();

    let snap = latency.snapshot();
    BenchPhase {
        label: label.to_string(),
        clients: client_lines.len(),
        requests: snap.count as usize,
        qps: snap.count as f64 / wall,
        latency: snap,
        engine_phases: Phase::ALL.iter().map(|&p| service.metrics().phase_snapshot(p)).collect(),
        prom: service.metrics().prometheus(),
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.3f64);
    let per_client = args.get("queries", 32usize);
    let clients = args.get("clients", 8usize).max(2);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);
    let prom = args.get("prom", String::new());
    let prom_path = (!prom.is_empty()).then_some(prom);

    let spec = bcc_datasets::dblp(scale);
    let net = spec.build();
    eprintln!(
        "planted {} x{scale}: {} vertices, {} edges",
        spec.name,
        net.graph.vertex_count(),
        net.graph.edge_count()
    );

    let all_lines: Vec<Vec<String>> = (0..clients)
        .map(|i| query_lines(&net, per_client, 0xBCC + i as u64))
        .collect();
    let total: usize = all_lines.iter().map(Vec::len).sum();
    eprintln!("workload: {clients} clients, {total} distinct query lines total");

    let single = run_phase("1 client", &net.graph, &all_lines[..1], true, 1, 1, &[]);
    // Same N-client workload twice: metrics tier off (the baseline), then
    // on — the pair the ≤5% overhead gate compares.
    let multi_off = run_phase("N clients, metrics off", &net.graph, &all_lines, false, 1, 1, &[]);
    let multi = run_phase("N clients", &net.graph, &all_lines, true, 1, 1, &[]);
    // The same workload with a fault plan armed but never firing (the
    // selected match is astronomically far away): the injection hooks on
    // the hot path must cost nothing measurable — the ≤2% gate below.
    let armed_plan = vec!["worker_execute:panic:1000000000".to_string()];
    let multi_armed =
        run_phase("N clients, faults armed", &net.graph, &all_lines, true, 1, 1, &armed_plan);

    // Query-thread sweep: one client, the whole workload, with the stages
    // *inside* each search sequential vs parallel (`--query-threads 0` ⇒
    // all cores). Online-method queries carry the most intra-query work
    // (full BFS + full recount per peel iteration), so the sweep forces
    // every line to method=online — the fairest surface for the knob.
    let sweep_lines: Vec<Vec<String>> = vec![all_lines
        .iter()
        .flatten()
        .map(|l| {
            let base = l.split(" method=").next().unwrap_or(l);
            format!("{base} method=online")
        })
        .collect()];
    let qt_seq = run_phase("1 client, query-threads 1", &net.graph, &sweep_lines, true, 1, 1, &[]);
    let qt_par = run_phase("1 client, query-threads 0", &net.graph, &sweep_lines, true, 0, 1, &[]);

    // Shard sweep: the same N clients, but an msearch-heavy workload whose
    // m=3 queries scatter their label-pair sub-queries across shards via
    // `route_pair` — the only serving path where shard count changes which
    // pool runs what (plain searches on one graph all route to its home
    // shard). Responses are byte-identical at every shard count; only the
    // throughput may move.
    let shard_counts: Vec<usize> = args
        .get("shards", "1,2,4".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes a comma-separated list of integers"))
        .collect();
    let shard_lines: Vec<Vec<String>> = (0..clients)
        .map(|i| {
            let qs = queries::random_community_queries(
                &net,
                per_client,
                QueryConstraints { degree_rank: 0, inter_distance: None },
                0xD1CE + i as u64,
            );
            qs.chunks(2)
                .filter(|c| c.len() == 2)
                .map(|c| {
                    (c[0].vertices[0].0, c[0].vertices[1].0, c[1].vertices[0].0)
                })
                .filter(|(a, b, c)| a != b && a != c && b != c)
                .map(|(a, b, c)| format!("msearch q={a},{b},{c} k=2 b=1"))
                .collect()
        })
        .collect();
    let shard_runs: Vec<(usize, BenchPhase)> = shard_counts
        .iter()
        .map(|&n| {
            (n, run_phase(&format!("N clients, shards={n}"), &net.graph, &shard_lines, true, 1, n, &[]))
        })
        .collect();

    // Overload phase: a depth-0 queue whose only slot is held externally —
    // every request must be rejected, structurally, immediately.
    let service = Arc::new(BccService::with_graph(
        ServiceConfig { workers: 1, cache_capacity: 0, ..Default::default() },
        net.graph.clone(),
    ));
    let handle = Server::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { concurrency: 1, queue_depth: 0, ..ServerConfig::default() },
    )
    .expect("bind overload server");
    let permit = handle
        .admission()
        .admit(u64::MAX, Priority::Normal, None)
        .expect("hold the only admission slot");
    let mut client = Client::connect(handle.addr(), false);
    let overload_requests = 16usize;
    let reject_started = Instant::now();
    for line in all_lines[0].iter().take(overload_requests).cycle().take(overload_requests) {
        let response = client.round_trip(line);
        assert!(
            response.contains("\"error\":{\"kind\":\"overloaded\""),
            "INVARIANT VIOLATED: overload must reject with the structured \
             error, got: {response}"
        );
    }
    let reject_elapsed = reject_started.elapsed();
    drop(permit);
    drop(client);
    let rejected = service.stats().rejected_overloaded;
    handle.shutdown();
    handle.join();
    assert_eq!(
        rejected, overload_requests as u64,
        "INVARIANT VIOLATED: every overload request is counted rejected"
    );
    println!(
        "overload: {overload_requests} requests rejected structurally in {:.1} ms total",
        reject_elapsed.as_secs_f64() * 1e3
    );

    // Chaos phase: a canned fault plan panics the first four pool
    // executions. Each faulted request must surface as the structured
    // internal error naming the panic — never a hang, never a torn
    // connection — and afterwards the exhausted plan must leave a pool at
    // full width serving the whole workload cleanly.
    let chaos_faults = 4usize;
    let service = Arc::new(BccService::with_graph(
        ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            faults: vec![format!("worker_execute:panic:1:{chaos_faults}")],
            ..Default::default()
        },
        net.graph.clone(),
    ));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind chaos server");
    let mut client = Client::connect(handle.addr(), false);
    let chaos_started = Instant::now();
    for line in all_lines[0].iter().take(chaos_faults) {
        let response = client.round_trip(line);
        assert!(
            response.contains("\"error\":\"internal\"") && response.contains("panicked"),
            "INVARIANT VIOLATED: an injected worker panic must surface as the \
             structured internal error, got: {response}"
        );
    }
    for line in &all_lines[0] {
        let response = client.round_trip(line);
        // Infeasible planted queries legitimately fail with a `search`
        // error; what recovery forbids is any residue of the panics.
        assert!(
            !response.contains("\"error\":\"internal\""),
            "INVARIANT VIOLATED: after the fault plan is spent no request may \
             see an internal error, got: {response}"
        );
    }
    let chaos_elapsed = chaos_started.elapsed();
    let chaos_requests = chaos_faults + all_lines[0].len();
    drop(client);
    let chaos_stats = service.stats();
    handle.shutdown();
    handle.join();
    assert_eq!(
        chaos_stats.worker_panics, chaos_faults as u64,
        "INVARIANT VIOLATED: every injected panic is counted contained"
    );
    assert!(
        chaos_stats.shards.iter().all(|s| s.workers == 2),
        "INVARIANT VIOLATED: pool capacity decayed after contained panics: {:?}",
        chaos_stats.shards.iter().map(|s| s.workers).collect::<Vec<_>>()
    );
    println!(
        "chaos: {chaos_faults} injected worker panics contained, {} requests \
         recovered on a full-width pool, {:.1} ms total",
        all_lines[0].len(),
        chaos_elapsed.as_secs_f64() * 1e3
    );

    let mut table = Table::new(
        format!("TCP load bench on {} x{scale} ({total} distinct queries)", spec.name),
        vec![
            "phase".into(),
            "clients".into(),
            "requests".into(),
            "q/s".into(),
            "p50 ms".into(),
            "p99 ms".into(),
        ],
    );
    let sweep_phases: Vec<&BenchPhase> = shard_runs.iter().map(|(_, p)| p).collect();
    for phase in [&single, &multi_off, &multi, &multi_armed, &qt_seq, &qt_par]
        .into_iter()
        .chain(sweep_phases.iter().copied())
    {
        table.push_row(vec![
            phase.label.clone(),
            phase.clients.to_string(),
            phase.requests.to_string(),
            format!("{:.0}", phase.qps),
            format!("{:.2}", quantile_ms(&phase.latency, 0.50)),
            format!("{:.2}", quantile_ms(&phase.latency, 0.99)),
        ]);
    }
    table.push_row(vec![
        "overload".into(),
        "1".into(),
        overload_requests.to_string(),
        format!("{:.0}", overload_requests as f64 / reject_elapsed.as_secs_f64()),
        "-".into(),
        "-".into(),
    ]);
    table.push_row(vec![
        "chaos".into(),
        "1".into(),
        chaos_requests.to_string(),
        format!("{:.0}", chaos_requests as f64 / chaos_elapsed.as_secs_f64()),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        println!(
            "throughput gate SKIPPED: {cores} core(s) available — concurrent \
             clients cannot outrun one client without parallelism"
        );
        println!(
            "metrics-overhead gate SKIPPED: {cores} core(s) available — a \
             contended single core turns scheduling noise into false signal"
        );
    } else {
        assert!(
            multi.qps >= single.qps,
            "INVARIANT VIOLATED: {clients}-client throughput ({:.0} q/s) fell \
             below 1-client throughput ({:.0} q/s) on a {cores}-core machine",
            multi.qps,
            single.qps
        );
        println!(
            "scaling: {clients} clients {:.0} q/s vs 1 client {:.0} q/s ({:.1}x)",
            multi.qps,
            single.qps,
            multi.qps / single.qps
        );
        // Telemetry must be ~free: the gated tier is a branch plus a few
        // relaxed fetch_adds per request, drowned by the search itself.
        assert!(
            multi.qps >= multi_off.qps * 0.95,
            "INVARIANT VIOLATED: metrics-on throughput ({:.0} q/s) more than \
             5% below metrics-off ({:.0} q/s)",
            multi.qps,
            multi_off.qps
        );
        println!(
            "metrics overhead: on {:.0} q/s vs off {:.0} q/s ({:+.1}%)",
            multi.qps,
            multi_off.qps,
            (multi.qps / multi_off.qps - 1.0) * 100.0
        );
    }
    if cores < 2 {
        println!(
            "fault-injection gate SKIPPED: {cores} core(s) available — a \
             contended single core turns scheduling noise into false signal"
        );
    } else {
        // An armed-but-never-firing plan is one relaxed load plus one
        // branch per checked site; the gate keeps it under 2% of the
        // fault-free baseline.
        assert!(
            multi_armed.qps >= multi.qps * 0.98,
            "INVARIANT VIOLATED: armed fault plan throughput ({:.0} q/s) more \
             than 2% below the fault-free baseline ({:.0} q/s)",
            multi_armed.qps,
            multi.qps
        );
        println!(
            "fault-injection overhead: armed {:.0} q/s vs disabled {:.0} q/s ({:+.1}%)",
            multi_armed.qps,
            multi.qps,
            (multi_armed.qps / multi.qps - 1.0) * 100.0
        );
    }
    if cores < 2 {
        println!(
            "query-thread gate SKIPPED: {cores} core(s) available — intra-query \
             workers cannot beat the sequential path without parallelism"
        );
    } else {
        assert!(
            qt_par.qps > qt_seq.qps,
            "INVARIANT VIOLATED: query-threads 0 throughput ({:.0} q/s) did not \
             beat query-threads 1 ({:.0} q/s) on a {cores}-core machine",
            qt_par.qps,
            qt_seq.qps
        );
        println!(
            "query threads: parallel {:.0} q/s vs sequential {:.0} q/s ({:.2}x)",
            qt_par.qps,
            qt_seq.qps,
            qt_par.qps / qt_seq.qps
        );
    }
    // Shard gate: the best multi-shard run must not lose to the single
    // pool — scatter-gather overhead has to pay for itself once the pair
    // sub-queries actually run on different cores.
    let single_pool = shard_runs.iter().find(|(n, _)| *n == 1).map(|(_, p)| p);
    let best_sharded = shard_runs
        .iter()
        .filter(|(n, _)| *n > 1)
        .max_by(|a, b| a.1.qps.total_cmp(&b.1.qps));
    if cores < 2 {
        println!(
            "shard-sweep gate SKIPPED: {cores} core(s) available — extra worker \
             pools cannot outrun one pool without parallelism"
        );
    } else if let (Some(single_pool), Some((n, best))) = (single_pool, best_sharded) {
        assert!(
            best.qps >= single_pool.qps,
            "INVARIANT VIOLATED: best sharded throughput (shards={n}, {:.0} q/s) \
             fell below the single pool ({:.0} q/s) on a {cores}-core machine",
            best.qps,
            single_pool.qps
        );
        println!(
            "shard sweep: shards={n} {:.0} q/s vs single pool {:.0} q/s ({:.2}x)",
            best.qps,
            single_pool.qps,
            best.qps / single_pool.qps
        );
    }

    if let Some(path) = out_path {
        std::fs::write(
            &path,
            summary_json(&table, &single, &multi_off, &multi, &multi_armed, &qt_seq, &qt_par, &shard_runs, cores),
        )
        .expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
    if let Some(path) = prom_path {
        std::fs::write(&path, &multi.prom).expect("write Prometheus exposition");
        eprintln!("wrote Prometheus exposition to {path}");
    }
}

/// The JSON summary: the rendered table plus, for each phase, the
/// histogram-derived latency quantiles and (metrics-on phases) the
/// server-side per-engine-phase breakdown.
#[allow(clippy::too_many_arguments)]
fn summary_json(
    table: &Table,
    single: &BenchPhase,
    multi_off: &BenchPhase,
    multi: &BenchPhase,
    multi_armed: &BenchPhase,
    qt_seq: &BenchPhase,
    qt_par: &BenchPhase,
    shard_runs: &[(usize, BenchPhase)],
    cores: usize,
) -> String {
    let hist = |snap: &HistogramSnapshot| {
        format!(
            "{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
            snap.count,
            snap.sum,
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99)
        )
    };
    let phase_json = |bench: &BenchPhase| {
        let breakdown = Phase::ALL
            .iter()
            .zip(&bench.engine_phases)
            .map(|(p, snap)| format!("\"{}\":{}", p.name(), hist(snap)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"qps\":{:.1},\"latency\":{},\"engine_phases\":{{{}}}}}",
            bench.qps,
            hist(&bench.latency),
            breakdown
        )
    };
    let shard_sweep = shard_runs
        .iter()
        .map(|(n, p)| format!("{{\"shards\":{n},\"phase\":{}}}", phase_json(p)))
        .collect::<Vec<_>>()
        .join(",");
    let single_pool_qps =
        shard_runs.iter().find(|(n, _)| *n == 1).map(|(_, p)| p.qps).unwrap_or(0.0);
    let best_sharded_qps = shard_runs
        .iter()
        .filter(|(n, _)| *n > 1)
        .map(|(_, p)| p.qps)
        .fold(0.0f64, f64::max);
    format!(
        "{{\"table\":{},\"phases\":{{\"single\":{},\"multi_metrics_off\":{},\"multi\":{},\
         \"multi_faults_armed\":{}}},\
         \"query_thread_sweep\":{{\"cores\":{cores},\"sequential\":{},\"parallel\":{},\
         \"speedup\":{:.3}}},\"shard_sweep\":{{\"cores\":{cores},\"runs\":[{}],\
         \"speedup\":{:.3}}}}}\n",
        table.to_json(),
        phase_json(single),
        phase_json(multi_off),
        phase_json(multi),
        phase_json(multi_armed),
        phase_json(qt_seq),
        phase_json(qt_par),
        qt_par.qps / qt_seq.qps.max(1e-9),
        shard_sweep,
        best_sharded_qps / single_pool_qps.max(1e-9),
    )
}
