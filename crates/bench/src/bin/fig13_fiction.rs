//! Figure 13 (Exp-8) — case study on the Harry Potter character network:
//! Q = {"Ron Weasley", "Draco Malfoy"}, b = 3. The BCC should return the
//! Weasley family + the trio + Dumbledore on the justice side and
//! Voldemort's inner circle on the evil side; CTC returns only the tight
//! trio-versus-gang clique and misses Lord Voldemort and Ron's family.
//!
//! `cargo run -p bcc-bench --release --bin fig13_fiction`

use bcc_bench::case_study_compare;

fn main() {
    let graph = bcc_datasets::fiction_network();
    println!(
        "Fiction network: {} characters, {} relationships, {} camps\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );
    case_study_compare(
        &graph,
        "Figure 13: Harry Potter fiction network case study",
        "Ron Weasley",
        "Draco Malfoy",
        3,
    );
}
