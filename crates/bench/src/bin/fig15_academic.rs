//! Figure 15 (Exp-11) — multi-labeled BCC case study on the academic
//! collaboration network: a 2-labeled query Q1 = {"Tim Kraska",
//! "Michael I. Jordan"} (Database × Machine Learning) and a 3-labeled query
//! Q2 = {"Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"}
//! (Database × ML × Systems), both with b = 3, k_i = 3.
//!
//! `cargo run -p bcc-bench --release --bin fig15_academic [--seed 42]`

use bcc_bench::{print_by_label, Args};
use bcc_core::{MbccParams, MbccQuery, MultiLabelBcc, MultiStrategy};

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 42u64);
    let graph = bcc_datasets::academic_network(seed);
    println!(
        "Academic network: {} authors, {} collaborations, {} fields\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );
    let index = bcc_core::BccIndex::build(&graph);
    let searcher = MultiLabelBcc::with_strategy(MultiStrategy::LeaderPair);

    for (title, names) in [
        (
            "Figure 15(a): 2-labeled BCC (ML4DB / DB4ML group)",
            vec!["Tim Kraska", "Michael I. Jordan"],
        ),
        (
            "Figure 15(b): 3-labeled BCC (DB x ML x Systems group)",
            vec!["Michael J. Franklin", "Michael I. Jordan", "Ion Stoica"],
        ),
    ] {
        println!("== {title}");
        let queries: Vec<_> = names
            .iter()
            .map(|n| graph.vertex_by_name(n).unwrap_or_else(|| panic!("{n} missing")))
            .collect();
        println!(
            "Query: {:?}, k_i = 3, b = 3",
            names
        );
        let query = MbccQuery::new(queries.clone());
        let params = MbccParams::uniform(queries.len(), 3, 3);
        match searcher.search(&graph, Some(&index), &query, &params) {
            Ok(result) => {
                println!(
                    "-- mBCC community ({} members, query distance {}):",
                    result.community.len(),
                    result.query_distance
                );
                print_by_label(&graph, &result.community);
            }
            Err(e) => println!("-- search failed: {e}"),
        }
        println!();
    }
}
