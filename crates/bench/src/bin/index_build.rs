//! Offline BCindex build: flat wedge kernels and parallel construction
//! versus the seed implementation, on the planted paper networks.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin index_build -- \
//!     [--scale 8.0] [--repeats 5] [--out index_build.json]
//! ```
//!
//! Two sections, both doubling as invariant checks (the binary exits
//! non-zero on violation; CI runs it under `--release` on every push):
//!
//! 1. **χ kernel** — the wedge-counting pass that dominates the build,
//!    timed three ways: the seed's `FxHashMap` kernel (`hash`), the dense
//!    epoch-stamped scratch kernel (`flat`), and the BFC-VP vertex-priority
//!    kernel (`priority`, two-label networks — the aggregate-χ pass of a
//!    many-label network has no priority variant). All outputs must be
//!    equal, and **flat must strictly beat hash** (min over `--repeats`).
//! 2. **Parallel build** — `BccIndex::build_with_threads` at 1, 2, and N
//!    threads (N = available cores). Every configuration must be
//!    **bit-identical** to the seed implementation
//!    (`BccIndex::build_reference`), and every parallel build must strictly
//!    beat the 1-thread build — asserted only when the machine actually has
//!    ≥ 2 cores (a 1-core box cannot exhibit parallel speedup; the check is
//!    then reported as skipped). The workspace's vendored `rayon` is a
//!    sequential shim, which is exactly why the build uses hand-rolled
//!    `std::thread::scope` workers — this benchmark is the proof that they
//!    actually run in parallel.

use std::time::{Duration, Instant};

use bcc_bench::Args;
use bcc_core::{hetero_butterfly_degrees, hetero_butterfly_degrees_hash, BccIndex};
use bcc_eval::Table;
use bcc_graph::{GraphView, Label, LabeledGraph};

/// Minimum wall time of `f`, over `repeats` runs (first-touch effects and
/// scheduler noise wash out of the minimum).
fn time_min<T>(repeats: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let value = f();
        let elapsed = started.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, value));
        }
    }
    best.expect("repeats >= 1")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct KernelRow {
    network: String,
    vertices: usize,
    edges: usize,
    labels: usize,
    hash_ms: f64,
    flat_ms: f64,
    priority_ms: Option<f64>,
}

/// Section 1: the χ pass, hash vs flat (vs priority where defined).
fn bench_kernels(name: &str, graph: &LabeledGraph, repeats: usize) -> KernelRow {
    let view = GraphView::new(graph);
    let (hash_time, hash_chi) = time_min(repeats, || hetero_butterfly_degrees_hash(&view));
    let (flat_time, flat_chi) = time_min(repeats, || hetero_butterfly_degrees(graph));
    assert_eq!(
        flat_chi, hash_chi,
        "INVARIANT VIOLATED: flat χ kernel diverged from the hash kernel on {name}"
    );
    let priority_ms = (graph.label_count() == 2).then(|| {
        let cross = bcc_butterfly::BipartiteCross::new(Label(0), Label(1));
        let (priority_time, priority_chi) =
            time_min(repeats, || bcc_butterfly::butterfly_degrees_priority(graph, cross));
        assert_eq!(
            priority_chi, hash_chi,
            "INVARIANT VIOLATED: priority χ kernel diverged from the hash kernel on {name}"
        );
        ms(priority_time)
    });
    KernelRow {
        network: name.to_string(),
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        labels: graph.label_count(),
        hash_ms: ms(hash_time),
        flat_ms: ms(flat_time),
        priority_ms,
    }
}

struct BuildRow {
    network: String,
    threads: usize,
    build_ms: f64,
}

fn assert_index_eq(built: &BccIndex, seed: &BccIndex, context: &str) {
    assert_eq!(
        built.label_coreness, seed.label_coreness,
        "INVARIANT VIOLATED: δ diverged from the seed implementation {context}"
    );
    assert_eq!(
        built.butterfly_degree, seed.butterfly_degree,
        "INVARIANT VIOLATED: χ diverged from the seed implementation {context}"
    );
    assert_eq!(built.delta_max, seed.delta_max, "δ_max diverged {context}");
    assert_eq!(built.chi_max, seed.chi_max, "χ_max diverged {context}");
}

/// Section 2: `build_with_threads` at each thread count, bit-identical to
/// the seed build in every configuration.
fn bench_builds(
    name: &str,
    graph: &LabeledGraph,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<BuildRow> {
    let seed = BccIndex::build_reference(graph);
    thread_counts
        .iter()
        .map(|&threads| {
            let (build_time, built) =
                time_min(repeats, || BccIndex::build_with_threads(graph, threads));
            assert_index_eq(&built, &seed, &format!("({name}, {threads} threads)"));
            BuildRow { network: name.to_string(), threads, build_ms: ms(build_time) }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 8.0f64);
    let repeats = args.get("repeats", 5usize).max(1);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // 1-thread baseline, the 2-thread gate point, and all cores (the "2"
    // row on a 1-core box documents the thread overhead it pays for
    // nothing — the speedup gate below is skipped there).
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let networks: Vec<(String, LabeledGraph)> = ["dblp", "baidu1"]
        .iter()
        .map(|name| {
            let spec = match *name {
                "dblp" => bcc_datasets::dblp(scale),
                _ => bcc_datasets::baidu1(scale),
            };
            let graph = spec.build().graph;
            eprintln!(
                "{} x{scale}: {} vertices, {} edges, {} labels",
                spec.name,
                graph.vertex_count(),
                graph.edge_count(),
                graph.label_count()
            );
            (spec.name.to_string(), graph)
        })
        .collect();

    // Section 1: χ kernels.
    let kernel_rows: Vec<KernelRow> = networks
        .iter()
        .map(|(name, graph)| bench_kernels(name, graph, repeats))
        .collect();
    let mut kernel_table = Table::new(
        format!("BCindex χ kernel: hash vs flat vs priority (min of {repeats} runs)"),
        vec![
            "network".into(),
            "|V|".into(),
            "|E|".into(),
            "labels".into(),
            "hash ms".into(),
            "flat ms".into(),
            "priority ms".into(),
            "flat speedup".into(),
        ],
    );
    for row in &kernel_rows {
        kernel_table.push_row(vec![
            row.network.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
            row.labels.to_string(),
            format!("{:.3}", row.hash_ms),
            format!("{:.3}", row.flat_ms),
            row.priority_ms.map_or("-".into(), |p| format!("{p:.3}")),
            format!("{:.2}x", row.hash_ms / row.flat_ms),
        ]);
    }
    println!("{}", kernel_table.render());
    for row in &kernel_rows {
        assert!(
            row.flat_ms < row.hash_ms,
            "INVARIANT VIOLATED: the flat kernel on {} ({:.3} ms) must beat the hash \
             kernel ({:.3} ms)",
            row.network,
            row.flat_ms,
            row.hash_ms
        );
    }

    // Section 2: parallel builds.
    let per_network: Vec<Vec<BuildRow>> = networks
        .iter()
        .map(|(name, graph)| bench_builds(name, graph, &thread_counts, repeats))
        .collect();
    let mut build_table = Table::new(
        format!(
            "BCindex build_with_threads on {cores} core(s) (min of {repeats} runs, \
             bit-identical to the seed build at every setting)"
        ),
        vec!["network".into(), "threads".into(), "build ms".into(), "speedup vs 1t".into()],
    );
    for rows in &per_network {
        let single = rows.iter().find(|r| r.threads == 1).expect("1-thread row").build_ms;
        for row in rows {
            build_table.push_row(vec![
                row.network.clone(),
                row.threads.to_string(),
                format!("{:.3}", row.build_ms),
                format!("{:.2}x", single / row.build_ms),
            ]);
        }
    }
    println!("{}", build_table.render());

    if cores >= 2 {
        for rows in &per_network {
            let single = rows.iter().find(|r| r.threads == 1).expect("1-thread row").build_ms;
            for row in rows.iter().filter(|r| r.threads >= 2) {
                assert!(
                    row.build_ms < single,
                    "INVARIANT VIOLATED: the {}-thread build on {} ({:.3} ms) must beat \
                     the 1-thread build ({:.3} ms) on a {cores}-core machine",
                    row.threads,
                    row.network,
                    row.build_ms,
                    single
                );
            }
        }
        eprintln!("parallel-build gate: PASS (threads {thread_counts:?} on {cores} cores)");
    } else {
        eprintln!(
            "parallel-build gate: SKIPPED — 1 core available, no parallel speedup is \
             physically possible (timings above are still bit-identity-checked)"
        );
    }

    // Section 3: the δ label-core decomposition on its own. Since the
    // two-phase build restructure, δ is phase 1 of `build_with_threads` —
    // a level-synchronous parallel peel across all workers — rather than a
    // sequential "task 0" straggling next to the χ chunks. These rows make
    // the phase's wall time (and its thread scaling) visible so a
    // regression back to a sequential critical path shows up in CI
    // artifacts. Bit-identity vs the sequential peel is asserted per row.
    let delta_rows: Vec<Vec<BuildRow>> = networks
        .iter()
        .map(|(name, graph)| {
            let seed = bcc_cohesion::label_core_decomposition(&GraphView::new(graph));
            thread_counts
                .iter()
                .map(|&threads| {
                    let (delta_time, delta) = time_min(repeats, || {
                        bcc_cohesion::label_core_decomposition_parallel(graph, threads)
                    });
                    assert_eq!(
                        delta, seed,
                        "INVARIANT VIOLATED: parallel δ diverged from the sequential \
                         peel on {name} at {threads} threads"
                    );
                    BuildRow { network: name.clone(), threads, build_ms: ms(delta_time) }
                })
                .collect()
        })
        .collect();
    let mut delta_table = Table::new(
        format!(
            "δ label-core decomposition (phase 1 of build_with_threads) on {cores} \
             core(s) (min of {repeats} runs, bit-identical at every setting)"
        ),
        vec!["network".into(), "threads".into(), "delta ms".into(), "speedup vs 1t".into()],
    );
    for rows in &delta_rows {
        let single = rows.iter().find(|r| r.threads == 1).expect("1-thread row").build_ms;
        for row in rows {
            delta_table.push_row(vec![
                row.network.clone(),
                row.threads.to_string(),
                format!("{:.3}", row.build_ms),
                format!("{:.2}x", single / row.build_ms),
            ]);
        }
    }
    println!("{}", delta_table.render());

    if let Some(path) = out_path {
        let json = format!(
            "{{\"cores\":{cores},\"kernels\":{},\"builds\":{},\"delta\":{}}}",
            kernel_table.to_json(),
            build_table.to_json(),
            delta_table.to_json()
        );
        std::fs::write(&path, json).expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
}
