//! Figure 14 (Exp-9) — F1 of PSA, CTC, and L2P-BCC on Baidu-1/Baidu-2 with
//! multi-labeled ground-truth communities, varying m ∈ {2..6}.
//!
//! `cargo run -p bcc-bench --release --bin fig14_mbcc_quality [--scale 1.0] [--queries 20] [--seed 7]`

use bcc_bench::{evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE};
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 20usize);
    let seed = args.get("seed", 7u64);
    let max_m = 6usize;
    let methods = [Method::Psa, Method::Ctc, Method::L2pBcc];

    for base in [bcc_datasets::baidu1(scale), bcc_datasets::baidu2(scale)] {
        let mut spec = base;
        spec.config.groups_per_community = max_m;
        spec.config.community_size = (
            spec.config.community_size.0.max(max_m * 8),
            spec.config.community_size.1.max(max_m * 10),
        );
        let prepared = PreparedNetwork::prepare(&spec);
        let mut headers = vec!["m".to_string()];
        headers.extend(methods.iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!(
                "Figure 14 ({}): F1 vs #labels m ({queries} queries per m)",
                prepared.name
            ),
            headers,
        );
        for m in 2..=max_m {
            let workload = bcc_datasets::mbcc_queries(&prepared.net, m, queries, seed);
            if workload.is_empty() {
                table.push_row(vec![m.to_string(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let mut cells = vec![m.to_string()];
            for method in methods {
                let (agg, _) =
                    evaluate_method(&prepared, method, &workload, ParamOverride::default(), true);
                cells.push(format!("{:.3}", agg.mean_f1()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
