//! Figure 9 (Exp-4) — query time of the three BCC methods while varying the
//! butterfly threshold b ∈ {1..5} (k set to the queries' coreness).
//!
//! `cargo run -p bcc-bench --release --bin fig9_vary_b [--scale 1.0] [--queries 15] [--seed 7]`

use bcc_bench::{
    evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE,
};
use bcc_datasets::QueryConstraints;
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 15usize);
    let seed = args.get("seed", 7u64);

    let specs = vec![
        bcc_datasets::baidu1(scale),
        bcc_datasets::baidu2(scale),
        bcc_datasets::dblp(scale),
        bcc_datasets::livejournal(scale),
        bcc_datasets::orkut(scale),
    ];
    for spec in specs {
        let prepared = PreparedNetwork::prepare(&spec);
        let workload = bcc_datasets::random_community_queries(
            &prepared.net,
            queries,
            QueryConstraints::default(),
            seed,
        );
        let mut headers = vec!["b".to_string()];
        headers.extend(Method::bcc_only().iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!(
                "Figure 9 ({}): time (s) vs butterfly value b (k = query coreness)",
                prepared.name
            ),
            headers,
        );
        for b in 1u64..=5 {
            let overrides = ParamOverride {
                k: None,
                b: Some(b),
            };
            let mut cells = vec![b.to_string()];
            for m in Method::bcc_only() {
                let (agg, _) = evaluate_method(&prepared, m, &workload, overrides, false);
                cells.push(fmt_seconds(agg.mean_seconds()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
