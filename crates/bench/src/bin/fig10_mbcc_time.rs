//! Figure 10 (Exp-10) — mBCC query time of the three extended methods while
//! varying the number of query labels m ∈ {2..6} on Baidu-1, Baidu-2,
//! DBLP-M, LiveJournal-M, Orkut-M.
//!
//! `cargo run -p bcc-bench --release --bin fig10_mbcc_time [--scale 1.0] [--queries 10] [--seed 7]`

use bcc_bench::{evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE};
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 10usize);
    let seed = args.get("seed", 7u64);
    let max_m = 6usize;

    // Multi-label versions: the Baidu networks natively have many labels;
    // the SNAP graphs get the paper's 6-label random assignment.
    let specs: Vec<bcc_datasets::NetworkSpec> = vec![
        {
            let mut s = bcc_datasets::baidu1(scale);
            s.config.groups_per_community = max_m;
            s
        },
        {
            let mut s = bcc_datasets::baidu2(scale);
            s.config.groups_per_community = max_m;
            s
        },
        bcc_datasets::dblp_m(scale, max_m),
        bcc_datasets::livejournal_m(scale, max_m),
        bcc_datasets::orkut_m(scale, max_m),
    ];

    for spec in specs {
        let prepared = PreparedNetwork::prepare(&spec);
        let mut headers = vec!["m".to_string()];
        headers.extend(Method::bcc_only().iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!("Figure 10 ({}): mBCC time (s) vs #labels m", prepared.name),
            headers,
        );
        for m in 2..=max_m {
            let workload = bcc_datasets::mbcc_queries(&prepared.net, m, queries, seed);
            if workload.is_empty() {
                table.push_row(vec![m.to_string(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let mut cells = vec![m.to_string()];
            for method in Method::bcc_only() {
                let (agg, _) =
                    evaluate_method(&prepared, method, &workload, ParamOverride::default(), true);
                cells.push(fmt_seconds(agg.mean_seconds()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
