//! Ablation study for the Section 6 design choices (beyond the paper's own
//! Table 4): isolates the contribution of each fast strategy — bulk
//! deletion, fast query distances (Alg. 5), and leader pairs (Algs. 6–7) —
//! on one network, holding the answers fixed (all variants return the same
//! communities; only the work differs).
//!
//! `cargo run -p bcc-bench --release --bin ablation_strategies [--scale 1.0] [--queries 30] [--seed 7]`

use std::time::Instant;

use bcc_bench::{Args, PreparedNetwork, DEFAULT_SCALE};
use bcc_core::{BccQuery, EngineConfig, MbccParams, MbccQuery, SearchStats};
use bcc_datasets::QueryConstraints;
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 30usize);
    let seed = args.get("seed", 7u64);

    let prepared = PreparedNetwork::prepare(&bcc_datasets::dblp(scale));
    let workload = bcc_datasets::random_community_queries(
        &prepared.net,
        queries,
        QueryConstraints::default(),
        seed,
    );
    eprintln!("[ablation] {} queries on DBLP", workload.len());

    let variants: Vec<(&str, EngineConfig)> = vec![
        ("single deletion, no fast strategies", {
            let mut c = EngineConfig::online();
            c.bulk = false;
            c
        }),
        ("bulk deletion only (Online-BCC)", EngineConfig::online()),
        ("bulk + fast distances (Alg 5)", {
            let mut c = EngineConfig::online();
            c.fast_dist = true;
            c
        }),
        ("bulk + leader pairs (Algs 6-7)", {
            let mut c = EngineConfig::online();
            c.leader_pairs = true;
            c
        }),
        ("all strategies (LP-BCC)", EngineConfig::leader_pair()),
    ];

    let mut table = Table::new(
        format!(
            "Ablation: per-query mean over {} DBLP queries (scale {scale})",
            workload.len()
        ),
        [
            "Variant",
            "time (s)",
            "#butterfly countings",
            "iterations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut reference: Option<Vec<Vec<bcc_graph::VertexId>>> = None;
    for (name, config) in variants {
        let mut stats = SearchStats::default();
        let mut elapsed = 0.0f64;
        let mut answers = Vec::new();
        for q in &workload {
            let pair = BccQuery::pair(q.vertices[0], q.vertices[1]);
            let params = prepared.default_params(q);
            let mquery = MbccQuery::new(pair.as_vec());
            let mparams = MbccParams::new(vec![params.k1, params.k2], params.b);
            let started = Instant::now();
            let result = bcc_core::candidate::Candidate::find_g0(
                &prepared.net.graph,
                &mquery,
                &mparams,
                &mut stats,
            )
            .and_then(|(candidate, counts)| {
                bcc_core::engine::run_peel(candidate, counts, config, &mut stats)
            });
            elapsed += started.elapsed().as_secs_f64();
            answers.push(result.map(|o| o.community).unwrap_or_default());
        }
        // All bulk variants must agree on the answers (the fast strategies
        // are pure accelerations); single-deletion peels in a different
        // order and may legitimately differ.
        if config.bulk {
            match &reference {
                None => reference = Some(answers),
                Some(reference) => assert_eq!(
                    reference, &answers,
                    "{name} changed the answers — strategies must be pure accelerations"
                ),
            }
        }
        let n = workload.len().max(1) as f64;
        table.push_row(vec![
            name.to_string(),
            fmt_seconds(elapsed / n),
            format!("{:.2}", stats.butterfly_countings as f64 / n),
            format!("{:.1}", stats.iterations as f64 / n),
        ]);
    }
    println!("{}", table.render());
    if args.has("json") {
        println!("{}", table.to_json());
    }
}
