//! Figure 5 (Exp-2) — mean query time of all five methods on the seven
//! networks (log-scale bars in the paper; seconds here).
//!
//! `cargo run -p bcc-bench --release --bin fig5_efficiency [--scale 1.0] [--queries 40] [--seed 7]`

use bcc_bench::{run_quality_suite, Args, Method, DEFAULT_QUERIES, DEFAULT_SCALE};
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", DEFAULT_QUERIES);
    let seed = args.get("seed", 7u64);

    let rows = run_quality_suite(scale, queries, seed);
    let mut headers = vec!["Network".to_string()];
    headers.extend(Method::all().iter().map(|m| m.name().to_string()));
    let mut table = Table::new(
        format!(
            "Figure 5: mean running time in seconds ({queries} queries/network, scale {scale})"
        ),
        headers,
    );
    for row in &rows {
        let mut cells = vec![row.network.clone()];
        for (_, agg, _) in &row.per_method {
            cells.push(fmt_seconds(agg.mean_seconds()));
        }
        table.push_row(cells);
    }
    println!("{}", table.render());
    if args.has("json") {
        println!("{}", table.to_json());
    }
}
