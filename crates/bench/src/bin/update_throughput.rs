//! Incremental update throughput: patching the BCindex after an edge flip
//! (Algorithm 4 cascades + Algorithm 7 butterfly deltas) versus rebuilding
//! it from scratch, on the planted paper networks.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin update_throughput -- \
//!     [--scale 0.25] [--updates 12] [--out update_throughput.json]
//! ```
//!
//! Each update is a random valid flip (remove an existing edge or insert an
//! absent pair). For every flip the binary times the patch path (CSR splice
//! plus in-place index patch) and the rebuild path (`BccIndex::build` on
//! the new snapshot), then **verifies the two indices are bit-identical**
//! and exits non-zero otherwise — the differential check runs under
//! `--release` in CI on every push. The JSON summary reports the
//! per-network speedup; the binary fails if patching does not beat
//! rebuilding.

use std::time::{Duration, Instant};

use bcc_bench::Args;
use bcc_core::{patch_index_edge, BccIndex};
use bcc_eval::Table;
use bcc_graph::{apply_change, EdgeChange, EdgeOp, LabeledGraph, VertexId};
use rand::{Rng, SeedableRng};

struct Row {
    network: String,
    vertices: usize,
    edges: usize,
    updates: usize,
    build_ms: f64,
    patch_ms_avg: f64,
    rebuild_ms_avg: f64,
    speedup: f64,
}

fn random_flip(rng: &mut rand_chacha::ChaCha8Rng, graph: &LabeledGraph) -> Option<EdgeChange> {
    let n = graph.vertex_count() as u32;
    if n < 2 {
        return None;
    }
    for _ in 0..256 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        let op = if graph.has_edge(u, v) { EdgeOp::Remove } else { EdgeOp::Insert };
        return Some(EdgeChange { u, v, op });
    }
    None
}

fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
    assert_eq!(
        patched.label_coreness, rebuilt.label_coreness,
        "INVARIANT VIOLATED: δ diverged from rebuild {context}"
    );
    assert_eq!(
        patched.butterfly_degree, rebuilt.butterfly_degree,
        "INVARIANT VIOLATED: χ diverged from rebuild {context}"
    );
    assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max diverged {context}");
    assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max diverged {context}");
}

fn bench_network(name: &str, scale: f64, updates: usize, seed: u64) -> Row {
    let spec = match name {
        "dblp" => bcc_datasets::dblp(scale),
        "baidu1" => bcc_datasets::baidu1(scale),
        other => panic!("unknown network `{other}`"),
    };
    let net = spec.build();
    let mut graph = net.graph;
    eprintln!(
        "{} x{scale}: {} vertices, {} edges",
        spec.name,
        graph.vertex_count(),
        graph.edge_count()
    );

    let build_started = Instant::now();
    let mut index = BccIndex::build(&graph);
    let build_time = build_started.elapsed();

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut patch_total = Duration::ZERO;
    let mut rebuild_total = Duration::ZERO;
    let mut applied = 0usize;
    for step in 0..updates {
        let Some(change) = random_flip(&mut rng, &graph) else { break };

        let patch_started = Instant::now();
        let after = apply_change(&graph, &change);
        patch_index_edge(&mut index, &graph, &after, &change);
        patch_total += patch_started.elapsed();

        let rebuild_started = Instant::now();
        let rebuilt = BccIndex::build(&after);
        rebuild_total += rebuild_started.elapsed();

        assert_index_eq(
            &index,
            &rebuilt,
            &format!("({} step {step}, {:?} {}-{})", spec.name, change.op, change.u, change.v),
        );
        graph = after;
        applied += 1;
    }
    assert!(applied > 0, "no valid flips found — graph too small");

    let patch_ms_avg = patch_total.as_secs_f64() * 1e3 / applied as f64;
    let rebuild_ms_avg = rebuild_total.as_secs_f64() * 1e3 / applied as f64;
    Row {
        network: spec.name.to_string(),
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        updates: applied,
        build_ms: build_time.as_secs_f64() * 1e3,
        patch_ms_avg,
        rebuild_ms_avg,
        speedup: rebuild_ms_avg / patch_ms_avg,
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.25f64);
    let updates = args.get("updates", 12usize).max(1);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);

    let rows: Vec<Row> = ["dblp", "baidu1"]
        .iter()
        .enumerate()
        .map(|(i, name)| bench_network(name, scale, updates, 0xBCC + i as u64))
        .collect();

    let mut table = Table::new(
        format!("Incremental index update vs rebuild ({updates} random edge flips)"),
        vec![
            "network".into(),
            "|V|".into(),
            "|E|".into(),
            "updates".into(),
            "initial build ms".into(),
            "patch ms/update".into(),
            "rebuild ms/update".into(),
            "speedup".into(),
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.network.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
            row.updates.to_string(),
            format!("{:.2}", row.build_ms),
            format!("{:.3}", row.patch_ms_avg),
            format!("{:.3}", row.rebuild_ms_avg),
            format!("{:.1}x", row.speedup),
        ]);
    }
    println!("{}", table.render());

    for row in &rows {
        assert!(
            row.speedup > 1.0,
            "INVARIANT VIOLATED: patching {} ({:.3} ms) must beat rebuilding ({:.3} ms)",
            row.network,
            row.patch_ms_avg,
            row.rebuild_ms_avg
        );
    }

    if let Some(path) = out_path {
        std::fs::write(&path, table.to_json()).expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
}
