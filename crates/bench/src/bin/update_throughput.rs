//! Incremental update throughput: patching the BCindex after an edge flip
//! (Algorithm 4 cascades + Algorithm 7 butterfly deltas) versus rebuilding
//! it from scratch, on the planted paper networks.
//!
//! ```text
//! cargo run --release -p bcc-bench --bin update_throughput -- \
//!     [--scale 0.25] [--updates 12] [--threads 1] [--out update_throughput.json]
//! ```
//!
//! `--threads` (default 1) sets the worker count of the *rebuild* side via
//! `BccIndex::build_with_threads` — the patch-vs-rebuild gate below is
//! against the sequential rebuild by default (the seed comparison), and the
//! knob lets a multi-core run pit patching against the parallel build too.
//!
//! Each update is a random valid flip (remove an existing edge or insert an
//! absent pair). For every flip the binary times the patch path (CSR splice
//! plus in-place index patch) and the rebuild path (`BccIndex::build` on
//! the new snapshot), then **verifies the two indices are bit-identical**
//! and exits non-zero otherwise — the differential check runs under
//! `--release` in CI on every push. The JSON summary reports the
//! per-network speedup; the binary fails if patching does not beat
//! rebuilding.
//!
//! A second section sweeps **batched commits** (`--batches 1,16,256,4096`):
//! for each batch size B it stages B valid flips and times (a) the per-edge
//! replay the registry used before the overlay existed — B CSR splices +
//! B `patch_index_edge` calls — against (b) `patch_index_batch` over the
//! mutable adjacency overlay plus the **single** final `GraphDelta::apply`
//! materialization. Both indices (and a cold rebuild) must stay
//! bit-identical at every batch size; the binary fails unless the batched
//! path wins outright at every B ≥ 256 and its latency stays ~linear in B
//! (at most 2.5× per-change drift across the sweep — the per-edge path's
//! O(B·(|V|+|E|)) term would blow far past that).
//!
//! The sweep runs at `--batch-scale` (default 1.0, independent of the
//! per-flip section's `--scale`): the O(B·(|V|+|E|)) term it measures is a
//! *graph-size* cost, so the graph must be large enough that B ≪ |E| —
//! at toy scales where a 4096-edge batch rewrites most of the graph, a
//! from-scratch rebuild is the right tool and the comparison is
//! meaningless.

use std::time::{Duration, Instant};

use bcc_bench::Args;
use bcc_core::{patch_index_batch, patch_index_edge, BccIndex};
use bcc_eval::Table;
use bcc_graph::{apply_change, EdgeChange, EdgeOp, GraphDelta, LabeledGraph, VertexId};
use rand::{Rng, SeedableRng};

struct Row {
    network: String,
    vertices: usize,
    edges: usize,
    updates: usize,
    build_ms: f64,
    patch_ms_avg: f64,
    rebuild_ms_avg: f64,
    speedup: f64,
}

fn random_flip(rng: &mut rand_chacha::ChaCha8Rng, graph: &LabeledGraph) -> Option<EdgeChange> {
    let n = graph.vertex_count() as u32;
    if n < 2 {
        return None;
    }
    for _ in 0..256 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        let op = if graph.has_edge(u, v) { EdgeOp::Remove } else { EdgeOp::Insert };
        return Some(EdgeChange { u, v, op });
    }
    None
}

fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
    assert_eq!(
        patched.label_coreness, rebuilt.label_coreness,
        "INVARIANT VIOLATED: δ diverged from rebuild {context}"
    );
    assert_eq!(
        patched.butterfly_degree, rebuilt.butterfly_degree,
        "INVARIANT VIOLATED: χ diverged from rebuild {context}"
    );
    assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max diverged {context}");
    assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max diverged {context}");
}

fn bench_network(name: &str, scale: f64, updates: usize, threads: usize, seed: u64) -> Row {
    let spec = match name {
        "dblp" => bcc_datasets::dblp(scale),
        "baidu1" => bcc_datasets::baidu1(scale),
        other => panic!("unknown network `{other}`"),
    };
    let net = spec.build();
    let mut graph = net.graph;
    eprintln!(
        "{} x{scale}: {} vertices, {} edges",
        spec.name,
        graph.vertex_count(),
        graph.edge_count()
    );

    let build_started = Instant::now();
    let mut index = BccIndex::build_with_threads(&graph, threads);
    let build_time = build_started.elapsed();

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut patch_total = Duration::ZERO;
    let mut rebuild_total = Duration::ZERO;
    let mut applied = 0usize;
    for step in 0..updates {
        let Some(change) = random_flip(&mut rng, &graph) else { break };

        let patch_started = Instant::now();
        let after = apply_change(&graph, &change);
        patch_index_edge(&mut index, &graph, &after, &change);
        patch_total += patch_started.elapsed();

        let rebuild_started = Instant::now();
        let rebuilt = BccIndex::build_with_threads(&after, threads);
        rebuild_total += rebuild_started.elapsed();

        assert_index_eq(
            &index,
            &rebuilt,
            &format!("({} step {step}, {:?} {}-{})", spec.name, change.op, change.u, change.v),
        );
        graph = after;
        applied += 1;
    }
    assert!(applied > 0, "no valid flips found — graph too small");

    let patch_ms_avg = patch_total.as_secs_f64() * 1e3 / applied as f64;
    let rebuild_ms_avg = rebuild_total.as_secs_f64() * 1e3 / applied as f64;
    Row {
        network: spec.name.to_string(),
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        updates: applied,
        build_ms: build_time.as_secs_f64() * 1e3,
        patch_ms_avg,
        rebuild_ms_avg,
        speedup: rebuild_ms_avg / patch_ms_avg,
    }
}

/// One batch size of the sweep: per-edge replay versus overlay-batched
/// patching of the same staged delta.
struct BatchRow {
    network: String,
    batch: usize,
    per_edge_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

/// Stages exactly `size` sequentially-valid flips against `base` as
/// *balanced churn*: alternating removals of existing base edges and
/// insertions of absent pairs, so |E| stays within 1 of the base across the
/// whole batch. A constant-size graph keeps the per-change maintenance cost
/// flat, isolating the O(B·(|V|+|E|)) splice term the sweep measures.
fn random_delta(
    rng: &mut rand_chacha::ChaCha8Rng,
    base: &LabeledGraph,
    size: usize,
) -> GraphDelta {
    let n = base.vertex_count() as u32;
    let mut removable: Vec<(VertexId, VertexId)> = base.edges().collect();
    assert!(
        removable.len() > size / 2,
        "batch of {size} churn flips needs > {} base edges, graph has {}",
        size / 2,
        removable.len()
    );
    let mut delta = GraphDelta::new();
    while delta.len() < size {
        if delta.len().is_multiple_of(2) {
            let (u, v) = removable.swap_remove(rng.gen_range(0..removable.len()));
            delta.stage_remove(base, u, v).expect("base edge not yet staged away");
        } else {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            if u == v || delta.has_edge(base, u, v) {
                continue;
            }
            delta.stage_insert(base, u, v).expect("absent pair inserts cleanly");
        }
    }
    delta
}

fn bench_batches(name: &str, scale: f64, batches: &[usize], seed: u64) -> Vec<BatchRow> {
    let spec = match name {
        "dblp" => bcc_datasets::dblp(scale),
        "baidu1" => bcc_datasets::baidu1(scale),
        other => panic!("unknown network `{other}`"),
    };
    let graph = spec.build().graph;
    let index = BccIndex::build(&graph);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);

    batches
        .iter()
        .map(|&batch| {
            let delta = random_delta(&mut rng, &graph, batch);

            // (a) Per-edge replay: B CSR splices + B index patches — the
            // pre-overlay commit path.
            let mut per_edge = index.clone();
            let per_edge_started = Instant::now();
            let mut stepped = graph.clone();
            for change in delta.changes() {
                let next = apply_change(&stepped, change);
                patch_index_edge(&mut per_edge, &stepped, &next, change);
                stepped = next;
            }
            let per_edge_time = per_edge_started.elapsed();

            // (b) Overlay-batched: O(1) graph work per edge, one CSR
            // materialization for the whole commit.
            let mut batched = index.clone();
            let batched_started = Instant::now();
            patch_index_batch(&mut batched, &graph, delta.changes());
            let final_graph = delta.apply(&graph);
            let batched_time = batched_started.elapsed();

            // Bit-identity at every step of the sweep: batched == per-edge
            // replay == cold rebuild on the materialized snapshot.
            assert_index_eq(
                &batched,
                &per_edge,
                &format!("({} batch {batch}: batched vs per-edge)", spec.name),
            );
            assert_index_eq(
                &batched,
                &BccIndex::build(&final_graph),
                &format!("({} batch {batch}: batched vs rebuild)", spec.name),
            );
            assert_eq!(
                final_graph.edge_count(),
                stepped.edge_count(),
                "one-pass materialization diverged from the stepped snapshots"
            );

            let per_edge_ms = per_edge_time.as_secs_f64() * 1e3;
            let batched_ms = batched_time.as_secs_f64() * 1e3;
            eprintln!(
                "{} batch {batch}: per-edge {per_edge_ms:.2} ms, batched {batched_ms:.2} ms",
                spec.name
            );
            BatchRow {
                network: spec.name.to_string(),
                batch,
                per_edge_ms,
                batched_ms,
                speedup: per_edge_ms / batched_ms,
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", 0.25f64);
    let updates = args.get("updates", 12usize).max(1);
    let threads = args.get("threads", 1usize);
    let batches_arg = args.get("batches", String::from("1,16,256,4096"));
    let batch_scale = args.get("batch-scale", 1.0f64);
    let out = args.get("out", String::new());
    let out_path = (!out.is_empty()).then_some(out);
    let batches: Vec<usize> = batches_arg
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("--batches takes comma-separated sizes"))
        .collect();

    let rows: Vec<Row> = ["dblp", "baidu1"]
        .iter()
        .enumerate()
        .map(|(i, name)| bench_network(name, scale, updates, threads, 0xBCC + i as u64))
        .collect();

    let mut table = Table::new(
        format!("Incremental index update vs rebuild ({updates} random edge flips)"),
        vec![
            "network".into(),
            "|V|".into(),
            "|E|".into(),
            "updates".into(),
            "initial build ms".into(),
            "patch ms/update".into(),
            "rebuild ms/update".into(),
            "speedup".into(),
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.network.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
            row.updates.to_string(),
            format!("{:.2}", row.build_ms),
            format!("{:.3}", row.patch_ms_avg),
            format!("{:.3}", row.rebuild_ms_avg),
            format!("{:.1}x", row.speedup),
        ]);
    }
    println!("{}", table.render());

    for row in &rows {
        assert!(
            row.speedup > 1.0,
            "INVARIANT VIOLATED: patching {} ({:.3} ms) must beat rebuilding ({:.3} ms)",
            row.network,
            row.patch_ms_avg,
            row.rebuild_ms_avg
        );
    }

    // Batched-commit sweep: overlay batch vs per-edge replay at each size,
    // grouped per network for the scaling gates below.
    let per_network: Vec<Vec<BatchRow>> = ["dblp", "baidu1"]
        .iter()
        .enumerate()
        .map(|(i, name)| bench_batches(name, batch_scale, &batches, 0xBA7C + i as u64))
        .collect();
    let batch_rows: Vec<&BatchRow> = per_network.iter().flatten().collect();
    let mut batch_table = Table::new(
        format!("Batched commit: overlay patch vs per-edge replay (B ∈ {batches:?})"),
        vec![
            "network".into(),
            "batch".into(),
            "per-edge ms".into(),
            "batched ms".into(),
            "speedup".into(),
        ],
    );
    for row in &batch_rows {
        batch_table.push_row(vec![
            row.network.clone(),
            row.batch.to_string(),
            format!("{:.2}", row.per_edge_ms),
            format!("{:.2}", row.batched_ms),
            format!("{:.1}x", row.speedup),
        ]);
    }
    println!("{}", batch_table.render());

    // The acceptance gates: batched wins outright at B ≥ 256, and the win
    // grows superlinearly with B (per-edge replay is O(B·(|V|+|E|)); the
    // batched path amortizes its single materialization).
    for row in batch_rows.iter().filter(|r| r.batch >= 256) {
        assert!(
            row.speedup > 1.0,
            "INVARIANT VIOLATED: batched commit of {} edges on {} ({:.2} ms) must beat \
             per-edge replay ({:.2} ms)",
            row.batch,
            row.network,
            row.batched_ms,
            row.per_edge_ms
        );
    }
    // Batched latency must stay ~linear in B: across the sweep's extremes
    // (smallest non-trivial size to largest), the per-change cost may drift
    // by at most 2.5× — the per-edge path's O(B·(|V|+|E|)) term would blow
    // far past that if the overlay ever fell back to splicing.
    for of_net in &per_network {
        if let (Some(small), Some(large)) = (
            of_net.iter().find(|r| r.batch > 1),
            of_net.iter().rfind(|r| r.batch >= 256),
        ) {
            if large.batch <= small.batch {
                continue;
            }
            let growth = large.batched_ms / small.batched_ms;
            let linear = large.batch as f64 / small.batch as f64;
            assert!(
                growth < 2.5 * linear,
                "INVARIANT VIOLATED: {} batched latency grew superlinearly \
                 (B={} → {:.2} ms, B={} → {:.2} ms: {:.1}× for a {:.0}× batch)",
                large.network,
                small.batch,
                small.batched_ms,
                large.batch,
                large.batched_ms,
                growth,
                linear
            );
        }
    }

    if let Some(path) = out_path {
        let json = format!(
            "{{\"per_edge\":{},\"batched\":{}}}",
            table.to_json(),
            batch_table.to_json()
        );
        std::fs::write(&path, json).expect("write JSON summary");
        eprintln!("wrote JSON summary to {path}");
    }
}
