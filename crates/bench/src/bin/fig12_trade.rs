//! Figure 12 (Exp-7) — case study on the international trade network:
//! Q = {"United States", "China"}, b = 3. The BCC should return the Asian
//! and North American trade blocks bridged by the transpacific
//! butterflies; CTC mixes continents and misses the Asian partners.
//!
//! `cargo run -p bcc-bench --release --bin fig12_trade [--seed 42]`

use bcc_bench::{case_study_compare, Args};

fn main() {
    let args = Args::parse();
    let seed = args.get("seed", 42u64);
    let graph = bcc_datasets::trade_network(seed);
    println!(
        "Trade network: {} economies, {} trade links, {} continents\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );
    case_study_compare(
        &graph,
        "Figure 12: trade network case study",
        "United States",
        "China",
        3,
    );
}
