//! Table 3 — network statistics: |V|, |E|, labels, k_max, d_max.
//!
//! `cargo run -p bcc-bench --release --bin table3_stats [--scale 1.0]`

use bcc_bench::{Args, DEFAULT_SCALE};
use bcc_eval::Table;
use bcc_graph::GraphView;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let mut table = Table::new(
        format!("Table 3: network statistics (scale = {scale}; paper sizes in DESIGN.md)"),
        ["Network", "|V|", "|E|", "Labels", "k_max", "d_max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for spec in bcc_datasets::networks::all_two_label(scale) {
        let net = spec.build();
        let view = GraphView::new(&net.graph);
        let k_max = bcc_cohesion::max_coreness(&view);
        let d_max = net.graph.max_degree();
        table.push_row(vec![
            spec.name.to_string(),
            net.graph.vertex_count().to_string(),
            net.graph.edge_count().to_string(),
            net.graph.label_count().to_string(),
            k_max.to_string(),
            d_max.to_string(),
        ]);
    }
    println!("{}", table.render());
    if Args::parse().has("json") {
        println!("{}", table.to_json());
    }
}
