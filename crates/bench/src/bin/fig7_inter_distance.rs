//! Figure 7 (Exp-3) — query time of the three BCC methods while varying the
//! inter-distance l ∈ {1..5} between the two query vertices.
//!
//! `cargo run -p bcc-bench --release --bin fig7_inter_distance [--scale 1.0] [--queries 15] [--seed 7]`

use bcc_bench::{
    evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE,
};
use bcc_eval::table::fmt_seconds;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 15usize);
    let seed = args.get("seed", 7u64);

    let specs = vec![
        bcc_datasets::baidu1(scale),
        bcc_datasets::baidu2(scale),
        bcc_datasets::dblp(scale),
        bcc_datasets::livejournal(scale),
        bcc_datasets::orkut(scale),
    ];
    for spec in specs {
        let prepared = PreparedNetwork::prepare(&spec);
        let mut headers = vec!["l".to_string()];
        headers.extend(Method::bcc_only().iter().map(|m| m.name().to_string()));
        let mut table = Table::new(
            format!("Figure 7 ({}): time (s) vs inter-distance l", prepared.name),
            headers,
        );
        for l in 1u32..=5 {
            let workload = bcc_datasets::queries_by_distance(&prepared.net, l, queries, seed);
            if workload.is_empty() {
                table.push_row(vec![l.to_string(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let mut cells = vec![l.to_string()];
            for m in Method::bcc_only() {
                let (agg, _) =
                    evaluate_method(&prepared, m, &workload, ParamOverride::default(), false);
                cells.push(fmt_seconds(agg.mean_seconds()));
            }
            table.push_row(cells);
        }
        println!("{}", table.render());
        if args.has("json") {
            println!("{}", table.to_json());
        }
    }
}
