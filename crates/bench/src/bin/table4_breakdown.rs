//! Table 4 (Exp-5) — Online-BCC vs LP-BCC phase breakdown on DBLP:
//! query-distance calculation time, core decomposition time, leader-pair
//! update time, number of butterfly-counting invocations, and total time,
//! with speedup factors.
//!
//! Phase rows come from the same [`bcc_obs::Phase`] taxonomy the service
//! metrics registry uses: each method's aggregated `SearchStats` replays
//! through [`QueryTrace`] via `record_phases`, so this table and the live
//! `metrics` verb are reading one instrumentation, not two.
//!
//! `cargo run -p bcc-bench --release --bin table4_breakdown [--scale 1.0] [--queries 100] [--seed 7]`

use bcc_bench::{evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE};
use bcc_datasets::QueryConstraints;
use bcc_eval::Table;
use bcc_obs::{Phase, QueryTrace};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 100usize);
    let seed = args.get("seed", 7u64);

    let prepared = PreparedNetwork::prepare(&bcc_datasets::dblp(scale));
    let workload = bcc_datasets::random_community_queries(
        &prepared.net,
        queries,
        QueryConstraints::default(),
        seed,
    );
    eprintln!("[table4] {} queries on DBLP", workload.len());

    let (online_agg, online_stats) = evaluate_method(
        &prepared,
        Method::OnlineBcc,
        &workload,
        ParamOverride::default(),
        false,
    );
    let (lp_agg, lp_stats) = evaluate_method(
        &prepared,
        Method::LpBcc,
        &workload,
        ParamOverride::default(),
        false,
    );

    // Replay each method's aggregated stats into a phase trace — the same
    // mapping the service's per-query recorder applies online.
    let online_trace = QueryTrace::new();
    online_stats.record_phases(&online_trace);
    let lp_trace = QueryTrace::new();
    lp_stats.record_phases(&lp_trace);

    let speedup = |a: f64, b: f64| {
        if b == 0.0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", a / b)
        }
    };
    let n = workload.len().max(1) as f64;
    let per_query = |trace: &QueryTrace, phase: Phase| trace.get(phase).as_secs_f64() / n;
    let mut table = Table::new(
        format!(
            "Table 4: Online-BCC vs LP-BCC on DBLP (per-query means over {} queries)",
            workload.len()
        ),
        ["Metric", "Online-BCC", "LP-BCC", "Speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let online_qd = per_query(&online_trace, Phase::QueryDistance);
    let lp_qd = per_query(&lp_trace, Phase::QueryDistance);
    table.push_row(vec![
        "Query distance calculation (s)".into(),
        format!("{online_qd:.5}"),
        format!("{lp_qd:.5}"),
        speedup(online_qd, lp_qd),
    ]);
    let online_cd = per_query(&online_trace, Phase::CoreDecomp);
    let lp_cd = per_query(&lp_trace, Phase::CoreDecomp);
    table.push_row(vec![
        "Core decomposition (s)".into(),
        format!("{online_cd:.5}"),
        format!("{lp_cd:.5}"),
        speedup(online_cd, lp_cd),
    ]);
    // Online-BCC has no leader-pairing phase — its "update" is butterfly
    // counting alone; LP-BCC pays pairing plus the countings it triggers.
    let online_lu = per_query(&online_trace, Phase::ButterflyCounting);
    let lp_lu = per_query(&lp_trace, Phase::LeaderPairing)
        + per_query(&lp_trace, Phase::ButterflyCounting);
    table.push_row(vec![
        "Leader pair update (s)".into(),
        format!("{online_lu:.5}"),
        format!("{lp_lu:.5}"),
        speedup(online_lu, lp_lu),
    ]);
    let online_bc = online_stats.butterfly_countings as f64 / n;
    let lp_bc = lp_stats.butterfly_countings as f64 / n;
    table.push_row(vec![
        "#butterfly counting".into(),
        format!("{online_bc:.2}"),
        format!("{lp_bc:.2}"),
        speedup(online_bc, lp_bc),
    ]);
    let online_total = online_agg.mean_seconds();
    let lp_total = lp_agg.mean_seconds();
    table.push_row(vec![
        "Total time (s)".into(),
        format!("{online_total:.5}"),
        format!("{lp_total:.5}"),
        speedup(online_total, lp_total),
    ]);
    println!("{}", table.render());
    if args.has("json") {
        println!("{}", table.to_json());
    }
}
