//! Table 4 (Exp-5) — Online-BCC vs LP-BCC phase breakdown on DBLP:
//! query-distance calculation time, leader-pair update time, number of
//! butterfly-counting invocations, and total time, with speedup factors.
//!
//! `cargo run -p bcc-bench --release --bin table4_breakdown [--scale 1.0] [--queries 100] [--seed 7]`

use bcc_bench::{evaluate_method, Args, Method, ParamOverride, PreparedNetwork, DEFAULT_SCALE};
use bcc_datasets::QueryConstraints;
use bcc_eval::Table;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale", DEFAULT_SCALE);
    let queries = args.get("queries", 100usize);
    let seed = args.get("seed", 7u64);

    let prepared = PreparedNetwork::prepare(&bcc_datasets::dblp(scale));
    let workload = bcc_datasets::random_community_queries(
        &prepared.net,
        queries,
        QueryConstraints::default(),
        seed,
    );
    eprintln!("[table4] {} queries on DBLP", workload.len());

    let (online_agg, online_stats) = evaluate_method(
        &prepared,
        Method::OnlineBcc,
        &workload,
        ParamOverride::default(),
        false,
    );
    let (lp_agg, lp_stats) = evaluate_method(
        &prepared,
        Method::LpBcc,
        &workload,
        ParamOverride::default(),
        false,
    );

    let speedup = |a: f64, b: f64| {
        if b == 0.0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", a / b)
        }
    };
    let n = workload.len().max(1) as f64;
    let mut table = Table::new(
        format!(
            "Table 4: Online-BCC vs LP-BCC on DBLP (per-query means over {} queries)",
            workload.len()
        ),
        ["Metric", "Online-BCC", "LP-BCC", "Speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let online_qd = online_stats.time_query_distance.as_secs_f64() / n;
    let lp_qd = lp_stats.time_query_distance.as_secs_f64() / n;
    table.push_row(vec![
        "Query distance calculation (s)".into(),
        format!("{online_qd:.5}"),
        format!("{lp_qd:.5}"),
        speedup(online_qd, lp_qd),
    ]);
    let online_lu = online_stats.time_butterfly_counting.as_secs_f64() / n;
    let lp_lu = (lp_stats.time_leader_update + lp_stats.time_butterfly_counting).as_secs_f64() / n;
    table.push_row(vec![
        "Leader pair update (s)".into(),
        format!("{online_lu:.5}"),
        format!("{lp_lu:.5}"),
        speedup(online_lu, lp_lu),
    ]);
    let online_bc = online_stats.butterfly_countings as f64 / n;
    let lp_bc = lp_stats.butterfly_countings as f64 / n;
    table.push_row(vec![
        "#butterfly counting".into(),
        format!("{online_bc:.2}"),
        format!("{lp_bc:.2}"),
        speedup(online_bc, lp_bc),
    ]);
    let online_total = online_agg.mean_seconds();
    let lp_total = lp_agg.mean_seconds();
    table.push_row(vec![
        "Total time (s)".into(),
        format!("{online_total:.5}"),
        format!("{lp_total:.5}"),
        speedup(online_total, lp_total),
    ]);
    println!("{}", table.render());
    if args.has("json") {
        println!("{}", table.to_json());
    }
}
