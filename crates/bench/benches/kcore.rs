//! Criterion micro-benchmarks for the k-core substrate: full decomposition
//! versus incremental maintenance (the ablation behind Algorithm 4's
//! cascade-don't-recompute design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bcc_cohesion::{
    core_decomposition, label_core_decomposition, reduce_to_label_core, LabelCoreThresholds,
};
use bcc_datasets::{PlantedConfig, PlantedNetwork};
use bcc_graph::{GraphView, VertexId};

fn fixture(communities: usize) -> PlantedNetwork {
    PlantedNetwork::generate(PlantedConfig {
        communities,
        community_size: (30, 50),
        ..Default::default()
    })
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_decomposition");
    for communities in [20usize, 80] {
        let net = fixture(communities);
        let view = GraphView::new(&net.graph);
        group.bench_with_input(
            BenchmarkId::new("full_graph", communities),
            &communities,
            |b, _| b.iter(|| core_decomposition(&view)),
        );
        group.bench_with_input(
            BenchmarkId::new("label_induced", communities),
            &communities,
            |b, _| b.iter(|| label_core_decomposition(&view)),
        );
    }
    group.finish();
}

fn bench_maintenance_vs_recompute(c: &mut Criterion) {
    let net = fixture(40);
    let graph = &net.graph;
    // Thresholds for the two labels of one community pair.
    let la = graph.label(VertexId(0));
    let lb = net.communities[0]
        .iter()
        .map(|&v| graph.label(v))
        .find(|&l| l != la)
        .expect("two labels per community");
    let mut thresholds = LabelCoreThresholds::new(graph.label_count());
    thresholds.require(la, 3);
    thresholds.require(lb, 3);

    let mut group = c.benchmark_group("core_maintenance");
    group.bench_function("reduce_to_label_core_from_scratch", |b| {
        b.iter(|| {
            let mut view = GraphView::new(graph);
            reduce_to_label_core(&mut view, &thresholds)
        })
    });
    group.bench_function("cascade_after_one_deletion", |b| {
        // Prepare the reduced view once; measure only the incremental
        // cascade after removing a single vertex.
        let mut base = GraphView::new(graph);
        reduce_to_label_core(&mut base, &thresholds);
        let victim = base.alive_vertices().next().expect("non-empty core");
        b.iter(|| {
            let mut view = base.clone();
            view.remove_vertex(victim);
            bcc_cohesion::cascade_label_core(&mut view, &thresholds, &[victim])
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decomposition, bench_maintenance_vs_recompute
}
criterion_main!(benches);
