//! Criterion micro-benchmarks for butterfly counting strategies.
//!
//! Supports the Section 3.5 claim that butterfly enumeration is efficient
//! and the Table 4 claim that the Algorithm 7 per-leader update is far
//! cheaper than recounting (Algorithm 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bcc_butterfly::{
    butterfly_degrees, butterfly_degrees_hash, butterfly_degrees_priority, leader_decrement,
    total_butterflies, total_butterflies_priority, BipartiteCross, ButterflyCounts,
};
use bcc_datasets::{PlantedConfig, PlantedNetwork};
use bcc_graph::{GraphView, Label};

fn bipartite_fixture(communities: usize) -> PlantedNetwork {
    PlantedNetwork::generate(PlantedConfig {
        communities,
        community_size: (30, 50),
        label_pool: 2,
        intra_prob: 0.3,
        cross_fraction: 0.2,
        ..Default::default()
    })
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("butterfly_counting");
    for communities in [10usize, 40] {
        let net = bipartite_fixture(communities);
        let view = GraphView::new(&net.graph);
        let cross = BipartiteCross::new(Label(0), Label(1));
        group.bench_with_input(
            BenchmarkId::new("alg3_per_vertex_flat", communities),
            &communities,
            |b, _| b.iter(|| butterfly_degrees(&view, cross)),
        );
        group.bench_with_input(
            BenchmarkId::new("alg3_per_vertex_hash", communities),
            &communities,
            |b, _| b.iter(|| butterfly_degrees_hash(&view, cross)),
        );
        group.bench_with_input(
            BenchmarkId::new("alg3_per_vertex_priority", communities),
            &communities,
            |b, _| b.iter(|| butterfly_degrees_priority(&view, cross)),
        );
        group.bench_with_input(
            BenchmarkId::new("side_sum_total", communities),
            &communities,
            |b, _| b.iter(|| total_butterflies(&view, cross)),
        );
        group.bench_with_input(
            BenchmarkId::new("vertex_priority_total", communities),
            &communities,
            |b, _| b.iter(|| total_butterflies_priority(&view, cross)),
        );
    }
    group.finish();
}

fn bench_leader_update_vs_recount(c: &mut Criterion) {
    let net = bipartite_fixture(30);
    let view = GraphView::new(&net.graph);
    let cross = BipartiteCross::new(Label(0), Label(1));
    let counts = ButterflyCounts::compute(&view, cross);
    let leader = counts
        .side_argmax(&view, Label(0))
        .expect("left side non-empty");
    let victim = counts
        .side_argmax(&view, Label(1))
        .expect("right side non-empty");

    let mut group = c.benchmark_group("leader_maintenance");
    group.bench_function("alg7_single_update", |b| {
        b.iter(|| leader_decrement(&view, cross, leader, victim))
    });
    group.bench_function("alg3_full_recount", |b| {
        b.iter(|| butterfly_degrees(&view, cross))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_counting, bench_leader_update_vs_recount
}
criterion_main!(benches);
