//! Criterion end-to-end benchmarks of the five search methods on a
//! mid-sized network (the Figure 5 comparison at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};

use bcc_bench::{run_query, Method, ParamOverride, PreparedNetwork};
use bcc_datasets::QueryConstraints;

fn bench_methods(c: &mut Criterion) {
    let prepared = PreparedNetwork::prepare(&bcc_datasets::dblp(0.5));
    let queries = bcc_datasets::random_community_queries(
        &prepared.net,
        5,
        QueryConstraints::default(),
        7,
    );
    assert!(!queries.is_empty(), "workload generation failed");

    let mut group = c.benchmark_group("search_methods_dblp");
    for method in Method::all() {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                for q in &queries {
                    let outcome = run_query(&prepared, method, q, ParamOverride::default());
                    criterion::black_box(outcome.community);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_methods
}
criterion_main!(benches);
