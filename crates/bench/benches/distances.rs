//! Criterion micro-benchmarks for query-distance maintenance: full BFS
//! recomputation versus the Algorithm 5 incremental update (the ablation
//! behind Section 6.1 and the first row of Table 4).

use criterion::{criterion_group, criterion_main, Criterion};

use bcc_core::{IncrementalDistances, SearchStats};
use bcc_datasets::{PlantedConfig, PlantedNetwork};
use bcc_graph::{GraphView, VertexId};

fn fixture() -> PlantedNetwork {
    PlantedNetwork::generate(PlantedConfig {
        communities: 60,
        community_size: (30, 50),
        ..Default::default()
    })
}

fn bench_distance_maintenance(c: &mut Criterion) {
    let net = fixture();
    let graph = &net.graph;
    let queries = [VertexId(0), VertexId(20)];

    let mut group = c.benchmark_group("query_distance");
    group.bench_function("full_bfs_recompute", |b| {
        let view = GraphView::new(graph);
        let mut stats = SearchStats::default();
        b.iter(|| IncrementalDistances::compute(&view, &queries, &mut stats))
    });
    group.bench_function("alg5_incremental_update", |b| {
        // One far vertex is removed; Algorithm 5 refreshes the arrays.
        let mut view = GraphView::new(graph);
        let mut stats = SearchStats::default();
        let base = IncrementalDistances::compute(&view, &queries, &mut stats);
        let victim = view
            .alive_vertices()
            .filter(|v| !queries.contains(v))
            .max_by_key(|&v| {
                let d = base.vertex_query_distance(v);
                if d == u32::MAX {
                    0
                } else {
                    d
                }
            })
            .expect("non-trivial graph");
        view.remove_vertex(victim);
        b.iter(|| {
            let mut inc = base.clone();
            inc.update_after_removal(&view, &[victim], &mut stats)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distance_maintenance
}
criterion_main!(benches);
