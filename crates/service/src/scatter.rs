//! Scatter-gather: cross-shard fan-out for multi-label `msearch`.
//!
//! Pair (k,s)-BCCs do **not** compose into the multi-label mBCC — the
//! cross-group connectivity constraint couples the label pairs, and a pair
//! that is infeasible in isolation can still participate in a feasible
//! mBCC through an intermediary group — so the scatter plan keeps one
//! *assembly* job (the full multi-label engine run, on the graph's home
//! shard) and fans the C(m,2) label-pair sub-queries out as concurrent
//! annotations: each pair result lands in the response's `pairs` section
//! (partial failure stays structured and per-pair, never a whole-request
//! failure) and warms exactly the cache slot a direct two-vertex `msearch`
//! of that pair would use.
//!
//! Determinism across shard counts is structural, not incidental: the plan
//! derives from the normalized (sorted, deduped) vertex list; cache probes
//! happen in plan order on the session thread at submit; gather collects
//! the assembly first, then the pairs in plan order; and sub-jobs never
//! insert into the cache from worker threads — all inserts replay in plan
//! order at gather. Response bytes, hit/miss counts, and LRU recency are
//! therefore identical whether one shard or many executed the work.

use std::sync::Arc;
use std::time::Instant;

use bcc_graph::VertexId;

use crate::pool::Ticket;
use crate::registry::GraphEntry;
use crate::request::{CacheKey, ErrorKind, Method, RequestError};
use crate::response::QueryOutcome;

/// A scattered msearch in flight: the assembly ticket plus one
/// [`PairJob`] per label pair, gathered by `BccService::wait`.
pub struct ScatterWait {
    pub(crate) seq: u64,
    pub(crate) graph: String,
    pub(crate) method: Method,
    /// The snapshot the scatter was planned against — gather-side retries
    /// re-execute against *this* entry, never a registry re-fetch, so a
    /// mid-flight commit can't mix generations into one response.
    pub(crate) entry: Arc<GraphEntry>,
    /// The parent request's absolute deadline — inherited by every
    /// sub-query wait.
    pub(crate) deadline: Option<Instant>,
    pub(crate) started: Instant,
    /// The full multi-vertex cache key (the gather-side insert target).
    pub(crate) key: CacheKey,
    /// The monolithic mBCC run; its outcome is the response body.
    pub(crate) assembly: Ticket<Result<QueryOutcome, RequestError>>,
    /// Label-pair sub-queries in plan order.
    pub(crate) pairs: Vec<PairJob>,
}

/// One label-pair sub-query of a scattered msearch.
pub(crate) struct PairJob {
    /// Left query vertex id (`ql < qr`, normalized order).
    pub(crate) ql: u32,
    /// Right query vertex id.
    pub(crate) qr: u32,
    /// The pair's own cache key — identical to a direct two-vertex
    /// `msearch`'s key, so scatter and direct queries share slots.
    pub(crate) key: CacheKey,
    /// The shard the sub-query actually executed on (after any breaker
    /// reroute) — where gather records the outcome for breaker accounting.
    pub(crate) shard: usize,
    pub(crate) source: PairSource,
}

/// Where a pair sub-result comes from: the cache (probed at submit, on the
/// session thread, in plan order) or a worker ticket.
pub(crate) enum PairSource {
    Cached(Result<QueryOutcome, RequestError>),
    Miss(Ticket<Result<QueryOutcome, RequestError>>),
}

/// The deterministic scatter plan: every `i < j` pair of the normalized
/// (sorted by vertex id) query list, with each vertex's effective `k`
/// carried along.
pub(crate) fn pair_plan(
    vertices: &[VertexId],
    ks: &[u32],
) -> Vec<((VertexId, u32), (VertexId, u32))> {
    debug_assert_eq!(vertices.len(), ks.len());
    let mut plan = Vec::with_capacity(vertices.len() * (vertices.len() - 1) / 2);
    for i in 0..vertices.len() {
        for j in (i + 1)..vertices.len() {
            plan.push(((vertices[i], ks[i]), (vertices[j], ks[j])));
        }
    }
    plan
}

/// Whether an outcome may enter the result cache: successes and
/// *deterministic* search errors, never transient failures (timeouts,
/// lost workers) — retrying those must re-execute.
pub(crate) fn cacheable(outcome: &Result<QueryOutcome, RequestError>) -> bool {
    match outcome {
        Ok(_) => true,
        Err(err) => err.kind == ErrorKind::Search,
    }
}

/// A cache entry's weight for the size-aware eviction budget: the member
/// count it pins in memory (community plus any retained pair communities),
/// never zero so errors and empty results still occupy one unit.
pub(crate) fn outcome_weight(outcome: &Result<QueryOutcome, RequestError>) -> usize {
    match outcome {
        Ok(o) => {
            let pair_members: usize = o
                .pairs
                .iter()
                .map(|p| p.result.as_ref().map_or(0, Vec::len))
                .sum();
            (o.community.len() + pair_members).max(1)
        }
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(community: Vec<u32>) -> QueryOutcome {
        QueryOutcome {
            community,
            query_distance: 1,
            iterations: 1,
            leaders: vec![0],
            ks: vec![2, 2],
            b: 1,
            pairs: Vec::new(),
        }
    }

    #[test]
    fn plan_enumerates_sorted_pairs_in_order() {
        let vs = [VertexId(1), VertexId(4), VertexId(9)];
        let ks = [2, 3, 5];
        let plan = pair_plan(&vs, &ks);
        assert_eq!(
            plan,
            vec![
                ((VertexId(1), 2), (VertexId(4), 3)),
                ((VertexId(1), 2), (VertexId(9), 5)),
                ((VertexId(4), 3), (VertexId(9), 5)),
            ]
        );
        assert_eq!(pair_plan(&vs[..2], &ks[..2]).len(), 1);
    }

    #[test]
    fn only_search_outcomes_are_cacheable() {
        assert!(cacheable(&Ok(outcome(vec![1, 2]))));
        assert!(cacheable(&Err(RequestError {
            kind: ErrorKind::Search,
            message: "no candidate".into(),
        })));
        for kind in [ErrorKind::Timeout, ErrorKind::Internal, ErrorKind::Resolve] {
            assert!(!cacheable(&Err(RequestError { kind, message: "x".into() })));
        }
    }

    #[test]
    fn weight_counts_community_and_pair_members() {
        assert_eq!(outcome_weight(&Ok(outcome(vec![1, 2, 3]))), 3);
        let mut with_pairs = outcome(vec![1, 2, 3]);
        with_pairs.pairs = vec![
            crate::response::PairOutcome { ql: 1, qr: 2, result: Ok(vec![7, 8]) },
            crate::response::PairOutcome {
                ql: 1,
                qr: 3,
                result: Err(RequestError { kind: ErrorKind::Search, message: "x".into() }),
            },
        ];
        assert_eq!(outcome_weight(&Ok(with_pairs)), 5);
        // Never zero: errors and empty communities still cost one unit.
        assert_eq!(outcome_weight(&Ok(outcome(Vec::new()))), 1);
        assert_eq!(
            outcome_weight(&Err(RequestError {
                kind: ErrorKind::Search,
                message: "x".into()
            })),
            1
        );
    }
}
