//! The line-oriented request protocol and its (panic-free) parser.
//!
//! One request per line, `key=value` tokens after the verb:
//!
//! ```text
//! search  ql=<name|id> qr=<name|id> [k1=N] [k2=N] [b=N]
//!         [method=online|lp|l2p] [graph=NAME] [timeout_ms=N]
//!         [priority=low|normal|high]
//! msearch q=<name|id>,<name|id>[,...] [k=N] [b=N]
//!         [method=online|lp|l2p] [graph=NAME] [timeout_ms=N]
//!         [priority=low|normal|high]
//! add_edge    u=<name|id> v=<name|id> [graph=NAME]
//! remove_edge u=<name|id> v=<name|id> [graph=NAME]
//! commit  [graph=NAME]
//! shard   list | assign <graph> <id>
//! stats
//! graphs
//! quit
//! shutdown
//! ```
//!
//! `add_edge`/`remove_edge` *stage* validated edge changes against a named
//! snapshot; `commit` applies the staged batch, patching the BCindex in
//! place and invalidating only the affected result-cache entries (see
//! [`crate::registry`]).
//!
//! Blank lines and `#` comments are ignored. Every malformed line maps to a
//! structured [`RequestError`] — the parser never panics (enforced by a
//! property test fuzzing arbitrary byte soup).

use bcc_core::MultiStrategy;
use bcc_graph::VertexId;

/// Which searcher executes a request. For multi-label requests the three
/// variants map onto [`MultiStrategy`] (`Online`, `LeaderPair`, `Local`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Algorithm 1 (online greedy).
    Online,
    /// Algorithms 5–7 (leader pairs + fast distances). The default.
    Lp,
    /// Algorithm 8 (index-based local search) — forces the index build.
    L2p,
}

impl Method {
    /// Protocol token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Online => "online",
            Method::Lp => "lp",
            Method::L2p => "l2p",
        }
    }

    /// The multi-label strategy this method selects.
    pub fn multi_strategy(&self) -> MultiStrategy {
        match self {
            Method::Online => MultiStrategy::Online,
            Method::Lp => MultiStrategy::LeaderPair,
            Method::L2p => MultiStrategy::Local {
                eta: 2048,
                weights: Default::default(),
            },
        }
    }

    fn parse(token: &str) -> Result<Method, RequestError> {
        match token {
            "online" => Ok(Method::Online),
            "lp" => Ok(Method::Lp),
            "l2p" => Ok(Method::L2p),
            other => Err(RequestError::parse(format!(
                "unknown method `{other}` (expected online|lp|l2p)"
            ))),
        }
    }
}

/// Admission priority of a request. Priorities only matter where requests
/// compete for execution — the TCP front-end's admission queue dispatches
/// higher priorities first (fairness and FIFO break ties). The sequential
/// `serve`/`batch` paths accept the key and ignore it, so a line's output
/// bytes never depend on its priority.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Dispatched only when nothing more urgent waits.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Dispatched ahead of normal/low traffic.
    High,
}

impl Priority {
    /// Protocol token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    fn parse(token: &str) -> Result<Priority, RequestError> {
        match token {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(RequestError::parse(format!(
                "unknown priority `{other}` (expected low|normal|high)"
            ))),
        }
    }
}

/// A parsed query request: the two-label pair form or the m-label form.
/// Vertex tokens stay unresolved strings — resolution needs the graph and
/// happens in the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Registry key; `None` = the service's default graph.
    pub graph: Option<String>,
    /// Pair or multi query.
    pub kind: QueryKind,
    /// Searcher selection.
    pub method: Method,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Admission priority (TCP front-end only; see [`Priority`]).
    pub priority: Priority,
}

/// The query shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// `search`: a `{q_l, q_r}` pair with optional `(k1, k2, b)` overrides
    /// (defaults: the paper's auto parameterization — query coreness, b=1).
    Pair {
        /// Left query vertex token.
        ql: String,
        /// Right query vertex token.
        qr: String,
        /// `k1` override.
        k1: Option<u32>,
        /// `k2` override.
        k2: Option<u32>,
        /// `b` override.
        b: Option<u64>,
    },
    /// `msearch`: `m ≥ 2` query vertices with a uniform `k` override.
    Multi {
        /// Query vertex tokens.
        qs: Vec<String>,
        /// Uniform `k` override for every label group.
        k: Option<u32>,
        /// `b` override.
        b: Option<u64>,
    },
}

/// A parsed mutation line: stage an edge change or commit the staged batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateRequest {
    /// Registry key; `None` = the service's default graph.
    pub graph: Option<String>,
    /// What to do.
    pub op: MutateOp,
}

/// The three mutation verbs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutateOp {
    /// Stage the insertion of edge `{u, v}` (unresolved vertex tokens).
    AddEdge {
        /// One endpoint token.
        u: String,
        /// The other endpoint token.
        v: String,
    },
    /// Stage the removal of edge `{u, v}`.
    RemoveEdge {
        /// One endpoint token.
        u: String,
        /// The other endpoint token.
        v: String,
    },
    /// Apply every staged change: patch the snapshot + index, invalidate
    /// affected cache entries.
    Commit,
}

impl MutateOp {
    /// Protocol verb, echoed back in the response's `"op"` field.
    pub fn verb(&self) -> &'static str {
        match self {
            MutateOp::AddEdge { .. } => "add_edge",
            MutateOp::RemoveEdge { .. } => "remove_edge",
            MutateOp::Commit => "commit",
        }
    }
}

/// A placement command: inspect or change the graph → shard routing
/// table (see [`crate::placement::ShardMap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardCmd {
    /// `shard list` — emit the shard topology and routing table.
    List,
    /// `shard assign <graph> <id>` — pin `graph` to shard `id`.
    Assign {
        /// Registry key to pin.
        graph: String,
        /// Target shard id.
        shard: usize,
    },
}

/// One protocol line, parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedLine {
    /// A query to execute.
    Request(QueryRequest),
    /// A mutation: stage an edge change or commit the staged batch.
    Mutate(MutateRequest),
    /// `stats` — emit a [`crate::service::ServiceStats`] JSON line.
    Stats,
    /// `graphs` — list registry keys.
    Graphs,
    /// `metrics` — emit the full [`crate::metrics::Metrics`] snapshot as one
    /// deterministic JSON line.
    Metrics,
    /// `shard list` / `shard assign <graph> <id>` — placement inspection
    /// and control.
    Shard(ShardCmd),
    /// `quit` — end the session. Over TCP this closes only the issuing
    /// connection; in `bcc serve` (one stdin session) it ends the process.
    Quit,
    /// `shutdown` — stop serving entirely. The TCP server closes every
    /// session and stops accepting; in `bcc serve`/`bcc batch` there is
    /// only one session, so it degenerates to [`ParsedLine::Quit`].
    Shutdown,
    /// Blank line or comment — produce no output.
    Empty,
}

/// Error category, mirrored into the response `"error"` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line did not parse.
    Parse,
    /// A vertex token or graph name did not resolve.
    Resolve,
    /// The search itself failed (`SearchError`).
    Search,
    /// A mutation could not be staged or committed (invalid edge change,
    /// nothing staged, snapshot replaced mid-stage).
    Mutate,
    /// The per-request deadline expired.
    Timeout,
    /// The worker executing the request died.
    Internal,
}

impl ErrorKind {
    /// Protocol token for the `"error"` field.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Resolve => "resolve",
            ErrorKind::Search => "search",
            ErrorKind::Mutate => "mutate",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A structured request/serving error: category + human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// Category.
    pub kind: ErrorKind,
    /// What went wrong.
    pub message: String,
}

impl RequestError {
    /// A parse-category error.
    pub fn parse(message: impl Into<String>) -> Self {
        RequestError { kind: ErrorKind::Parse, message: message.into() }
    }

    /// A resolve-category error.
    pub fn resolve(message: impl Into<String>) -> Self {
        RequestError { kind: ErrorKind::Resolve, message: message.into() }
    }

    /// A mutate-category error.
    pub fn mutate(message: impl Into<String>) -> Self {
        RequestError { kind: ErrorKind::Mutate, message: message.into() }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for RequestError {}

/// Parses one protocol line. Never panics, whatever the input.
pub fn parse_line(line: &str) -> Result<ParsedLine, RequestError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(ParsedLine::Empty);
    }
    let mut tokens = line.split_whitespace();
    let Some(verb) = tokens.next() else {
        return Ok(ParsedLine::Empty);
    };
    let rest: Vec<&str> = tokens.collect();
    match verb {
        "stats" => expect_bare(verb, &rest, ParsedLine::Stats),
        "graphs" => expect_bare(verb, &rest, ParsedLine::Graphs),
        "metrics" => expect_bare(verb, &rest, ParsedLine::Metrics),
        "quit" | "exit" => expect_bare(verb, &rest, ParsedLine::Quit),
        "shutdown" => expect_bare(verb, &rest, ParsedLine::Shutdown),
        "search" => parse_search(&rest).map(ParsedLine::Request),
        "msearch" => parse_msearch(&rest).map(ParsedLine::Request),
        "add_edge" => parse_edge_mutation(&rest, true).map(ParsedLine::Mutate),
        "remove_edge" => parse_edge_mutation(&rest, false).map(ParsedLine::Mutate),
        "commit" => parse_commit(&rest).map(ParsedLine::Mutate),
        "shard" => parse_shard(&rest).map(ParsedLine::Shard),
        other => Err(RequestError::parse(format!(
            "unknown verb `{other}` (expected search|msearch|add_edge|remove_edge|commit|\
             stats|graphs|metrics|shard|quit|shutdown)"
        ))),
    }
}

fn expect_bare(
    verb: &str,
    rest: &[&str],
    parsed: ParsedLine,
) -> Result<ParsedLine, RequestError> {
    if rest.is_empty() {
        Ok(parsed)
    } else {
        Err(RequestError::parse(format!("`{verb}` takes no arguments")))
    }
}

/// Splits `key=value` tokens, rejecting duplicates and bare words.
struct KeyValues<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> KeyValues<'a> {
    fn parse(tokens: &[&'a str]) -> Result<Self, RequestError> {
        let mut pairs: Vec<(&str, &str)> = Vec::with_capacity(tokens.len());
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(RequestError::parse(format!(
                    "expected key=value, got `{token}`"
                )));
            };
            if key.is_empty() || value.is_empty() {
                return Err(RequestError::parse(format!(
                    "empty key or value in `{token}`"
                )));
            }
            if pairs.iter().any(|&(k, _)| k == key) {
                return Err(RequestError::parse(format!("duplicate key `{key}`")));
            }
            pairs.push((key, value));
        }
        Ok(KeyValues { pairs })
    }

    fn take(&mut self, key: &str) -> Option<&'a str> {
        let idx = self.pairs.iter().position(|&(k, _)| k == key)?;
        Some(self.pairs.swap_remove(idx).1)
    }

    fn take_num<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, RequestError> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                RequestError::parse(format!("`{key}` must be a non-negative integer, got `{raw}`"))
            }),
        }
    }

    fn finish(self) -> Result<(), RequestError> {
        match self.pairs.first() {
            None => Ok(()),
            Some((key, _)) => Err(RequestError::parse(format!("unknown key `{key}`"))),
        }
    }
}

fn take_common(
    kv: &mut KeyValues<'_>,
) -> Result<(Option<String>, Method, Option<u64>, Priority), RequestError> {
    let graph = kv.take("graph").map(str::to_owned);
    let method = match kv.take("method") {
        Some(token) => Method::parse(token)?,
        None => Method::Lp,
    };
    let timeout_ms = kv.take_num::<u64>("timeout_ms")?;
    let priority = match kv.take("priority") {
        Some(token) => Priority::parse(token)?,
        None => Priority::Normal,
    };
    Ok((graph, method, timeout_ms, priority))
}

fn parse_search(tokens: &[&str]) -> Result<QueryRequest, RequestError> {
    let mut kv = KeyValues::parse(tokens)?;
    let ql = kv
        .take("ql")
        .ok_or_else(|| RequestError::parse("`search` requires ql=<vertex>"))?
        .to_owned();
    let qr = kv
        .take("qr")
        .ok_or_else(|| RequestError::parse("`search` requires qr=<vertex>"))?
        .to_owned();
    let k1 = kv.take_num::<u32>("k1")?;
    let k2 = kv.take_num::<u32>("k2")?;
    let b = kv.take_num::<u64>("b")?;
    let (graph, method, timeout_ms, priority) = take_common(&mut kv)?;
    kv.finish()?;
    Ok(QueryRequest {
        graph,
        kind: QueryKind::Pair { ql, qr, k1, k2, b },
        method,
        timeout_ms,
        priority,
    })
}

fn parse_edge_mutation(tokens: &[&str], insert: bool) -> Result<MutateRequest, RequestError> {
    let verb = if insert { "add_edge" } else { "remove_edge" };
    let mut kv = KeyValues::parse(tokens)?;
    let u = kv
        .take("u")
        .ok_or_else(|| RequestError::parse(format!("`{verb}` requires u=<vertex>")))?
        .to_owned();
    let v = kv
        .take("v")
        .ok_or_else(|| RequestError::parse(format!("`{verb}` requires v=<vertex>")))?
        .to_owned();
    let graph = kv.take("graph").map(str::to_owned);
    kv.finish()?;
    let op = if insert {
        MutateOp::AddEdge { u, v }
    } else {
        MutateOp::RemoveEdge { u, v }
    };
    Ok(MutateRequest { graph, op })
}

fn parse_shard(tokens: &[&str]) -> Result<ShardCmd, RequestError> {
    match tokens {
        ["list"] => Ok(ShardCmd::List),
        ["assign", graph, id] => {
            let shard = id.parse().map_err(|_| {
                RequestError::parse(format!(
                    "shard id must be a non-negative integer, got `{id}`"
                ))
            })?;
            Ok(ShardCmd::Assign { graph: (*graph).to_owned(), shard })
        }
        _ => Err(RequestError::parse(
            "`shard` expects `shard list` or `shard assign <graph> <id>`",
        )),
    }
}

fn parse_commit(tokens: &[&str]) -> Result<MutateRequest, RequestError> {
    let mut kv = KeyValues::parse(tokens)?;
    let graph = kv.take("graph").map(str::to_owned);
    kv.finish()?;
    Ok(MutateRequest { graph, op: MutateOp::Commit })
}

fn parse_msearch(tokens: &[&str]) -> Result<QueryRequest, RequestError> {
    let mut kv = KeyValues::parse(tokens)?;
    let qs_raw = kv
        .take("q")
        .ok_or_else(|| RequestError::parse("`msearch` requires q=<v1>,<v2>[,...]"))?;
    let qs: Vec<String> = qs_raw
        .split(',')
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect();
    if qs.len() < 2 {
        return Err(RequestError::parse(
            "`msearch` needs at least two comma-separated query vertices",
        ));
    }
    let k = kv.take_num::<u32>("k")?;
    let b = kv.take_num::<u64>("b")?;
    let (graph, method, timeout_ms, priority) = take_common(&mut kv)?;
    kv.finish()?;
    Ok(QueryRequest {
        graph,
        kind: QueryKind::Multi { qs, k, b },
        method,
        timeout_ms,
        priority,
    })
}

/// A resolved, normalized cache key: `(snapshot generation, method, query
/// vertices with their effective k's, b)`.
///
/// Normalization makes symmetric requests share a slot: the pair
/// `{q_l, q_r}` with `(k1, k2)` and `{q_r, q_l}` with `(k2, k1)` describe
/// the same community, so `(vertex, k)` tuples are sorted by vertex id (the
/// same rule generalizes to m-label queries, whose searcher treats the
/// query set symmetrically up to leader ordering).
///
/// The key carries the entry's process-unique *generation*, not its name:
/// re-registering a graph under an existing name gets a fresh generation,
/// so results computed on the replaced snapshot can never be served for
/// the new one (they stop matching and age out of the LRU).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Process-unique snapshot id ([`crate::GraphEntry::generation`]).
    pub generation: u64,
    /// Searcher.
    pub method: Method,
    /// True for msearch requests (a 2-vertex msearch runs Algorithm 9, not
    /// the pair searcher, so the two must not share cache slots).
    pub multi: bool,
    /// `(vertex, k)` pairs sorted by vertex id.
    pub vertex_ks: Vec<(u32, u32)>,
    /// Butterfly threshold.
    pub b: u64,
}

impl CacheKey {
    /// Builds the normalized key from resolved vertices and effective
    /// per-vertex core parameters (aligned slices).
    pub fn normalized(
        generation: u64,
        method: Method,
        multi: bool,
        vertices: &[VertexId],
        ks: &[u32],
        b: u64,
    ) -> Self {
        debug_assert_eq!(vertices.len(), ks.len());
        let mut vertex_ks: Vec<(u32, u32)> = vertices
            .iter()
            .zip(ks)
            .map(|(v, &k)| (v.0, k))
            .collect();
        vertex_ks.sort_unstable();
        CacheKey {
            generation,
            method,
            multi,
            vertex_ks,
            b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_search() {
        let parsed = parse_line("search ql=alice qr=bob").unwrap();
        let ParsedLine::Request(req) = parsed else { panic!("not a request") };
        assert_eq!(req.method, Method::Lp);
        assert_eq!(req.graph, None);
        assert_eq!(req.timeout_ms, None);
        assert_eq!(
            req.kind,
            QueryKind::Pair {
                ql: "alice".into(),
                qr: "bob".into(),
                k1: None,
                k2: None,
                b: None
            }
        );
    }

    #[test]
    fn parses_full_search() {
        let line = "search ql=0 qr=7 k1=3 k2=2 b=2 method=l2p graph=g timeout_ms=500";
        let ParsedLine::Request(req) = parse_line(line).unwrap() else { panic!() };
        assert_eq!(req.method, Method::L2p);
        assert_eq!(req.graph.as_deref(), Some("g"));
        assert_eq!(req.timeout_ms, Some(500));
        assert_eq!(
            req.kind,
            QueryKind::Pair {
                ql: "0".into(),
                qr: "7".into(),
                k1: Some(3),
                k2: Some(2),
                b: Some(2)
            }
        );
    }

    #[test]
    fn parses_msearch() {
        let ParsedLine::Request(req) =
            parse_line("msearch q=a,b,c k=2 method=online").unwrap()
        else {
            panic!()
        };
        assert_eq!(req.method, Method::Online);
        assert_eq!(
            req.kind,
            QueryKind::Multi {
                qs: vec!["a".into(), "b".into(), "c".into()],
                k: Some(2),
                b: None
            }
        );
    }

    #[test]
    fn parses_mutations() {
        let ParsedLine::Mutate(add) = parse_line("add_edge u=alice v=bob").unwrap() else {
            panic!()
        };
        assert_eq!(add.graph, None);
        assert_eq!(add.op, MutateOp::AddEdge { u: "alice".into(), v: "bob".into() });
        assert_eq!(add.op.verb(), "add_edge");

        let ParsedLine::Mutate(rm) = parse_line("remove_edge u=0 v=7 graph=g").unwrap() else {
            panic!()
        };
        assert_eq!(rm.graph.as_deref(), Some("g"));
        assert_eq!(rm.op, MutateOp::RemoveEdge { u: "0".into(), v: "7".into() });

        let ParsedLine::Mutate(commit) = parse_line("commit").unwrap() else { panic!() };
        assert_eq!(commit.op, MutateOp::Commit);
        let ParsedLine::Mutate(commit) = parse_line("commit graph=g").unwrap() else {
            panic!()
        };
        assert_eq!(commit.graph.as_deref(), Some("g"));
    }

    #[test]
    fn mutation_parse_errors_are_structured() {
        for (line, needle) in [
            ("add_edge u=a", "requires v="),
            ("add_edge v=a", "requires u="),
            ("remove_edge u=a v=b bogus=1", "unknown key"),
            ("remove_edge u=a v=b u=c", "duplicate key"),
            ("commit now", "key=value"),
            ("commit k=3", "unknown key"),
        ] {
            let err = parse_line(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Parse, "line: {line}");
            assert!(err.message.contains(needle), "line `{line}`: {}", err.message);
        }
    }

    #[test]
    fn control_lines_and_comments() {
        assert_eq!(parse_line("stats").unwrap(), ParsedLine::Stats);
        assert_eq!(parse_line("graphs").unwrap(), ParsedLine::Graphs);
        assert_eq!(parse_line("metrics").unwrap(), ParsedLine::Metrics);
        assert_eq!(parse_line("quit").unwrap(), ParsedLine::Quit);
        assert_eq!(parse_line("exit").unwrap(), ParsedLine::Quit);
        assert_eq!(parse_line("shutdown").unwrap(), ParsedLine::Shutdown);
        assert_eq!(parse_line("").unwrap(), ParsedLine::Empty);
        assert_eq!(parse_line("   ").unwrap(), ParsedLine::Empty);
        assert_eq!(parse_line("# a comment").unwrap(), ParsedLine::Empty);
    }

    #[test]
    fn parses_shard_commands() {
        assert_eq!(parse_line("shard list").unwrap(), ParsedLine::Shard(ShardCmd::List));
        assert_eq!(
            parse_line("shard assign dblp 2").unwrap(),
            ParsedLine::Shard(ShardCmd::Assign { graph: "dblp".into(), shard: 2 })
        );
        for (line, needle) in [
            ("shard", "shard list"),
            ("shard drop g", "shard list"),
            ("shard assign g", "shard list"),
            ("shard assign g two", "non-negative integer"),
            ("shard list extra", "shard list"),
        ] {
            let err = parse_line(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Parse, "line: {line}");
            assert!(err.message.contains(needle), "line `{line}`: {}", err.message);
        }
    }

    #[test]
    fn parses_priority() {
        let ParsedLine::Request(req) = parse_line("search ql=a qr=b").unwrap() else {
            panic!()
        };
        assert_eq!(req.priority, Priority::Normal);
        let ParsedLine::Request(req) =
            parse_line("search ql=a qr=b priority=high").unwrap()
        else {
            panic!()
        };
        assert_eq!(req.priority, Priority::High);
        let ParsedLine::Request(req) = parse_line("msearch q=a,b priority=low").unwrap()
        else {
            panic!()
        };
        assert_eq!(req.priority, Priority::Low);
        assert!(Priority::High > Priority::Normal && Priority::Normal > Priority::Low);
        let err = parse_line("search ql=a qr=b priority=urgent").unwrap_err();
        assert!(err.message.contains("unknown priority"), "{}", err.message);
        let err = parse_line("shutdown now").unwrap_err();
        assert!(err.message.contains("takes no arguments"), "{}", err.message);
    }

    #[test]
    fn structured_errors() {
        for (line, needle) in [
            ("frobnicate x=1", "unknown verb"),
            ("search ql=a", "requires qr="),
            ("search qr=a", "requires ql="),
            ("search ql=a qr=b k1=potato", "non-negative integer"),
            ("search ql=a qr=b method=quantum", "unknown method"),
            ("search ql=a qr=b ql=c", "duplicate key"),
            ("search ql=a qr=b bogus=1", "unknown key"),
            ("search ql=a qr=b naked", "key=value"),
            ("search ql=", "empty key or value"),
            ("msearch q=a", "at least two"),
            ("msearch q=a,b k=-3", "non-negative integer"),
            ("stats now", "takes no arguments"),
        ] {
            let err = parse_line(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Parse, "line: {line}");
            assert!(
                err.message.contains(needle),
                "line `{line}`: message `{}` missing `{needle}`",
                err.message
            );
        }
    }

    #[test]
    fn cache_key_symmetric_normalization() {
        let a = CacheKey::normalized(
            7,
            Method::Lp,
            false,
            &[VertexId(3), VertexId(9)],
            &[4, 2],
            1,
        );
        let b = CacheKey::normalized(
            7,
            Method::Lp,
            false,
            &[VertexId(9), VertexId(3)],
            &[2, 4],
            1,
        );
        assert_eq!(a, b, "swapped pair with swapped k's is the same key");
        let c = CacheKey::normalized(
            7,
            Method::Lp,
            false,
            &[VertexId(9), VertexId(3)],
            &[4, 2],
            1,
        );
        assert_ne!(a, c, "different k assignment is a different key");
        let d = CacheKey::normalized(
            7,
            Method::Lp,
            true,
            &[VertexId(3), VertexId(9)],
            &[4, 2],
            1,
        );
        assert_ne!(a, d, "msearch and search never share slots");
    }

    #[test]
    fn error_display() {
        let err = RequestError::parse("nope");
        assert_eq!(err.to_string(), "parse: nope");
    }
}
