//! Per-connection sessions: one state machine between a byte stream and
//! the [`BccService`].
//!
//! A [`Session`] owns everything connection-scoped: its id, the negotiated
//! [`Codec`], per-session defaults (graph, deadline inheritance), and the
//! response sequence numbering. It drives the same line protocol as
//! `process_line` — the service stays transport-agnostic; only the session
//! knows where the bytes come from.
//!
//! Two sequencing policies cover the two transports:
//!
//! * [`SeqPolicy::Service`] — the historical `bcc serve` semantics: global
//!   service-wide sequence numbers, `shutdown` equals `quit` (there is
//!   exactly one session). `BccService::run_session` is a session in this
//!   mode, byte-identical to the pre-refactor loop.
//! * [`SeqPolicy::PerSession`] — TCP semantics: `seq` is the session-local
//!   output index, exactly the numbering [`BccService::run_batch`] emits,
//!   so one client's responses over the wire are byte-identical to running
//!   its lines as a batch. `quit` ends only this session; `shutdown` asks
//!   the server to close every session.
//!
//! Teardown is graceful by construction: a session executes one request at
//! a time and waits for its pool ticket inline, so by the time `run`
//! returns — `quit`, EOF, protocol error, or the server shutting the
//! socket down — it holds no in-flight tickets.

use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use crate::codec::{codec_for, Codec, CodecError, CodecKind};
use crate::fault::{panic_message, FaultSite};
use crate::request::{parse_line, Method, ParsedLine, QueryRequest, RequestError};
use crate::response::QueryResponse;
use crate::server::{Admission, AdmitError};
use crate::service::{BccService, LineOutcome};

/// How a session numbers its responses (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqPolicy {
    /// Global service-wide numbering; `shutdown` ≡ `quit` (`bcc serve`).
    Service,
    /// Session-local output-index numbering (`run_batch` semantics); the
    /// TCP transport.
    PerSession,
}

/// Why a session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The peer closed its side at a payload boundary.
    Eof,
    /// A `quit` line: close this session only.
    Quit,
    /// A `shutdown` line: the caller (the TCP server) should close every
    /// session and stop accepting.
    Shutdown,
    /// The peer violated the framing protocol; a structured error was sent
    /// and the connection must close.
    Protocol,
}

/// Connection-scoped settings for a [`SeqPolicy::PerSession`] session.
#[derive(Clone, Debug, Default)]
pub struct SessionConfig {
    /// Session id (connection counter; used for admission fairness).
    pub id: u64,
    /// Default graph for requests naming none (`None` ⇒ the service
    /// default applies downstream).
    pub default_graph: Option<String>,
    /// Deadline inherited by requests carrying no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
}

/// One connection's state machine. Generic over the byte stream; the codec
/// is negotiated from the stream's first byte in [`Session::run`].
pub struct Session<'s> {
    service: &'s BccService,
    policy: SeqPolicy,
    config: SessionConfig,
    /// One admission gate per shard (index = shard id); a query's gate is
    /// picked by routing its graph through the service's [`ShardMap`], so
    /// load on one shard never blocks admission to another.
    gates: Option<&'s [Admission]>,
    /// Responses emitted so far — the next per-session seq.
    emitted: u64,
}

/// What one payload produced.
enum Step {
    Output(String),
    Silent,
    End(SessionEnd),
}

impl<'s> Session<'s> {
    /// The `bcc serve` session: global seq, no admission gate.
    pub fn service_mode(service: &'s BccService) -> Self {
        Session {
            service,
            policy: SeqPolicy::Service,
            config: SessionConfig::default(),
            gates: None,
            emitted: 0,
        }
    }

    /// A TCP connection's session.
    pub fn for_connection(service: &'s BccService, config: SessionConfig) -> Self {
        Session {
            service,
            policy: SeqPolicy::PerSession,
            config,
            gates: None,
            emitted: 0,
        }
    }

    /// Routes this session's query dispatches through per-shard admission
    /// gates (`gates[i]` guards shard `i`; must be non-empty).
    pub fn with_gates(mut self, gates: &'s [Admission]) -> Self {
        debug_assert!(!gates.is_empty());
        self.gates = Some(gates);
        self
    }

    /// Runs the session to completion: negotiate the codec off the first
    /// byte, then one response per request payload until the peer quits,
    /// disconnects, or breaks the framing protocol. `Err` is an I/O
    /// failure of the underlying stream (for TCP, a routine disconnect).
    pub fn run<R: BufRead, W: Write>(
        &mut self,
        mut reader: R,
        mut writer: W,
    ) -> io::Result<SessionEnd> {
        let first = loop {
            match reader.fill_buf() {
                Ok([]) => return Ok(SessionEnd::Eof),
                Ok(buf) => break buf[0],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let codec = codec_for(CodecKind::negotiate(first));
        let transport = self.service.transport();
        loop {
            match codec.read_request(&mut reader) {
                Ok(None) => return Ok(SessionEnd::Eof),
                Ok(Some((payload, wire_bytes))) => {
                    transport.bytes_in.fetch_add(wire_bytes, Ordering::Relaxed);
                    match self.step_contained(&payload) {
                        Step::Silent => {}
                        Step::Output(line) => self.emit(&*codec, &mut writer, &line)?,
                        Step::End(end) => return Ok(end),
                    }
                }
                Err(CodecError::Protocol(message)) => {
                    // Structured error out (best effort — the peer may
                    // already be gone), then close: framing violations are
                    // not recoverable mid-stream.
                    let line =
                        session_error_json(Some(self.emitted), "framing", &message);
                    let _ = self.emit(&*codec, &mut writer, &line);
                    return Ok(SessionEnd::Protocol);
                }
                Err(CodecError::Io(e)) => return Err(e),
            }
        }
    }

    /// [`Self::step`] under panic containment: a panic while processing
    /// one request — injected, or a real bug anywhere in the dispatch
    /// path — becomes a structured internal error on this session's
    /// stream, and the session keeps serving subsequent requests. The
    /// `codec_decode` fault site fires here too, between framing and
    /// dispatch, inside the containment so its panic action is also
    /// survivable.
    fn step_contained(&mut self, payload: &str) -> Step {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.service.fault_plan().perturb(FaultSite::CodecDecode) {
                return Step::Output(session_error_json(
                    Some(self.emitted),
                    "internal",
                    "injected fault at codec_decode",
                ));
            }
            self.step(payload)
        }));
        match result {
            Ok(step) => step,
            Err(cause) => Step::Output(session_error_json(
                Some(self.emitted),
                "internal",
                &format!("request processing panicked: {}", panic_message(cause.as_ref())),
            )),
        }
    }

    /// Processes one request payload.
    fn step(&mut self, payload: &str) -> Step {
        if self.policy == SeqPolicy::Service {
            // Delegate wholesale: `process_line` already implements the
            // single-session semantics (global seq, shutdown ≡ quit) and
            // keeps `bcc serve` byte-identical.
            return match self.service.process_line(payload) {
                LineOutcome::Output(line) => Step::Output(line),
                LineOutcome::Quit => Step::End(SessionEnd::Quit),
                LineOutcome::Silent => Step::Silent,
            };
        }
        match parse_line(payload) {
            Ok(ParsedLine::Empty) => Step::Silent,
            Ok(ParsedLine::Quit) => Step::End(SessionEnd::Quit),
            Ok(ParsedLine::Shutdown) => Step::End(SessionEnd::Shutdown),
            Ok(ParsedLine::Stats) => Step::Output(self.service.stats_json()),
            Ok(ParsedLine::Graphs) => Step::Output(self.service.graphs_json()),
            Ok(ParsedLine::Metrics) => Step::Output(self.service.metrics_json()),
            Ok(ParsedLine::Shard(cmd)) => Step::Output(self.service.shard_json(cmd)),
            Ok(ParsedLine::Mutate(mut request)) => {
                if request.graph.is_none() {
                    request.graph = self.config.default_graph.clone();
                }
                Step::Output(self.service.handle_mutate(request).to_json())
            }
            Ok(ParsedLine::Request(mut request)) => {
                if request.graph.is_none() {
                    request.graph = self.config.default_graph.clone();
                }
                if request.timeout_ms.is_none() {
                    request.timeout_ms = self.config.default_timeout_ms;
                }
                Step::Output(self.dispatch_query(request))
            }
            Err(err) => {
                // Count the failure on the service (its global seq is not
                // used: this session numbers its own outputs).
                let _ = self.service.note_parse_error();
                Step::Output(
                    QueryResponse::error(self.emitted, "", Method::Lp, err).to_json(),
                )
            }
        }
    }

    /// Runs one query through its shard's admission gate (when gates are
    /// attached) and the service, with this session's output index as its
    /// seq. The gate is the one guarding the shard the request's graph
    /// routes to — admission pressure is per-shard, like the pools.
    fn dispatch_query(&self, request: QueryRequest) -> String {
        let seq = self.emitted;
        // The `admission` fault site: a synthetic gate rejection (or delay,
        // or panic — contained by `step_contained`) before any real gate
        // or pool work happens.
        if self.service.fault_plan().perturb(FaultSite::Admission) {
            return session_error_json(Some(seq), "overloaded", "injected fault at admission");
        }
        let Some(gates) = self.gates else {
            let mut response = self.service.handle(request);
            response.seq = seq;
            return response.to_json();
        };
        let shard = self.service.shard_for(request.graph.as_deref());
        let gate = &gates[shard.min(gates.len() - 1)];
        let deadline = request
            .timeout_ms
            .or(self.service.config().default_timeout_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let method = request.method;
        // Queue wait = time from asking the gate to holding a permit (or
        // being turned away) — the admission component of tail latency.
        let wait_started = Instant::now();
        let admitted = gate.admit(self.config.id, request.priority, deadline);
        self.service.metrics().record_queue_wait(wait_started.elapsed());
        match admitted {
            Ok(_permit) => {
                // The permit spans the whole submit + wait: the session
                // occupies one admission slot until its response is ready.
                let mut response = self.service.handle(request);
                response.seq = seq;
                response.to_json()
            }
            Err(AdmitError::Overloaded(message)) => {
                session_error_json(Some(seq), "overloaded", &message)
            }
            Err(AdmitError::DeadlineExpired) => QueryResponse::error(
                seq,
                "",
                method,
                RequestError {
                    kind: crate::request::ErrorKind::Timeout,
                    message: "deadline expired while waiting in the admission queue"
                        .into(),
                },
            )
            .to_json(),
        }
    }

    /// Writes one response payload, counting bytes and the output index.
    fn emit<W: Write>(
        &mut self,
        codec: &dyn Codec,
        writer: &mut W,
        line: &str,
    ) -> io::Result<()> {
        let wire_bytes = codec.write_response(writer, line)?;
        writer.flush()?;
        self.service
            .transport()
            .bytes_out
            .fetch_add(wire_bytes, Ordering::Relaxed);
        self.emitted += 1;
        Ok(())
    }
}

/// The session/transport-layer structured error line:
/// `{"ok":false,"seq":N,"error":{"kind":K,"message":M}}`. Unlike request
/// errors (whose flat `"error":"<kind>"` shape callers already parse),
/// these originate *outside* request processing — admission overload,
/// framing violations, connection-limit rejections — so the kind/message
/// pair nests under `"error"`.
pub fn session_error_json(seq: Option<u64>, kind: &str, message: &str) -> String {
    let mut out = String::with_capacity(64 + message.len());
    out.push_str("{\"ok\":false");
    if let Some(seq) = seq {
        out.push_str(",\"seq\":");
        out.push_str(&seq.to_string());
    }
    out.push_str(",\"error\":{\"kind\":");
    bcc_graph::json::push_json_string(&mut out, kind);
    out.push_str(",\"message\":");
    bcc_graph::json::push_json_string(&mut out, message);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_error_shape() {
        assert_eq!(
            session_error_json(Some(3), "overloaded", "queue full"),
            "{\"ok\":false,\"seq\":3,\"error\":{\"kind\":\"overloaded\",\
             \"message\":\"queue full\"}}"
        );
        assert_eq!(
            session_error_json(None, "framing", "x\"y"),
            "{\"ok\":false,\"error\":{\"kind\":\"framing\",\"message\":\"x\\\"y\"}}"
        );
    }
}
