//! An LRU result cache with hit/miss/eviction counters.
//!
//! The serving layer keys entries by the *normalized* query (see
//! [`crate::request`]), so symmetric requests — `{q_l, q_r}` vs
//! `{q_r, q_l}` with the core parameters swapped accordingly — share one
//! slot. The cache is a plain single-threaded structure; [`crate::service`]
//! wraps it in a `Mutex`, which is ample because entries are small (the
//! expensive part, the search, happens outside the lock).

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel for "no node" in the intrusive list.
const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list (the value of a
    /// removed entry is moved out to the caller).
    value: Option<V>,
    /// The entry's weight (community member count for result entries);
    /// only consulted when a weight cap is configured.
    weight: usize,
    prev: usize,
    next: usize,
}

/// Monotonic counters exposed through [`crate::service::ServiceStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries inserted (including overwrites of an existing key).
    pub insertions: u64,
}

/// A fixed-capacity least-recently-used map with optional size-aware
/// eviction.
///
/// `get` refreshes recency; `insert` evicts the least recently used entry
/// once `capacity` is exceeded. A capacity of 0 disables caching (every
/// lookup is a miss, every insert a no-op). When a non-zero *weight cap*
/// is configured (see [`LruCache::with_weight_cap`]), insertion
/// additionally evicts LRU entries until the total weight fits the cap —
/// communities vary ~100x in member count, and without a weight budget a
/// handful of giant communities can pin the whole cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    /// 0 = weight-based eviction disabled (count-capacity only).
    weight_cap: usize,
    /// Sum of live entry weights (only maintained for observability and
    /// the cap check; exact whether or not a cap is set).
    total_weight: usize,
    counters: CacheCounters,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self::with_weight_cap(capacity, 0)
    }

    /// Creates a cache holding at most `capacity` entries whose summed
    /// entry weight may not exceed `weight_cap` (0 = no weight budget,
    /// preserving plain count-based LRU behavior).
    pub fn with_weight_cap(capacity: usize, weight_cap: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1024)),
            nodes: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            weight_cap,
            total_weight: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured weight budget (0 = disabled).
    pub fn weight_cap(&self) -> usize {
        self.weight_cap
    }

    /// Sum of live entry weights.
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks `key` up, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.counters.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                self.nodes[idx].value.as_ref()
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&idx| self.nodes[idx].value.as_ref())
    }

    /// Inserts (or overwrites) `key` at weight 1, evicting the LRU entry
    /// on overflow.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 1);
    }

    /// Inserts (or overwrites) `key` with an explicit `weight`, evicting
    /// the LRU entry on count overflow and then — when a weight cap is
    /// configured — evicting LRU entries until the summed weight fits the
    /// cap. The newest entry is never evicted by its own weight: an
    /// oversized community still caches (and serves repeats) until the
    /// next insertion displaces it.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: usize) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.total_weight = self.total_weight - self.nodes[idx].weight + weight;
            self.nodes[idx].value = Some(value);
            self.nodes[idx].weight = weight;
            self.detach(idx);
            self.push_front(idx);
            self.counters.insertions += 1;
            self.enforce_weight_cap();
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] =
                    Node { key: key.clone(), value: Some(value), weight, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value: Some(value),
                    weight,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.total_weight += weight;
        self.counters.insertions += 1;
        self.enforce_weight_cap();
    }

    /// Drops the least recently used entry (capacity or weight pressure).
    fn evict_lru(&mut self) {
        let lru = self.tail;
        debug_assert_ne!(lru, NIL);
        self.detach(lru);
        self.map.remove(&self.nodes[lru].key);
        self.nodes[lru].value = None;
        self.total_weight -= self.nodes[lru].weight;
        self.nodes[lru].weight = 0;
        self.free.push(lru);
        self.counters.evictions += 1;
    }

    /// Evicts LRU entries while the weight budget is exceeded, always
    /// keeping at least the most recent entry alive.
    fn enforce_weight_cap(&mut self) {
        if self.weight_cap == 0 {
            return;
        }
        while self.total_weight > self.weight_cap && self.map.len() > 1 {
            self.evict_lru();
        }
    }

    /// Removes `key`, returning its value. Does not touch hit/miss/eviction
    /// counters: removal is an invalidation decision by the caller, not a
    /// lookup and not capacity pressure.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.total_weight -= self.nodes[idx].weight;
        self.nodes[idx].weight = 0;
        self.nodes[idx].value.take()
    }

    /// Every live key, least-recently-used first. The snapshot a commit
    /// walks to invalidate/rekey entries generation by generation;
    /// reinserting in this order keeps relative recency among the survivors.
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            keys.push(self.nodes[idx].key.clone());
            idx = self.nodes[idx].prev;
        }
        keys
    }

    /// Drops every entry (counters are preserved — they are lifetime
    /// totals).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.total_weight = 0;
    }

    /// Unlinks `idx` from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    /// Links `idx` as the most recently used entry.
    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_eviction_counters() {
        let mut cache: LruCache<u32, &str> = LruCache::new(2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one");
        cache.insert(2, "two");
        assert_eq!(cache.get(&1), Some(&"one"));
        cache.insert(3, "three"); // evicts 2 (LRU after the get refreshed 1)
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&3), Some(&"three"));
        let c = cache.counters();
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.insertions, 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // overwrite → 1 becomes MRU, nothing evicted
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.peek(&1), Some(&11));
        assert!(cache.peek(&2).is_none());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn lru_order_is_exact() {
        let mut cache: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            cache.insert(i, i);
        }
        cache.get(&0); // order (MRU→LRU): 0, 2, 1
        cache.insert(3, 3); // evicts 1
        cache.insert(4, 4); // evicts 2
        assert!(cache.peek(&1).is_none());
        assert!(cache.peek(&2).is_none());
        assert!(cache.peek(&0).is_some());
        assert!(cache.peek(&3).is_some());
        assert!(cache.peek(&4).is_some());
    }

    #[test]
    fn remove_frees_the_slot_without_counting() {
        let mut cache: LruCache<u32, String> = LruCache::new(2);
        cache.insert(1, "one".into());
        cache.insert(2, "two".into());
        assert_eq!(cache.remove(&1), Some("one".into()));
        assert_eq!(cache.remove(&1), None, "double remove is a no-op");
        assert_eq!(cache.len(), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (0, 0, 0));
        // The freed slot is reused: no third allocation, no eviction.
        cache.insert(3, "three".into());
        assert!(cache.nodes.len() <= 2);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.peek(&2), Some(&"two".into()));
        assert_eq!(cache.peek(&3), Some(&"three".into()));
    }

    #[test]
    fn keys_by_recency_walks_lru_to_mru() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            cache.insert(i, i);
        }
        cache.get(&1); // order (LRU→MRU): 0, 2, 3, 1
        assert_eq!(cache.keys_by_recency(), vec![0, 2, 3, 1]);
        cache.remove(&2);
        assert_eq!(cache.keys_by_recency(), vec![0, 3, 1]);
        let empty: LruCache<u32, u32> = LruCache::new(4);
        assert!(empty.keys_by_recency().is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 1);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn weight_cap_evicts_lru_until_budget_fits() {
        let mut cache: LruCache<u32, u32> = LruCache::with_weight_cap(8, 10);
        cache.insert_weighted(1, 1, 4);
        cache.insert_weighted(2, 2, 4);
        assert_eq!(cache.total_weight(), 8);
        // 4 + 4 + 5 = 13 > 10: the LRU entry (1) goes, not the newcomer.
        cache.insert_weighted(3, 3, 5);
        assert!(cache.peek(&1).is_none());
        assert_eq!(cache.peek(&2), Some(&2));
        assert_eq!(cache.peek(&3), Some(&3));
        assert_eq!(cache.total_weight(), 9);
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn oversized_entry_survives_until_displaced() {
        let mut cache: LruCache<u32, u32> = LruCache::with_weight_cap(8, 10);
        // A single entry above the cap still caches (len stays ≥ 1)...
        cache.insert_weighted(1, 1, 100);
        assert_eq!(cache.peek(&1), Some(&1));
        assert_eq!(cache.total_weight(), 100);
        // ...but the next insertion evicts it to restore the budget.
        cache.insert_weighted(2, 2, 3);
        assert!(cache.peek(&1).is_none());
        assert_eq!(cache.peek(&2), Some(&2));
        assert_eq!(cache.total_weight(), 3);
    }

    #[test]
    fn overwrite_adjusts_total_weight() {
        let mut cache: LruCache<u32, u32> = LruCache::with_weight_cap(8, 10);
        cache.insert_weighted(1, 1, 6);
        cache.insert_weighted(2, 2, 3);
        cache.insert_weighted(1, 11, 2); // overwrite: 6 → 2
        assert_eq!(cache.total_weight(), 5);
        assert_eq!(cache.peek(&1), Some(&11));
        cache.remove(&2);
        assert_eq!(cache.total_weight(), 2);
        cache.clear();
        assert_eq!(cache.total_weight(), 0);
    }

    #[test]
    fn zero_weight_cap_preserves_count_lru_behavior() {
        // Same scenario as lru_order_is_exact but via insert_weighted with
        // wild weights: cap 0 must ignore them entirely.
        let mut cache: LruCache<u32, u32> = LruCache::new(3);
        cache.insert_weighted(0, 0, 1_000);
        cache.insert_weighted(1, 1, 1);
        cache.insert_weighted(2, 2, 500);
        cache.get(&0);
        cache.insert_weighted(3, 3, 9_999); // evicts 1 (count pressure only)
        assert!(cache.peek(&1).is_none());
        assert!(cache.peek(&0).is_some());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        for i in 0..100 {
            cache.insert(i, i);
        }
        // Only 2 live entries and at most 3 allocated nodes ever.
        assert_eq!(cache.len(), 2);
        assert!(cache.nodes.len() <= 3);
        assert_eq!(cache.counters().evictions, 98);
        assert_eq!(cache.peek(&99), Some(&99));
        assert_eq!(cache.peek(&98), Some(&98));
    }
}
