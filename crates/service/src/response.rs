//! Query responses and their one-line JSON serialization.
//!
//! The serialized form is **deterministic**: it carries no wall times and
//! no cache metadata, so the same request against the same graph snapshot
//! produces byte-identical lines regardless of worker count, cache state,
//! or scheduling. (Hit rates and latency live in the `stats` line instead.)
//! JSON is hand-rolled — this workspace builds without serde (see
//! `vendor/README.md`); the only subtlety is string escaping.

use std::time::Duration;

use crate::request::{Method, RequestError};

/// A successful search, reduced to its deterministic, cacheable core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Community vertex ids, sorted ascending.
    pub community: Vec<u32>,
    /// Query distance of the answer (Definition 5).
    pub query_distance: u32,
    /// Peeling iterations the search performed.
    pub iterations: usize,
    /// Leader vertices, sorted ascending (one per query label).
    pub leaders: Vec<u32>,
    /// Effective per-query-vertex core parameters, aligned with the
    /// normalized (sorted) query vertex order.
    pub ks: Vec<u32>,
    /// Effective butterfly threshold.
    pub b: u64,
    /// Per-label-pair sub-query results for scattered msearch (m > 2).
    /// Empty for pair searches and 2-vertex msearch; empty = omitted from
    /// the serialized line, so historical response bytes are unchanged.
    pub pairs: Vec<PairOutcome>,
}

/// One label-pair sub-query's result inside a scattered msearch response:
/// the partial-failure surface. A failed pair appears as a structured
/// error *inside* the `ok:true` response — cross-shard msearch never turns
/// one slow or unsatisfiable pair into a whole-request failure as long as
/// the assembly succeeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairOutcome {
    /// Left query vertex id (normalized order; `ql < qr`).
    pub ql: u32,
    /// Right query vertex id.
    pub qr: u32,
    /// The pair community's members on success (not serialized — kept for
    /// commit-time cache invalidation scoping), or the structured error.
    pub result: Result<Vec<u32>, RequestError>,
}

impl PairOutcome {
    /// The deterministic `{"ql":..,"qr":..,...}` object form.
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(48);
        out.push_str("{\"ql\":");
        out.push_str(&self.ql.to_string());
        out.push_str(",\"qr\":");
        out.push_str(&self.qr.to_string());
        match &self.result {
            Ok(members) => {
                out.push_str(",\"ok\":true,\"size\":");
                out.push_str(&members.len().to_string());
            }
            Err(err) => {
                out.push_str(",\"ok\":false");
                push_str_field(&mut out, "error", err.kind.as_str());
                push_str_field(&mut out, "message", &err.message);
            }
        }
        out.push('}');
        out
    }
}

/// The service's answer to one request line.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Request sequence number (input order within the session/batch).
    pub seq: u64,
    /// Registry key of the graph that served the request (empty when the
    /// request failed before graph resolution).
    pub graph: String,
    /// Searcher that ran (the request's method even on failure).
    pub method: Method,
    /// The outcome or a structured error.
    pub outcome: Result<QueryOutcome, RequestError>,
    /// Served from the result cache (not serialized — see module docs).
    pub cached: bool,
    /// End-to-end service time (not serialized).
    pub elapsed: Duration,
}

impl QueryResponse {
    /// An error response.
    pub fn error(seq: u64, graph: &str, method: Method, err: RequestError) -> Self {
        QueryResponse {
            seq,
            graph: graph.to_owned(),
            method,
            outcome: Err(err),
            cached: false,
            elapsed: Duration::ZERO,
        }
    }

    /// True for a successful search.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The deterministic one-line JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        match &self.outcome {
            Ok(outcome) => {
                out.push_str("{\"ok\":true");
                push_field(&mut out, "seq", &self.seq.to_string());
                push_str_field(&mut out, "graph", &self.graph);
                push_str_field(&mut out, "method", self.method.as_str());
                push_field(&mut out, "size", &outcome.community.len().to_string());
                push_field(&mut out, "query_distance", &outcome.query_distance.to_string());
                push_field(&mut out, "iterations", &outcome.iterations.to_string());
                push_field(&mut out, "ks", &u32_array(&outcome.ks));
                push_field(&mut out, "b", &outcome.b.to_string());
                push_field(&mut out, "leaders", &u32_array(&outcome.leaders));
                push_field(&mut out, "community", &u32_array(&outcome.community));
                if !outcome.pairs.is_empty() {
                    let mut pairs = String::with_capacity(outcome.pairs.len() * 32 + 2);
                    pairs.push('[');
                    for (i, p) in outcome.pairs.iter().enumerate() {
                        if i > 0 {
                            pairs.push(',');
                        }
                        pairs.push_str(&p.to_json());
                    }
                    pairs.push(']');
                    push_field(&mut out, "pairs", &pairs);
                }
                out.push('}');
            }
            Err(err) => {
                out.push_str("{\"ok\":false");
                push_field(&mut out, "seq", &self.seq.to_string());
                if !self.graph.is_empty() {
                    push_str_field(&mut out, "graph", &self.graph);
                }
                push_str_field(&mut out, "error", err.kind.as_str());
                push_str_field(&mut out, "message", &err.message);
                out.push('}');
            }
        }
        out
    }
}

/// `,"key":value` (raw value — number or array).
fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

/// `,"key":"escaped string"`.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    bcc_graph::json::push_json_string(out, value);
}

/// The workspace-wide JSON string escaper (`bcc_graph::json`), re-exported
/// where the service historically kept its private copy.
pub(crate) use bcc_graph::json::json_string;

fn u32_array(values: &[u32]) -> String {
    let mut out = String::with_capacity(values.len() * 4 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// What a successful mutation line reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutateOutcome {
    /// An `add_edge`/`remove_edge` line staged a change; `pending` counts
    /// the changes now staged for the graph.
    Staged {
        /// Staged-but-uncommitted changes for this graph.
        pending: usize,
    },
    /// A `commit` line applied the staged batch.
    Committed(CommitSummary),
}

/// The deterministic payload of a `commit` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitSummary {
    /// Edge changes applied.
    pub applied: usize,
    /// Vertex count of the new snapshot.
    pub vertices: usize,
    /// Edge count of the new snapshot.
    pub edges: usize,
    /// True when the BCindex was patched in place (it had been built);
    /// false when the new snapshot starts with a lazily-unbuilt index.
    pub index_patched: bool,
    /// Result-cache entries invalidated (their community or query touched
    /// the mutation).
    pub invalidated: usize,
    /// Warm entries rekeyed to the new snapshot generation (still hits).
    pub retained: usize,
}

/// The service's answer to one mutation line. Serialization carries no
/// timings — like [`QueryResponse`], the bytes are deterministic.
#[derive(Clone, Debug)]
pub struct MutateResponse {
    /// The protocol verb (`add_edge` / `remove_edge` / `commit`).
    pub op: &'static str,
    /// Registry key (empty when the request failed before resolution).
    pub graph: String,
    /// The outcome or a structured error.
    pub outcome: Result<MutateOutcome, RequestError>,
}

impl MutateResponse {
    /// The deterministic one-line JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        match &self.outcome {
            Ok(MutateOutcome::Staged { pending }) => {
                out.push_str("{\"ok\":true");
                push_str_field(&mut out, "op", self.op);
                push_str_field(&mut out, "graph", &self.graph);
                push_field(&mut out, "staged", &pending.to_string());
                out.push('}');
            }
            Ok(MutateOutcome::Committed(summary)) => {
                out.push_str("{\"ok\":true");
                push_str_field(&mut out, "op", self.op);
                push_str_field(&mut out, "graph", &self.graph);
                push_field(&mut out, "applied", &summary.applied.to_string());
                push_field(&mut out, "vertices", &summary.vertices.to_string());
                push_field(&mut out, "edges", &summary.edges.to_string());
                push_field(&mut out, "index_patched", if summary.index_patched { "true" } else { "false" });
                push_field(&mut out, "invalidated", &summary.invalidated.to_string());
                push_field(&mut out, "retained", &summary.retained.to_string());
                out.push('}');
            }
            Err(err) => {
                out.push_str("{\"ok\":false");
                push_str_field(&mut out, "op", self.op);
                if !self.graph.is_empty() {
                    push_str_field(&mut out, "graph", &self.graph);
                }
                push_str_field(&mut out, "error", err.kind.as_str());
                push_str_field(&mut out, "message", &err.message);
                out.push('}');
            }
        }
        out
    }
}

/// Converts a `BccResult` into the deterministic outcome form.
pub fn outcome_from_result(result: &bcc_core::BccResult, ks: &[u32], b: u64) -> QueryOutcome {
    let mut leaders: Vec<u32> = result.leaders.iter().map(|v| v.0).collect();
    leaders.sort_unstable();
    QueryOutcome {
        community: result.community.iter().map(|v| v.0).collect(),
        query_distance: result.query_distance,
        iterations: result.iterations,
        leaders,
        ks: ks.to_vec(),
        b,
        pairs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_json_shape() {
        let response = QueryResponse {
            seq: 3,
            graph: "g".into(),
            method: Method::Lp,
            outcome: Ok(QueryOutcome {
                community: vec![0, 1, 4],
                query_distance: 2,
                iterations: 5,
                leaders: vec![0, 4],
                ks: vec![3, 2],
                b: 1,
                pairs: Vec::new(),
            }),
            cached: true,
            elapsed: Duration::from_millis(7),
        };
        assert_eq!(
            response.to_json(),
            "{\"ok\":true,\"seq\":3,\"graph\":\"g\",\"method\":\"lp\",\"size\":3,\
             \"query_distance\":2,\"iterations\":5,\"ks\":[3,2],\"b\":1,\
             \"leaders\":[0,4],\"community\":[0,1,4]}"
        );
        // Determinism: cached/elapsed never leak into the serialized line.
        assert!(!response.to_json().contains("cached"));
        assert!(!response.to_json().contains("elapsed"));
    }

    #[test]
    fn pairs_section_serializes_after_community() {
        let response = QueryResponse {
            seq: 0,
            graph: "g".into(),
            method: Method::Lp,
            outcome: Ok(QueryOutcome {
                community: vec![0, 1, 4],
                query_distance: 2,
                iterations: 5,
                leaders: vec![0, 4],
                ks: vec![3, 2],
                b: 1,
                pairs: vec![
                    PairOutcome { ql: 0, qr: 4, result: Ok(vec![0, 1, 4]) },
                    PairOutcome {
                        ql: 0,
                        qr: 9,
                        result: Err(RequestError {
                            kind: crate::request::ErrorKind::Search,
                            message: "no butterflies".into(),
                        }),
                    },
                ],
            }),
            cached: false,
            elapsed: Duration::ZERO,
        };
        let json = response.to_json();
        assert!(json.ends_with(
            "\"community\":[0,1,4],\"pairs\":[{\"ql\":0,\"qr\":4,\"ok\":true,\"size\":3},\
             {\"ql\":0,\"qr\":9,\"ok\":false,\"error\":\"search\",\
             \"message\":\"no butterflies\"}]}"
        ), "{json}");
        // The pair members themselves never serialize (invalidation-only).
        assert_eq!(json.matches("[0,1,4]").count(), 1);
    }

    #[test]
    fn error_json_shape() {
        let response = QueryResponse::error(
            9,
            "",
            Method::Online,
            RequestError::parse("bad \"input\"\nline"),
        );
        assert_eq!(
            response.to_json(),
            "{\"ok\":false,\"seq\":9,\"error\":\"parse\",\
             \"message\":\"bad \\\"input\\\"\\nline\"}"
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\u{1}"), "\"a\\\"b\\\\c\\u0001\"");
    }

    #[test]
    fn mutate_json_shapes() {
        let staged = MutateResponse {
            op: "add_edge",
            graph: "g".into(),
            outcome: Ok(MutateOutcome::Staged { pending: 2 }),
        };
        assert_eq!(
            staged.to_json(),
            "{\"ok\":true,\"op\":\"add_edge\",\"graph\":\"g\",\"staged\":2}"
        );
        let committed = MutateResponse {
            op: "commit",
            graph: "g".into(),
            outcome: Ok(MutateOutcome::Committed(CommitSummary {
                applied: 2,
                vertices: 8,
                edges: 17,
                index_patched: true,
                invalidated: 1,
                retained: 3,
            })),
        };
        assert_eq!(
            committed.to_json(),
            "{\"ok\":true,\"op\":\"commit\",\"graph\":\"g\",\"applied\":2,\
             \"vertices\":8,\"edges\":17,\"index_patched\":true,\
             \"invalidated\":1,\"retained\":3}"
        );
        let failed = MutateResponse {
            op: "remove_edge",
            graph: "hostile\"name".into(),
            outcome: Err(RequestError::mutate("edge {v0, v1} does not exist")),
        };
        assert_eq!(
            failed.to_json(),
            "{\"ok\":false,\"op\":\"remove_edge\",\"graph\":\"hostile\\\"name\",\
             \"error\":\"mutate\",\"message\":\"edge {v0, v1} does not exist\"}"
        );
    }
}
