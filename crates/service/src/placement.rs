//! Placement: the shard routing table and per-shard worker pools.
//!
//! The paper's offline/online split (one BCindex per graph snapshot,
//! independent per-query work) makes serving embarrassingly partitionable:
//! a graph's queries only ever touch that graph's snapshot, so different
//! graphs — or label-pair sub-queries of one huge graph — can live on
//! different worker pools with no cross-pool synchronization. A
//! [`ShardMap`] owns `N` [`Shard`]s (each a [`WorkerPool`] plus load
//! counters) and routes by **graph name**: an explicit assignment set via
//! the `shard assign` protocol verb wins, otherwise an FNV-1a hash of the
//! name picks the default shard.
//!
//! Routing by name (not by snapshot pointer) is what makes the table
//! generation-safe: a commit republishes the graph under the same name, so
//! in-flight routing decisions and post-commit requests land on the same
//! shard, and the registry refreshes the generation pin recorded on any
//! explicit assignment (see [`ShardMap::note_registration`]) so `shard
//! list` always reflects the live snapshot. Cache keys carry the entry
//! generation captured at submit time, so a mid-request commit can never
//! mix results across generations regardless of placement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::fault::{Breaker, BreakerState};
use crate::pool::WorkerPool;

/// Monotonic per-shard load counters (relaxed atomics; exact totals, no
/// ordering guarantees between counters).
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Jobs routed to this shard's pool (home queries, scatter sub-queries
    /// and assembly jobs; cache hits never reach a shard).
    pub routed: AtomicU64,
    /// Requests admitted through this shard's admission gate (TCP serving
    /// only; zero under `serve`/`batch`).
    pub admitted: AtomicU64,
    /// Requests rejected by this shard's admission gate.
    pub rejected: AtomicU64,
    /// Scatter pair sub-queries rerouted *away* from this shard to the
    /// home shard because this shard's circuit breaker was open.
    pub breaker_rerouted: AtomicU64,
}

/// One shard: a worker pool plus its load counters and circuit breaker.
pub struct Shard {
    id: usize,
    pool: WorkerPool,
    counters: ShardCounters,
    breaker: Breaker,
}

impl Shard {
    /// This shard's id (index into the [`ShardMap`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard-owned worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The shard's load counters.
    pub fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    /// The shard's circuit breaker (trips on consecutive transient scatter
    /// sub-query failures; open shards have pair work rerouted home).
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }
}

/// An explicit graph → shard pin plus the generation it was last
/// refreshed at (observability only; routing is by name).
#[derive(Clone, Copy, Debug)]
struct Assignment {
    shard: usize,
    generation: u64,
}

/// A point-in-time view of one shard's load, rendered into `stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard id.
    pub id: usize,
    /// Worker threads owned by the shard.
    pub workers: usize,
    /// Jobs accepted but not yet running (instantaneous queue depth).
    pub queued: usize,
    /// Jobs executed so far.
    pub executed: u64,
    /// Jobs routed to this shard (see [`ShardCounters::routed`]).
    pub routed: u64,
    /// Admission-gate admits for this shard.
    pub admitted: u64,
    /// Admission-gate rejections for this shard.
    pub rejected: u64,
    /// Jobs that panicked on this shard's pool (all contained).
    pub panics: u64,
    /// Worker threads respawned after an uncaught job panic.
    pub respawns: u64,
    /// Circuit-breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Times the breaker tripped closed → open.
    pub breaker_opens: u64,
    /// Pair sub-queries rerouted away while the breaker was open.
    pub breaker_rerouted: u64,
}

/// The routing table: `N` shards plus explicit graph assignments.
pub struct ShardMap {
    shards: Vec<Arc<Shard>>,
    assignments: RwLock<HashMap<String, Assignment>>,
}

impl ShardMap {
    /// Creates `shards` shards (0 or 1 ⇒ a single shard, the classic
    /// one-pool topology), each owning a pool of `workers_per_shard`
    /// threads (0 ⇒ one per core). Breakers use the service defaults; see
    /// [`ShardMap::with_breakers`] for explicit tuning.
    pub fn new(shards: usize, workers_per_shard: usize) -> Self {
        ShardMap::with_breakers(shards, workers_per_shard, 5, Duration::from_millis(250))
    }

    /// [`ShardMap::new`] with explicit per-shard circuit-breaker tuning:
    /// trip after `breaker_threshold` consecutive transient failures
    /// (0 disables the breakers), cool down `breaker_cooldown` before each
    /// half-open probe.
    pub fn with_breakers(
        shards: usize,
        workers_per_shard: usize,
        breaker_threshold: u32,
        breaker_cooldown: Duration,
    ) -> Self {
        let count = shards.max(1);
        let shards = (0..count)
            .map(|id| {
                Arc::new(Shard {
                    id,
                    pool: WorkerPool::new(workers_per_shard),
                    counters: ShardCounters::default(),
                    breaker: Breaker::new(breaker_threshold, breaker_cooldown),
                })
            })
            .collect();
        ShardMap { shards, assignments: RwLock::new(HashMap::new()) }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, id order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard with id `id`. Panics if out of range.
    pub fn shard(&self, id: usize) -> &Arc<Shard> {
        &self.shards[id]
    }

    /// Total worker threads across all shards.
    pub fn total_workers(&self) -> usize {
        self.shards.iter().map(|s| s.pool.workers()).sum()
    }

    /// The hash-default shard id for `name` (ignores explicit
    /// assignments).
    pub fn default_shard(&self, name: &str) -> usize {
        (fnv1a(name.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard id `name` routes to: explicit assignment, else hash
    /// default.
    pub fn route_id(&self, name: &str) -> usize {
        if let Some(a) = self.assignments.read().unwrap().get(name) {
            return a.shard;
        }
        self.default_shard(name)
    }

    /// The shard `name` routes to.
    pub fn route(&self, name: &str) -> &Arc<Shard> {
        &self.shards[self.route_id(name)]
    }

    /// The shard a label-pair sub-query of `name` routes to: the pair key
    /// is folded into the hash so a multi-label msearch spreads its
    /// C(m,2) sub-queries across shards deterministically.
    pub fn route_pair(&self, name: &str, a: u32, b: u32) -> &Arc<Shard> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut bytes = Vec::with_capacity(name.len() + 9);
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&lo.to_le_bytes());
        bytes.extend_from_slice(&hi.to_le_bytes());
        let id = (fnv1a(&bytes) % self.shards.len() as u64) as usize;
        &self.shards[id]
    }

    /// Pins `name` to `shard` (the `shard assign` verb). Errors when the
    /// shard id is out of range.
    pub fn assign(&self, name: &str, shard: usize, generation: u64) -> Result<(), String> {
        if shard >= self.shards.len() {
            return Err(format!(
                "shard id {shard} out of range (0..{})",
                self.shards.len()
            ));
        }
        self.assignments
            .write()
            .unwrap()
            .insert(name.to_owned(), Assignment { shard, generation });
        Ok(())
    }

    /// Refreshes the generation pin on an explicit assignment when the
    /// registry publishes a new snapshot under `name` (insert or commit).
    /// The shard choice sticks — only the recorded generation moves — so
    /// a re-registration never lands on a stale shard *or* silently
    /// abandons an operator's placement decision.
    pub fn note_registration(&self, name: &str, generation: u64) {
        if let Some(a) = self.assignments.write().unwrap().get_mut(name) {
            a.generation = generation;
        }
    }

    /// Explicit assignments as `(graph, shard, generation)`, sorted by
    /// graph name.
    pub fn assignments(&self) -> Vec<(String, usize, u64)> {
        let mut out: Vec<_> = self
            .assignments
            .read()
            .unwrap()
            .iter()
            .map(|(name, a)| (name.clone(), a.shard, a.generation))
            .collect();
        out.sort();
        out
    }

    /// Point-in-time load snapshot of every shard, id order.
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|s| ShardSnapshot {
                id: s.id,
                workers: s.pool.workers(),
                queued: s.pool.queued(),
                executed: s.pool.executed(),
                routed: s.counters.routed.load(Ordering::Relaxed),
                admitted: s.counters.admitted.load(Ordering::Relaxed),
                rejected: s.counters.rejected.load(Ordering::Relaxed),
                panics: s.pool.panics(),
                respawns: s.pool.respawns(),
                breaker: s.breaker.state(),
                breaker_opens: s.breaker.opens(),
                breaker_rerouted: s.counters.breaker_rerouted.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and stable across runs (routing
/// must be deterministic so differential suites can replay it).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_clamps_to_one() {
        let map = ShardMap::new(0, 1);
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.route_id("anything"), 0);
        assert_eq!(map.total_workers(), 1);
    }

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let map = ShardMap::new(4, 1);
        for name in ["default", "dblp", "baidu", "g1", "g2", ""] {
            let id = map.route_id(name);
            assert!(id < 4);
            assert_eq!(id, map.route_id(name), "routing must be stable");
            assert_eq!(id, map.default_shard(name));
        }
    }

    #[test]
    fn explicit_assignment_overrides_hash_default() {
        let map = ShardMap::new(4, 1);
        let default = map.default_shard("g");
        let pinned = (default + 1) % 4;
        map.assign("g", pinned, 7).unwrap();
        assert_eq!(map.route_id("g"), pinned);
        assert_eq!(map.assignments(), vec![("g".to_owned(), pinned, 7)]);
        // Re-registration refreshes the generation but keeps the pin.
        map.note_registration("g", 9);
        assert_eq!(map.route_id("g"), pinned);
        assert_eq!(map.assignments(), vec![("g".to_owned(), pinned, 9)]);
        // Unassigned names are untouched by note_registration.
        map.note_registration("other", 3);
        assert_eq!(map.assignments().len(), 1);
    }

    #[test]
    fn assign_rejects_out_of_range_shard() {
        let map = ShardMap::new(2, 1);
        let err = map.assign("g", 2, 1).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(map.assignments().is_empty());
    }

    #[test]
    fn pair_routing_spreads_and_is_symmetric() {
        let map = ShardMap::new(4, 1);
        for (a, b) in [(1u32, 9u32), (3, 17), (0, 2), (5, 5)] {
            let fwd = map.route_pair("g", a, b).id();
            let rev = map.route_pair("g", b, a).id();
            assert_eq!(fwd, rev, "pair routing must be order-independent");
            assert!(fwd < 4);
        }
        // Different graphs route the same pair independently.
        let _ = map.route_pair("h", 1, 9).id();
    }

    #[test]
    fn snapshot_reports_per_shard_counters() {
        let map = ShardMap::new(2, 1);
        map.shard(1).counters().routed.fetch_add(3, Ordering::Relaxed);
        let ticket = map.shard(0).pool().submit(|| 41 + 1);
        assert_eq!(ticket.wait(), Ok(42));
        let snap = map.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].id, 0);
        assert_eq!(snap[0].executed, 1);
        assert_eq!(snap[1].routed, 3);
        assert_eq!(snap[1].workers, 1);
        assert_eq!(snap[0].panics, 0);
        assert_eq!(snap[0].breaker, BreakerState::Closed);
    }

    #[test]
    fn snapshot_reports_breaker_state_and_fault_counters() {
        let map = ShardMap::with_breakers(2, 1, 2, Duration::from_secs(3600));
        map.shard(1).breaker().record_failure();
        map.shard(1).breaker().record_failure();
        map.shard(1).counters().breaker_rerouted.fetch_add(4, Ordering::Relaxed);
        map.shard(0).pool().execute(|| panic!("die"));
        // Barrier: the replacement worker proves the panic was processed.
        map.shard(0).pool().submit(|| ()).wait().unwrap();
        let snap = map.snapshot();
        assert_eq!(snap[0].panics, 1);
        assert_eq!(snap[0].respawns, 1);
        assert_eq!(snap[1].breaker, BreakerState::Open);
        assert_eq!(snap[1].breaker_opens, 1);
        assert_eq!(snap[1].breaker_rerouted, 4);
        assert_eq!(snap[0].breaker, BreakerState::Closed);
    }
}
