//! A std::thread worker pool with submit/wait tickets, deadlines, and
//! panic containment.
//!
//! No external dependencies: a `Mutex<VecDeque>` job queue, a `Condvar` to
//! park idle workers, and an `mpsc` channel per submitted job to hand the
//! result back. Searches are CPU-bound and non-blocking, so N = available
//! hardware parallelism is the right default.
//!
//! Panics are contained at two layers so pool capacity never decays:
//!
//! * [`WorkerPool::submit`] wraps the closure in `catch_unwind` — a
//!   panicking job delivers a typed [`JobError::Panicked`] through its
//!   [`Ticket`] (carrying the panic message) and the worker thread keeps
//!   serving;
//! * [`WorkerPool::execute`] (fire-and-forget) jobs run uncaught, so a
//!   panic unwinds the worker thread — a drop guard then respawns a
//!   replacement before the thread dies, restoring the pool to full width.
//!
//! Both paths count into [`WorkerPool::panics`] / [`WorkerPool::respawns`]
//! (surfaced per shard in `stats`, `metrics`, and Prometheus).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::fault::{lock_unpoisoned, panic_message};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: std::sync::Condvar,
    executed: AtomicU64,
    /// Jobs that panicked (contained either way: caught on the submit
    /// path, respawned on the execute path).
    panics: AtomicU64,
    /// Worker threads respawned after an uncaught job panic.
    respawns: AtomicU64,
    /// Monotonic worker-name counter (replacements get fresh names).
    next_worker: AtomicU64,
    /// Live worker handles. Respawn guards push replacements here *before*
    /// their dying thread exits, and `Drop` joins until the vec drains —
    /// joining a panicked worker blocks until its guard has pushed, so a
    /// replacement handle is always observed.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Respawns the worker thread if it is unwinding from a job panic.
///
/// Lives on each worker thread's stack for the lifetime of its loop: a
/// normal return (shutdown) drops it inert; an unwinding drop counts the
/// panic and — unless the pool is shutting down — spawns a replacement so
/// the pool never loses capacity to a panicking fire-and-forget job.
struct RespawnGuard {
    shared: Arc<Shared>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        self.shared.panics.fetch_add(1, Ordering::Relaxed);
        {
            // Skip the respawn only when the pool is shutting down *and*
            // nothing is queued: `Drop` promises every already-queued job
            // runs before the workers exit, and a worker dying during
            // shutdown with work pending would strand that queue unless a
            // replacement drains it.
            let queue = lock_unpoisoned(&self.shared.queue);
            if queue.shutdown && queue.jobs.is_empty() {
                return;
            }
        }
        // Count before the replacement can run: a job that observes the
        // replacement (e.g. a barrier) must also observe the counter.
        self.shared.respawns.fetch_add(1, Ordering::Relaxed);
        if let Ok(handle) = spawn_worker(&self.shared) {
            lock_unpoisoned(&self.shared.handles).push(handle);
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    let id = shared.next_worker.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("bcc-worker-{id}"))
        .spawn(move || {
            let _guard = RespawnGuard { shared: Arc::clone(&shared) };
            worker_loop(&shared);
        })
}

/// A fixed-size pool of worker threads executing submitted closures.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Configured width — the pool's invariant worker count (respawns keep
    /// the live thread count here).
    width: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (0 ⇒ [`default_workers`]).
    pub fn new(workers: usize) -> Self {
        let width = if workers == 0 { default_workers() } else { workers };
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            work_ready: std::sync::Condvar::new(),
            executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            next_worker: AtomicU64::new(0),
            handles: Mutex::new(Vec::with_capacity(width)),
        });
        for _ in 0..width {
            let handle = spawn_worker(&shared).expect("spawn worker thread");
            lock_unpoisoned(&shared.handles).push(handle);
        }
        WorkerPool { shared, width }
    }

    /// Number of worker threads (the configured width; panics respawn, so
    /// the live count equals this).
    pub fn workers(&self) -> usize {
        self.width
    }

    /// Jobs executed so far (lifetime total).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked on this pool (lifetime total; every one was
    /// contained — caught or respawned).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Worker threads respawned after an uncaught job panic.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet picked up by a worker (instantaneous
    /// queue depth — the per-shard load signal surfaced in `stats`).
    pub fn queued(&self) -> usize {
        lock_unpoisoned(&self.shared.queue).jobs.len()
    }

    /// Enqueues a fire-and-forget job. A panicking job takes its worker
    /// thread down — and a replacement is respawned in its place.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = lock_unpoisoned(&self.shared.queue);
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.work_ready.notify_one();
    }

    /// Enqueues `f` and returns a [`Ticket`] for its result. The job runs
    /// under `catch_unwind`: a panic becomes [`JobError::Panicked`] at the
    /// ticket (the worker thread survives, no respawn needed).
    pub fn submit<T, F>(&self, f: F) -> Ticket<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        self.execute(move || {
            // `f` only touches owned/Arc state (the service's shared
            // handles are all Sync); catching its unwind cannot expose a
            // broken borrow — and every mutex it might have poisoned is
            // recovered by `lock_unpoisoned` at the next holder.
            let result = catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                panic_message(payload.as_ref())
            });
            // The receiver may have given up (deadline expired); a failed
            // send is fine — the work still ran for its side effects
            // (e.g. populating the result cache).
            let _ = tx.send(result);
        });
        Ticket { rx }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_unpoisoned(&self.shared.queue).shutdown = true;
        self.shared.work_ready.notify_all();
        // Join until the handle list drains: joining a panicked worker
        // blocks until its respawn guard ran, and the guard pushes the
        // replacement's handle before its thread exits, so no live worker
        // can be missed.
        loop {
            let Some(handle) = lock_unpoisoned(&self.shared.handles).pop() else {
                break;
            };
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // Counted before the job runs: the job itself delivers its result to
        // the waiter, so incrementing afterwards would let a waiter observe
        // the result while the counter still reads the old value.
        shared.executed.fetch_add(1, Ordering::Relaxed);
        job();
    }
}

/// The pool's default width: one worker per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why a [`Ticket`] yielded no value — each cause maps to a distinct
/// structured protocol error (timeout vs internal), so a waiter never has
/// to guess whether the worker panicked, the deadline passed, or the pool
/// went away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload message rode back on the ticket. The
    /// worker survived (submit jobs are caught) and the work's partial
    /// side effects never include a cache insert.
    Panicked(String),
    /// The deadline passed before the job finished (the job keeps
    /// running for its side effects).
    DeadlineExpired,
    /// The job's sender vanished without a value or panic notice — the
    /// pool shut down before the job could run.
    Shutdown,
}

/// A handle to one submitted job's eventual result.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, String>>,
}

impl<T> Ticket<T> {
    /// Blocks until the job finishes.
    pub fn wait(self) -> Result<T, JobError> {
        match self.rx.recv() {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(message)) => Err(JobError::Panicked(message)),
            Err(_) => Err(JobError::Shutdown),
        }
    }

    /// Blocks until the job finishes or `deadline` passes.
    pub fn wait_until(self, deadline: Option<Instant>) -> Result<T, JobError> {
        let unpack = |result: Result<T, String>| match result {
            Ok(value) => Ok(value),
            Err(message) => Err(JobError::Panicked(message)),
        };
        match deadline {
            None => self.wait(),
            Some(deadline) => loop {
                let now = Instant::now();
                if now >= deadline {
                    // One last non-blocking look so an already-delivered
                    // result is not discarded.
                    return match self.rx.try_recv() {
                        Ok(result) => unpack(result),
                        Err(TryRecvError::Empty) => Err(JobError::DeadlineExpired),
                        Err(TryRecvError::Disconnected) => Err(JobError::Shutdown),
                    };
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(result) => return unpack(result),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(JobError::Shutdown),
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        let mut results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.executed(), 64);
        assert_eq!(pool.panics(), 0);
    }

    #[test]
    fn deadline_expires_on_slow_job() {
        let pool = WorkerPool::new(1);
        // Occupy the single worker so the probe job cannot start.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            let _ = hold_rx.recv_timeout(Duration::from_secs(5));
        });
        let ticket = pool.submit(|| 42);
        let deadline = Some(Instant::now() + Duration::from_millis(30));
        assert_eq!(ticket.wait_until(deadline), Err(JobError::DeadlineExpired));
        hold_tx.send(()).unwrap();
    }

    #[test]
    fn deadline_met_returns_value() {
        let pool = WorkerPool::new(2);
        let ticket = pool.submit(|| "done");
        let deadline = Some(Instant::now() + Duration::from_secs(5));
        assert_eq!(ticket.wait_until(deadline), Ok("done"));
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Workers drain the queue before observing shutdown, so every
        // accepted job runs even when the pool is dropped immediately.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_width_defaults_to_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn submitted_panic_is_contained_and_typed() {
        let pool = WorkerPool::new(1);
        let ticket = pool.submit(|| -> u32 { panic!("boom: {}", 7) });
        match ticket.wait() {
            Err(JobError::Panicked(message)) => assert_eq!(message, "boom: 7"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(pool.panics(), 1);
        assert_eq!(pool.respawns(), 0, "submit panics are caught, not respawned");
        // The single worker survived: later jobs still run on it.
        assert_eq!(pool.submit(|| 5).wait(), Ok(5));
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn executed_panic_respawns_the_worker() {
        let pool = WorkerPool::new(1);
        for _ in 0..3 {
            pool.execute(|| panic!("die"));
        }
        // The barrier job proves a live worker processed the whole queue
        // behind the three panics — capacity was restored each time.
        assert_eq!(pool.submit(|| 11).wait(), Ok(11));
        assert_eq!(pool.panics(), 3);
        assert_eq!(pool.respawns(), 3);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn drop_joins_respawned_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            pool.execute(|| panic!("die"));
            for _ in 0..4 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // The replacement worker drained the queue and was joined.
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn non_string_panic_payload_gets_fallback_message() {
        let pool = WorkerPool::new(1);
        let ticket = pool.submit(|| -> u32 { std::panic::panic_any(42u64) });
        assert_eq!(
            ticket.wait(),
            Err(JobError::Panicked("worker job panicked".into()))
        );
    }
}
