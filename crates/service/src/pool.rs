//! A std::thread worker pool with submit/wait tickets and deadlines.
//!
//! No external dependencies: a `Mutex<VecDeque>` job queue, a `Condvar` to
//! park idle workers, and an `mpsc` channel per submitted job to hand the
//! result back. Searches are CPU-bound and non-blocking, so N = available
//! hardware parallelism is the right default.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    executed: AtomicU64,
}

/// A fixed-size pool of worker threads executing submitted closures.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (0 ⇒ [`default_workers`]).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 { default_workers() } else { workers };
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bcc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs executed so far (lifetime total).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet picked up by a worker (instantaneous
    /// queue depth — the per-shard load signal surfaced in `stats`).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap().jobs.len()
    }

    /// Enqueues a fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self.shared.queue.lock().unwrap();
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.work_ready.notify_one();
    }

    /// Enqueues `f` and returns a [`Ticket`] for its result.
    pub fn submit<T, F>(&self, f: F) -> Ticket<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.execute(move || {
            // The receiver may have given up (deadline expired); a failed
            // send is fine — the work still ran for its side effects
            // (e.g. populating the result cache).
            let _ = tx.send(f());
        });
        Ticket { rx }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
        };
        job();
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The pool's default width: one worker per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why [`Ticket::wait_until`] returned no value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed before the job finished (the job keeps running).
    DeadlineExpired,
    /// The job's sender vanished without a value (worker panicked).
    Lost,
}

/// A handle to one submitted job's eventual result.
pub struct Ticket<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> Ticket<T> {
    /// Blocks until the job finishes. `None` if the worker panicked.
    pub fn wait(self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Blocks until the job finishes or `deadline` passes.
    pub fn wait_until(self, deadline: Option<Instant>) -> Result<T, WaitError> {
        match deadline {
            None => self.rx.recv().map_err(|_| WaitError::Lost),
            Some(deadline) => loop {
                let now = Instant::now();
                if now >= deadline {
                    // One last non-blocking look so an already-delivered
                    // result is not discarded.
                    return match self.rx.try_recv() {
                        Ok(value) => Ok(value),
                        Err(_) => Err(WaitError::DeadlineExpired),
                    };
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(value) => return Ok(value),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(WaitError::Lost),
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        let mut results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.executed(), 64);
    }

    #[test]
    fn deadline_expires_on_slow_job() {
        let pool = WorkerPool::new(1);
        // Occupy the single worker so the probe job cannot start.
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        pool.execute(move || {
            let _ = hold_rx.recv_timeout(Duration::from_secs(5));
        });
        let ticket = pool.submit(|| 42);
        let deadline = Some(Instant::now() + Duration::from_millis(30));
        assert_eq!(ticket.wait_until(deadline), Err(WaitError::DeadlineExpired));
        hold_tx.send(()).unwrap();
    }

    #[test]
    fn deadline_met_returns_value() {
        let pool = WorkerPool::new(2);
        let ticket = pool.submit(|| "done");
        let deadline = Some(Instant::now() + Duration::from_secs(5));
        assert_eq!(ticket.wait_until(deadline), Ok("done"));
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Workers drain the queue before observing shutdown, so every
        // accepted job runs even when the pool is dropped immediately.
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn zero_width_defaults_to_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
    }
}
