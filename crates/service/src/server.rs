//! The TCP front-end: accept loop, connection limit, and the admission
//! controller that stands between sessions and the worker pool.
//!
//! One OS thread per connection runs a [`Session`]; the accept loop bounds
//! how many exist at once (`max_connections`), turning extras away with a
//! structured `overloaded` error. Inside the connection limit, the
//! [`Admission`] gate bounds how many requests may *wait* for the worker
//! pool (`queue_depth`) and how many may occupy it (`concurrency`):
//!
//! * a request arriving to a full wait queue is rejected immediately with
//!   `{"ok":false,...,"error":{"kind":"overloaded",...}}` — the client
//!   always gets an answer, never a silent drop or an unbounded stall;
//! * waiting requests dispatch by **priority** first (`priority=high`
//!   before `normal` before `low`), then **per-session fairness** (the
//!   session served least often goes first, so one chatty client cannot
//!   starve the rest), then FIFO;
//! * a request whose deadline expires while queued gets the standard
//!   structured `timeout` error without ever touching the pool — the
//!   admission queue honors the same `timeout_ms` the executor does.
//!
//! `shutdown` from any session closes every session, stops the accept
//! loop, and joins all threads — [`ServerHandle::join`] returns only when
//! nothing is left running.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::codec::{Codec, LineCodec};
use crate::fault::{lock_unpoisoned, panic_message};
use crate::placement::Shard;
use crate::request::Priority;
use crate::session::{session_error_json, Session, SessionConfig, SessionEnd};
use crate::service::{BccService, TransportCounters};

/// Tunables for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrent connections; extras are rejected with a
    /// structured `overloaded` error (newline-framed: rejection happens
    /// before the first byte arrives, so no codec was negotiated).
    pub max_connections: usize,
    /// Maximum requests waiting in the admission queue (beyond those
    /// executing); an arrival past this bound is rejected immediately.
    pub queue_depth: usize,
    /// Requests allowed to occupy the worker pool at once (0 ⇒ the pool's
    /// worker count).
    pub concurrency: usize,
    /// Deadline inherited by requests that carry no `timeout_ms`
    /// (`None` ⇒ the service default applies).
    pub default_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            queue_depth: 128,
            concurrency: 0,
            default_timeout_ms: None,
        }
    }
}

/// Why [`Admission::admit`] refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The wait queue is full; the message describes the limit.
    Overloaded(String),
    /// The request's deadline expired while it waited.
    DeadlineExpired,
}

/// One queued request.
#[derive(Clone, Copy, Debug)]
struct Waiter {
    ticket: u64,
    session: u64,
    priority: Priority,
}

#[derive(Default)]
struct AdmState {
    in_flight: usize,
    waiting: Vec<Waiter>,
    next_ticket: u64,
    /// Requests dispatched per session — the fairness key.
    served: HashMap<u64, u64>,
}

/// The admission controller: a bounded, priority- and fairness-ordered
/// wait queue in front of the worker pool. Sessions block in
/// [`Admission::admit`]; the returned permit occupies one execution slot
/// until dropped.
pub struct Admission {
    concurrency: usize,
    queue_depth: usize,
    transport: Arc<TransportCounters>,
    /// The shard this gate guards, when the server runs one gate per
    /// shard: rejections name the shard id and bump its counters.
    shard: Option<Arc<Shard>>,
    state: Mutex<AdmState>,
    available: Condvar,
}

/// Holds one admission slot; dropping it releases the slot and wakes
/// waiters.
pub struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionPermit")
    }
}

impl Admission {
    /// A gate allowing `concurrency` concurrent executions and
    /// `queue_depth` waiters, counting into `transport`.
    pub fn new(
        concurrency: usize,
        queue_depth: usize,
        transport: Arc<TransportCounters>,
    ) -> Self {
        Admission {
            concurrency: concurrency.max(1),
            queue_depth,
            transport,
            shard: None,
            state: Mutex::new(AdmState::default()),
            available: Condvar::new(),
        }
    }

    /// Ties this gate to `shard`: overload rejections name the shard id in
    /// their structured message, and admit/reject counts land on the
    /// shard's counters (surfaced per shard in `stats`).
    pub fn with_shard(mut self, shard: Arc<Shard>) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Admits one request for `session`, blocking until a slot is free and
    /// this request is the best-entitled waiter (priority, then least-served
    /// session, then FIFO). Fails fast with [`AdmitError::Overloaded`] when
    /// the wait queue is full, and with [`AdmitError::DeadlineExpired`] if
    /// `deadline` passes while queued.
    pub fn admit(
        &self,
        session: u64,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<AdmissionPermit<'_>, AdmitError> {
        let mut state = lock_unpoisoned(&self.state);
        if state.in_flight < self.concurrency && state.waiting.is_empty() {
            return Ok(self.dispatch(&mut state, session));
        }
        if state.waiting.len() >= self.queue_depth {
            self.transport.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            let scope = match &self.shard {
                Some(shard) => {
                    shard.counters().rejected.fetch_add(1, Ordering::Relaxed);
                    format!(" on shard {}", shard.id())
                }
                None => String::new(),
            };
            return Err(AdmitError::Overloaded(format!(
                "admission queue full{scope} ({} executing, {} waiting, queue depth {})",
                state.in_flight,
                state.waiting.len(),
                self.queue_depth
            )));
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiting.push(Waiter { ticket, session, priority });
        loop {
            if state.in_flight < self.concurrency && self.best(&state) == Some(ticket) {
                let idx = state
                    .waiting
                    .iter()
                    .position(|w| w.ticket == ticket)
                    .expect("own ticket is queued");
                state.waiting.swap_remove(idx);
                let permit = self.dispatch(&mut state, session);
                // More slots may be free — let the next-best waiter check.
                self.available.notify_all();
                return Ok(permit);
            }
            state = match deadline {
                None => self
                    .available
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        let idx = state
                            .waiting
                            .iter()
                            .position(|w| w.ticket == ticket)
                            .expect("own ticket is queued");
                        state.waiting.swap_remove(idx);
                        self.transport
                            .admission_timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        // The freed queue slot may unblock an arrival path
                        // decision; waiters re-evaluate harmlessly.
                        self.available.notify_all();
                        return Err(AdmitError::DeadlineExpired);
                    }
                    self.available
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
            };
        }
    }

    /// Occupies a slot for `session` (state lock held).
    fn dispatch<'a>(&'a self, state: &mut AdmState, session: u64) -> AdmissionPermit<'a> {
        state.in_flight += 1;
        *state.served.entry(session).or_insert(0) += 1;
        self.transport.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(shard) = &self.shard {
            shard.counters().admitted.fetch_add(1, Ordering::Relaxed);
        }
        AdmissionPermit { admission: self }
    }

    /// The ticket entitled to the next free slot: highest priority, then
    /// the session dispatched least often, then lowest ticket (FIFO).
    fn best(&self, state: &AdmState) -> Option<u64> {
        state
            .waiting
            .iter()
            .min_by_key(|w| {
                (
                    std::cmp::Reverse(w.priority),
                    state.served.get(&w.session).copied().unwrap_or(0),
                    w.ticket,
                )
            })
            .map(|w| w.ticket)
    }

    /// Snapshot of (executing, waiting) — for tests and the load bench.
    pub fn load(&self) -> (usize, usize) {
        let state = lock_unpoisoned(&self.state);
        (state.in_flight, state.waiting.len())
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.admission.state);
        state.in_flight -= 1;
        drop(state);
        self.admission.available.notify_all();
    }
}

/// Everything the accept loop, session threads, and [`ServerHandle`] share.
struct Shared {
    service: Arc<BccService>,
    config: ServerConfig,
    /// One admission gate per shard (`admissions[i]` guards shard `i`):
    /// sessions route each query's admission through the shard its graph
    /// routes to, so overload on one shard leaves the others admitting.
    admissions: Vec<Admission>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    /// Live session sockets, keyed by session id — `shutdown` closes them
    /// all (each session thread then unblocks out of its read).
    live: Mutex<HashMap<u64, TcpStream>>,
    session_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Flips the shutdown flag once: closes every live session socket and
    /// wakes the accept loop with a throwaway self-connection.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for stream in lock_unpoisoned(&self.live).values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running TCP server. Obtained from [`Server::bind`]; dropping the
/// handle does **not** stop the server — call [`ServerHandle::shutdown`]
/// (or send a `shutdown` line) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// The TCP front-end constructor (see the module docs).
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4000`; port 0 picks a free port) and
    /// starts accepting. Each accepted connection gets a session thread;
    /// queries admission-gate onto the service's worker pool.
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<BccService>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // One gate per shard: default concurrency is the *shard's* worker
        // count, so each pool is protected independently.
        let admissions = service
            .shard_map()
            .shards()
            .iter()
            .map(|shard| {
                let concurrency = if config.concurrency == 0 {
                    shard.pool().workers()
                } else {
                    config.concurrency
                };
                Admission::new(concurrency, config.queue_depth, Arc::clone(service.transport()))
                    .with_shard(Arc::clone(shard))
            })
            .collect();
        let shared = Arc::new(Shared {
            service,
            config,
            admissions,
            addr,
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
            session_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("bcc-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle { shared, accept_thread: Some(accept_thread) })
    }
}

impl ServerHandle {
    /// The bound address (with the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The first shard's admission gate (tests and the load bench occupy
    /// slots directly to provoke deterministic overload); see
    /// [`ServerHandle::admissions`] for the full per-shard set.
    pub fn admission(&self) -> &Admission {
        &self.shared.admissions[0]
    }

    /// All admission gates, shard order (`admissions()[i]` guards shard `i`).
    pub fn admissions(&self) -> &[Admission] {
        &self.shared.admissions
    }

    /// Initiates shutdown: stop accepting, close every session.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has fully stopped — the accept loop exited
    /// and every session thread was joined. (Returns immediately only
    /// after [`ServerHandle::shutdown`] or a client's `shutdown` line;
    /// otherwise this is "serve forever".)
    pub fn join(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let threads = std::mem::take(&mut *lock_unpoisoned(&self.shared.session_threads));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// The accept loop: enforce the connection limit, spawn session threads.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let transport = Arc::clone(shared.service.transport());
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let active = transport.active_sessions.load(Ordering::Relaxed);
        if active >= shared.config.max_connections as u64 {
            transport.connections_rejected.fetch_add(1, Ordering::Relaxed);
            reject_connection(stream, active, shared.config.max_connections);
            continue;
        }
        transport.connections_accepted.fetch_add(1, Ordering::Relaxed);
        transport.active_sessions.fetch_add(1, Ordering::Relaxed);
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        if let Ok(registered) = stream.try_clone() {
            lock_unpoisoned(&shared.live).insert(id, registered);
        }
        let session_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("bcc-session-{id}"))
            .spawn(move || session_thread(session_shared, id, stream));
        match spawned {
            Ok(handle) => lock_unpoisoned(&shared.session_threads).push(handle),
            Err(_) => {
                // Spawn failure: undo the bookkeeping; the stream drops.
                lock_unpoisoned(&shared.live).remove(&id);
                transport.active_sessions.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Best-effort structured rejection of an over-limit connection. The codec
/// is negotiated from bytes the server has not read yet, so rejections are
/// always newline-framed.
fn reject_connection(mut stream: TcpStream, active: u64, limit: usize) {
    let line = session_error_json(
        None,
        "overloaded",
        &format!("connection limit reached ({active} active, limit {limit})"),
    );
    let _ = LineCodec.write_response(&mut stream, &line);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's thread: run the session, then tear down bookkeeping
/// and propagate `shutdown` to the whole server.
fn session_thread(shared: Arc<Shared>, id: u64, stream: TcpStream) {
    // One request-response per round trip: without TCP_NODELAY, Nagle
    // holds each small response hostage to the peer's delayed ACK
    // (~40 ms per round trip on loopback).
    let _ = stream.set_nodelay(true);
    // The whole session runs under containment: the session layer already
    // catches per-request panics, so anything unwinding to here is a bug
    // in the codec/framing layer itself — log it, but *always* fall
    // through to the bookkeeping below (live-map removal, gauge
    // decrement, socket shutdown), or the server would leak the session
    // slot and `join` could hang on a thread count that never drains.
    let end = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match stream.try_clone() {
            Ok(read_half) => {
                let mut session = Session::for_connection(
                    &shared.service,
                    SessionConfig {
                        id,
                        default_graph: None,
                        default_timeout_ms: shared.config.default_timeout_ms,
                    },
                )
                .with_gates(&shared.admissions);
                // BufWriter turns a codec's prefix + payload + newline
                // writes into one packet; `Session::emit` flushes per
                // response.
                session.run(BufReader::new(read_half), io::BufWriter::new(&stream))
            }
            Err(e) => Err(e),
        }
    })) {
        Ok(end) => end,
        Err(cause) => {
            eprintln!(
                "{{\"event\":\"session_panic\",\"session\":{id},\"message\":{}}}",
                bcc_graph::json::json_string(&panic_message(cause.as_ref()))
            );
            Ok(SessionEnd::Protocol)
        }
    };
    lock_unpoisoned(&shared.live).remove(&id);
    shared
        .service
        .transport()
        .active_sessions
        .fetch_sub(1, Ordering::Relaxed);
    let _ = stream.shutdown(Shutdown::Both);
    if matches!(end, Ok(SessionEnd::Shutdown)) {
        shared.begin_shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn gate(concurrency: usize, depth: usize) -> Admission {
        Admission::new(concurrency, depth, Arc::new(TransportCounters::default()))
    }

    #[test]
    fn admits_up_to_concurrency_then_queues_then_rejects() {
        let adm = gate(2, 1);
        let first = adm.admit(0, Priority::Normal, None).unwrap();
        let _second = adm.admit(1, Priority::Normal, None).unwrap();
        assert_eq!(adm.load(), (2, 0));
        // Third must wait; occupy the single queue slot from a thread.
        std::thread::scope(|s| {
            let (enqueued_tx, enqueued_rx) = mpsc::channel();
            let adm = &adm;
            s.spawn(move || {
                // Deadline long enough to outlive the test, short enough to
                // unblock it if notification logic is broken.
                let deadline = Instant::now() + std::time::Duration::from_secs(5);
                enqueued_tx.send(()).unwrap();
                let permit = adm.admit(2, Priority::Normal, Some(deadline));
                assert!(permit.is_ok(), "queued request dispatches once a slot frees");
            });
            enqueued_rx.recv().unwrap();
            // Busy-wait until the spawned request is actually queued.
            while adm.load().1 != 1 {
                std::thread::yield_now();
            }
            // Queue full: an arrival is rejected immediately.
            let err = adm.admit(3, Priority::Normal, None).unwrap_err();
            assert!(matches!(err, AdmitError::Overloaded(ref m) if m.contains("queue")));
            drop(first); // frees a slot → the queued request dispatches
        });
        assert_eq!(adm.transport.rejected_overloaded.load(Ordering::Relaxed), 1);
        assert_eq!(adm.transport.admitted.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn queued_deadline_expires_without_dispatch() {
        let adm = gate(1, 4);
        let permit = adm.admit(0, Priority::Normal, None).unwrap();
        let deadline = Instant::now() + std::time::Duration::from_millis(30);
        let err = adm.admit(1, Priority::Normal, Some(deadline)).unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExpired);
        assert_eq!(adm.load(), (1, 0), "expired waiter left the queue");
        assert_eq!(adm.transport.admission_timeouts.load(Ordering::Relaxed), 1);
        drop(permit);
    }

    #[test]
    fn priority_outranks_fifo_and_fairness_outranks_chattiness() {
        // Serve session 7 twice so its served count is high, then queue:
        // low(7), high(7), normal(9) — dispatch order must be
        // high(7) [priority wins], normal(9) [fairness: 9 served less],
        // low(7).
        let adm = gate(1, 8);
        for _ in 0..2 {
            drop(adm.admit(7, Priority::Normal, None).unwrap());
        }
        let blocker = adm.admit(0, Priority::Normal, None).unwrap();
        let adm = &adm;
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        std::thread::scope(|s| {
            let spawn_waiter = |tag: &'static str, session: u64, priority: Priority| {
                let tx = order_tx.clone();
                s.spawn(move || {
                    let permit = adm.admit(session, priority, None).unwrap();
                    tx.send(tag).unwrap();
                    // Hold briefly so dispatches serialize observably.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    drop(permit);
                });
            };
            spawn_waiter("low7", 7, Priority::Low);
            while adm.load().1 != 1 {
                std::thread::yield_now();
            }
            spawn_waiter("high7", 7, Priority::High);
            while adm.load().1 != 2 {
                std::thread::yield_now();
            }
            spawn_waiter("normal9", 9, Priority::Normal);
            while adm.load().1 != 3 {
                std::thread::yield_now();
            }
            drop(blocker);
            let first = order_rx.recv().unwrap();
            let second = order_rx.recv().unwrap();
            let third = order_rx.recv().unwrap();
            assert_eq!(
                (first, second, third),
                ("high7", "normal9", "low7"),
                "dispatch order: priority, then least-served session, then FIFO"
            );
        });
    }
}
