//! Wire codecs: how request and response payloads are framed on a byte
//! stream.
//!
//! Payloads themselves are transport-agnostic — request lines in on one
//! side, one-line JSON out on the other — and identical across codecs; a
//! codec only decides where one payload ends and the next begins:
//!
//! * [`LineCodec`] — newline-delimited UTF-8, the historical `bcc serve`
//!   protocol, byte-identical to the pre-refactor loop.
//! * [`BinaryCodec`] — a 4-byte big-endian payload length followed by the
//!   payload bytes, capped at [`MAX_FRAME_LEN`] (16 MiB). Violations are
//!   [`CodecError::Protocol`] errors: the session answers with a structured
//!   error line and closes the connection.
//!
//! The codec is negotiated from the **first byte** of the stream and fixed
//! for the connection's lifetime: a binary frame opens with the high byte
//! of its length, which the 16 MiB cap confines to `0x00` or `0x01` — two
//! bytes no text protocol line ever starts with (they are ASCII control
//! characters, and line one would have to *begin* with one).

use std::io::{self, BufRead, Write};

/// Maximum binary-frame payload length: 16 MiB.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Which framing a stream speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecKind {
    /// Newline-delimited UTF-8 payloads.
    Lines,
    /// 4-byte big-endian length prefix + payload.
    Binary,
}

impl CodecKind {
    /// Selects the codec from the first byte of a stream. `0x00`/`0x01`
    /// can only open a valid (cap-respecting) binary frame; anything else
    /// is text.
    pub fn negotiate(first_byte: u8) -> CodecKind {
        if first_byte <= 0x01 {
            CodecKind::Binary
        } else {
            CodecKind::Lines
        }
    }

    /// Human-readable name (logs, stats).
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::Lines => "lines",
            CodecKind::Binary => "binary",
        }
    }
}

/// Why a codec read failed.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying stream failed (disconnect, reset, ...).
    Io(io::Error),
    /// The peer violated the framing protocol (oversized frame, truncated
    /// frame, non-UTF-8 payload). The session reports a structured error
    /// and closes the connection.
    Protocol(String),
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// One framing discipline. Stateless — both implementations are zero-sized
/// — but the trait keeps the session generic over framing.
pub trait Codec: Send {
    /// The framing this codec implements.
    fn kind(&self) -> CodecKind;

    /// Reads the next request payload. `Ok(None)` is clean end-of-stream
    /// (EOF at a payload boundary); EOF mid-frame is a protocol error.
    /// On success also returns the wire bytes consumed (payload + framing).
    fn read_request(
        &self,
        reader: &mut dyn BufRead,
    ) -> Result<Option<(String, u64)>, CodecError>;

    /// Writes one response payload, returning the wire bytes written.
    fn write_response(&self, writer: &mut dyn Write, payload: &str) -> io::Result<u64>;
}

/// Newline-delimited framing (the historical protocol). Requests may end in
/// `\n` or `\r\n`; responses always end in `\n`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineCodec;

impl Codec for LineCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Lines
    }

    fn read_request(
        &self,
        reader: &mut dyn BufRead,
    ) -> Result<Option<(String, u64)>, CodecError> {
        let mut line = String::new();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some((line, read as u64)))
    }

    fn write_response(&self, writer: &mut dyn Write, payload: &str) -> io::Result<u64> {
        writer.write_all(payload.as_bytes())?;
        writer.write_all(b"\n")?;
        Ok(payload.len() as u64 + 1)
    }
}

/// Length-prefixed binary framing: 4-byte big-endian payload length, then
/// the payload, per direction. Payloads above [`MAX_FRAME_LEN`] are
/// protocol errors.
#[derive(Clone, Copy, Debug, Default)]
pub struct BinaryCodec;

impl BinaryCodec {
    /// Encodes one payload as a standalone frame (client helper; the tests
    /// and the load bench speak the protocol through this).
    pub fn encode_frame(payload: &str) -> Vec<u8> {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload.as_bytes());
        frame
    }
}

impl Codec for BinaryCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Binary
    }

    fn read_request(
        &self,
        reader: &mut dyn BufRead,
    ) -> Result<Option<(String, u64)>, CodecError> {
        // EOF before any prefix byte is a clean end-of-stream; EOF after a
        // partial prefix or mid-payload means the peer died mid-frame. The
        // two must be told apart *before* `read_exact` — its buffer is
        // unspecified on failure — so probe for buffered/readable data first.
        if reader.fill_buf()?.is_empty() {
            return Ok(None);
        }
        let mut prefix = [0u8; 4];
        reader.read_exact(&mut prefix).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                CodecError::Protocol("stream ended inside a frame length prefix".into())
            } else {
                CodecError::Io(e)
            }
        })?;
        let len = u32::from_be_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Protocol(format!(
                "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                CodecError::Protocol(format!(
                    "stream ended inside a {len}-byte frame payload"
                ))
            } else {
                CodecError::Io(e)
            }
        })?;
        let payload = String::from_utf8(payload).map_err(|_| {
            CodecError::Protocol("frame payload is not valid UTF-8".into())
        })?;
        Ok(Some((payload, 4 + len as u64)))
    }

    fn write_response(&self, writer: &mut dyn Write, payload: &str) -> io::Result<u64> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "response payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                    payload.len()
                ),
            ));
        }
        writer.write_all(&(payload.len() as u32).to_be_bytes())?;
        writer.write_all(payload.as_bytes())?;
        Ok(4 + payload.len() as u64)
    }
}

/// The codec selected by [`CodecKind::negotiate`], as a trait object.
pub fn codec_for(kind: CodecKind) -> Box<dyn Codec> {
    match kind {
        CodecKind::Lines => Box::new(LineCodec),
        CodecKind::Binary => Box::new(BinaryCodec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_is_by_first_byte() {
        assert_eq!(CodecKind::negotiate(0x00), CodecKind::Binary);
        assert_eq!(CodecKind::negotiate(0x01), CodecKind::Binary);
        for b in [0x02u8, b'\t', b' ', b'#', b's', b'q', 0xff] {
            assert_eq!(CodecKind::negotiate(b), CodecKind::Lines, "byte {b:#04x}");
        }
    }

    #[test]
    fn line_codec_round_trip_and_crlf() {
        let codec = LineCodec;
        let mut out = Vec::new();
        let wrote = codec.write_response(&mut out, "{\"ok\":true}").unwrap();
        assert_eq!(out, b"{\"ok\":true}\n");
        assert_eq!(wrote, out.len() as u64);

        let mut input: &[u8] = b"search ql=a qr=b\r\nquit\n";
        let (first, n1) = codec.read_request(&mut input).unwrap().unwrap();
        assert_eq!(first, "search ql=a qr=b");
        assert_eq!(n1, 18);
        let (second, _) = codec.read_request(&mut input).unwrap().unwrap();
        assert_eq!(second, "quit");
        assert!(codec.read_request(&mut input).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn binary_codec_round_trip() {
        let codec = BinaryCodec;
        let mut wire = Vec::new();
        let wrote = codec.write_response(&mut wire, "hello").unwrap();
        assert_eq!(wrote, 9);
        assert_eq!(&wire[..4], &[0, 0, 0, 5]);
        let mut stream: &[u8] = &wire;
        let (payload, read) = codec.read_request(&mut stream).unwrap().unwrap();
        assert_eq!(payload, "hello");
        assert_eq!(read, 9);
        assert!(codec.read_request(&mut stream).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn binary_codec_rejects_oversized_and_truncated() {
        let codec = BinaryCodec;
        // Length prefix over the cap: protocol error before any payload read.
        let over = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        let mut stream: &[u8] = &over;
        assert!(matches!(
            codec.read_request(&mut stream),
            Err(CodecError::Protocol(m)) if m.contains("cap")
        ));
        // Truncated prefix.
        let mut stream: &[u8] = &[0x00, 0x00];
        assert!(matches!(
            codec.read_request(&mut stream),
            Err(CodecError::Protocol(m)) if m.contains("length prefix")
        ));
        // Truncated payload.
        let mut stream: &[u8] = &[0x00, 0x00, 0x00, 0x05, b'h', b'i'];
        assert!(matches!(
            codec.read_request(&mut stream),
            Err(CodecError::Protocol(m)) if m.contains("payload")
        ));
        // Non-UTF-8 payload.
        let mut stream: &[u8] = &[0x00, 0x00, 0x00, 0x02, 0xff, 0xfe];
        assert!(matches!(
            codec.read_request(&mut stream),
            Err(CodecError::Protocol(m)) if m.contains("UTF-8")
        ));
    }
}
