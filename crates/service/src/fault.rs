//! Deterministic fault injection + the containment primitives built on it.
//!
//! A [`FaultPlan`] arms named *sites* across the serving stack — the
//! `bcc-obs` [`Phase`] taxonomy (query phases, commit stages) plus four
//! transport sites (codec decode, admission, worker execute, scatter pair
//! dispatch) — with actions selected deterministically by **match count**:
//! every time execution passes an armed site the site's counter advances,
//! and a rule `worker_execute:panic:2:3` fires on matches 2, 3 and 4 (1-
//! based, in arrival order at that site). No randomness, no clocks: the
//! same request sequence perturbs the same requests on every run, which is
//! what lets the chaos differential suite compare a faulted service
//! byte-for-byte against a fault-free twin.
//!
//! The plan is wired through [`crate::ServiceConfig::faults`] as plain
//! strings (`<site>:<action>[:<from>[:<count>]]`), so the CLI (`--fault`),
//! tests, and the load bench all share one grammar. An **empty plan is a
//! single predictable branch** at every site — the disabled configuration
//! measures within noise of a build with no fault layer at all (gated in
//! `load_bench`).
//!
//! The same module hosts the containment-side primitives the plan exists
//! to exercise: [`Breaker`], the per-shard circuit breaker that trips
//! after consecutive sub-query failures and reroutes an open shard's work
//! to the home shard until a half-open probe heals it, and
//! [`lock_unpoisoned`], the crate-wide mutex discipline — a panicking
//! lock holder must never wedge the service, so every shared-state lock
//! recovers the guard from a poisoned mutex instead of unwrapping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bcc_obs::Phase;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Poisoning exists to flag possibly-inconsistent state, but every mutex in
/// this crate guards state that stays consistent under unwind (counters,
/// maps, queues mutated in single steps) — and the containment layer turns
/// worker panics into structured errors rather than process death, so a
/// poisoned lock must degrade to a plain lock, not wedge every later
/// request into a panic cascade.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload as a message: the `&str`/`String` panic
/// message when there is one (the overwhelmingly common case), a fixed
/// fallback otherwise.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker job panicked".to_string()
    }
}

/// A named injection point. The query/commit sites reuse the `bcc-obs`
/// [`Phase`] taxonomy (one site per phase, matched where the service
/// brackets that phase); the transport sites cover the paths a request
/// crosses before and around execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// An engine or commit phase (checked where the service enters it).
    Phase(Phase),
    /// A session decoded one request payload (before dispatch).
    CodecDecode,
    /// A query is about to ask its shard's admission gate for a permit.
    Admission,
    /// A worker picked the job up and is about to run the search.
    WorkerExecute,
    /// A scatter pair sub-query is executing on its owning shard.
    ScatterPair,
}

impl FaultSite {
    /// Distinct sites: the phase taxonomy plus the four transport sites.
    pub const COUNT: usize = Phase::COUNT + 4;

    /// Dense index (phases first, in [`Phase::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            FaultSite::Phase(p) => p.index(),
            FaultSite::CodecDecode => Phase::COUNT,
            FaultSite::Admission => Phase::COUNT + 1,
            FaultSite::WorkerExecute => Phase::COUNT + 2,
            FaultSite::ScatterPair => Phase::COUNT + 3,
        }
    }

    /// Stable snake_case name (the spec grammar's `<site>` token).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Phase(p) => p.name(),
            FaultSite::CodecDecode => "codec_decode",
            FaultSite::Admission => "admission",
            FaultSite::WorkerExecute => "worker_execute",
            FaultSite::ScatterPair => "scatter_pair",
        }
    }

    /// Parses a `<site>` token: a transport site name or any phase name.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        match name {
            "codec_decode" => Some(FaultSite::CodecDecode),
            "admission" => Some(FaultSite::Admission),
            "worker_execute" => Some(FaultSite::WorkerExecute),
            "scatter_pair" => Some(FaultSite::ScatterPair),
            other => Phase::from_name(other).map(FaultSite::Phase),
        }
    }

    /// Every site, index order (tests iterate this to arm all of them).
    pub fn all() -> impl Iterator<Item = FaultSite> {
        Phase::ALL.iter().copied().map(FaultSite::Phase).chain([
            FaultSite::CodecDecode,
            FaultSite::Admission,
            FaultSite::WorkerExecute,
            FaultSite::ScatterPair,
        ])
    }
}

/// What an armed site does when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` at the site — exercises the containment layer.
    Panic,
    /// Sleep this many milliseconds — perturbs timing, not results.
    Delay(u64),
    /// Make the site return a structured `internal` error.
    Error,
}

/// One deterministic rule: fire `action` at `site` for `count` consecutive
/// matches starting at the 1-based match number `from` (`count == 0` ⇒
/// every match from `from` on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRule {
    pub site: FaultSite,
    pub action: FaultAction,
    pub from: u64,
    pub count: u64,
}

impl FaultRule {
    fn fires_at(&self, matched: u64) -> bool {
        matched >= self.from && (self.count == 0 || matched < self.from + self.count)
    }
}

/// A compiled set of [`FaultRule`]s plus per-site match counters.
///
/// `check(site)` is the single hook instrumented code calls; with no rules
/// it is one branch on an immutable bool. Counters only advance for sites
/// that at least one rule arms, so an armed-but-never-firing plan (used by
/// the zero-cost gate) still takes the cheap path at every other site.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Which sites have at least one rule (dense, by site index).
    armed: [bool; FaultSite::COUNT],
    /// Matches observed per armed site (the rule selector).
    matches: [AtomicU64; FaultSite::COUNT],
    /// Total faults injected (all sites, all actions).
    injected: AtomicU64,
}

impl FaultPlan {
    /// Compiles `specs` (`<site>:<action>[:<from>[:<count>]]`, e.g.
    /// `worker_execute:panic:2:3` or `core_decomp:delay5ms`). `from`
    /// defaults to 1 (the first match), `count` to 0 (every match onward).
    pub fn parse<S: AsRef<str>>(specs: &[S]) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for spec in specs {
            let spec = spec.as_ref();
            let mut parts = spec.split(':');
            let site_token = parts.next().unwrap_or("");
            let site = FaultSite::from_name(site_token).ok_or_else(|| {
                format!("fault spec `{spec}`: unknown site `{site_token}`")
            })?;
            let action_token = parts
                .next()
                .ok_or_else(|| format!("fault spec `{spec}`: missing action"))?;
            let action = parse_action(action_token)
                .ok_or_else(|| format!("fault spec `{spec}`: unknown action `{action_token}`"))?;
            let from = match parts.next() {
                None => 1,
                Some(t) => t
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("fault spec `{spec}`: `from` must be a positive integer"))?,
            };
            let count = match parts.next() {
                None => 0,
                Some(t) => t
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec `{spec}`: `count` must be an integer"))?,
            };
            if parts.next().is_some() {
                return Err(format!("fault spec `{spec}`: too many `:` fields"));
            }
            plan.armed[site.index()] = true;
            plan.rules.push(FaultRule { site, action, from, count });
        }
        Ok(plan)
    }

    /// No rules at all — every `check` is a single branch.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total faults injected so far (panics, delays, and error returns).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The match-count hook: advances `site`'s counter and returns the
    /// action the first matching rule selects, if any. Deterministic for a
    /// deterministic arrival order at the site.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        if self.rules.is_empty() || !self.armed[site.index()] {
            return None;
        }
        let matched = self.matches[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let action = self
            .rules
            .iter()
            .find(|r| r.site == site && r.fires_at(matched))
            .map(|r| r.action)?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(action)
    }

    /// Checks `site` and *acts*: panics or sleeps in place; returns `true`
    /// when the caller must produce a structured `internal` error instead.
    /// The common call shape at sites whose failure mode is an error
    /// return — panic and delay need no caller cooperation.
    pub fn perturb(&self, site: FaultSite) -> bool {
        match self.check(site) {
            None => false,
            Some(FaultAction::Panic) => {
                panic!("injected fault: panic at {}", site.name())
            }
            Some(FaultAction::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
            Some(FaultAction::Error) => true,
        }
    }
}

fn parse_action(token: &str) -> Option<FaultAction> {
    match token {
        "panic" => Some(FaultAction::Panic),
        "error" => Some(FaultAction::Error),
        _ => token
            .strip_prefix("delay")
            .and_then(|rest| rest.strip_suffix("ms"))
            .and_then(|ms| ms.parse().ok())
            .map(FaultAction::Delay),
    }
}

/// A circuit breaker's externally visible state (rendered in `shard list`
/// and Prometheus).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything routes normally.
    #[default]
    Closed,
    /// Tripped: work is rerouted away until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome closes or re-opens the breaker.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (`shard list` JSON, Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Dense code for the Prometheus state gauge (0/1/2).
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug, Default)]
struct BreakerInner {
    /// Consecutive failures while closed (reset by any success).
    consecutive: u32,
    /// When the breaker opened; `None` ⇔ closed.
    opened_at: Option<Instant>,
    /// A half-open probe is in flight (admitted, outcome not yet recorded).
    probing: bool,
}

/// A per-shard circuit breaker over scatter sub-query outcomes.
///
/// Closed until `threshold` *consecutive* transient failures (timeouts,
/// worker deaths) are recorded; open for at least `cooldown`, during which
/// [`Breaker::allow`] refuses (callers reroute the work); then one probe
/// is admitted half-open — success closes the breaker, failure re-opens it
/// for another cooldown. `threshold == 0` disables the breaker entirely
/// (always closed, never trips).
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<BreakerInner>,
    opens: AtomicU64,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// cooling down for `cooldown` before each half-open probe.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Breaker {
            threshold,
            cooldown,
            state: Mutex::new(BreakerInner::default()),
            opens: AtomicU64::new(0),
        }
    }

    /// Whether new work may route here. Open + cooldown elapsed admits
    /// exactly one half-open probe (subsequent calls refuse until its
    /// outcome is recorded).
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut inner = lock_unpoisoned(&self.state);
        let Some(opened_at) = inner.opened_at else { return true };
        if inner.probing || opened_at.elapsed() < self.cooldown {
            return false;
        }
        inner.probing = true;
        true
    }

    /// Records a successful outcome: closes the breaker (probe success)
    /// and clears the consecutive-failure run.
    pub fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.state);
        inner.consecutive = 0;
        inner.opened_at = None;
        inner.probing = false;
    }

    /// Records a transient failure: trips the breaker at `threshold`
    /// consecutive failures, and re-opens (restarting the cooldown) when a
    /// half-open probe fails.
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.state);
        if inner.opened_at.is_some() {
            // Open already: a probe failed (or a straggler from before the
            // trip landed) — restart the cooldown, drop the probe claim.
            inner.opened_at = Some(Instant::now());
            inner.probing = false;
            return;
        }
        inner.consecutive += 1;
        if inner.consecutive >= self.threshold {
            inner.opened_at = Some(Instant::now());
            inner.probing = false;
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current state (probe in flight ⇒ half-open).
    pub fn state(&self) -> BreakerState {
        let inner = lock_unpoisoned(&self.state);
        match (inner.opened_at.is_some(), inner.probing) {
            (false, _) => BreakerState::Closed,
            (true, true) => BreakerState::HalfOpen,
            (true, false) => BreakerState::Open,
        }
    }

    /// Times the breaker tripped closed → open (lifetime counter).
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_round_trip_and_index_densely() {
        let mut seen = [false; FaultSite::COUNT];
        for site in FaultSite::all() {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
            assert!(!seen[site.index()], "index collision at {}", site.name());
            seen[site.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(FaultSite::from_name("nope"), None);
    }

    #[test]
    fn spec_grammar_parses_and_rejects() {
        let plan = FaultPlan::parse(&[
            "worker_execute:panic:2:3",
            "core_decomp:delay5ms",
            "admission:error:4",
        ])
        .unwrap();
        assert!(!plan.is_empty());
        for bad in [
            "nope:panic",
            "worker_execute",
            "worker_execute:explode",
            "worker_execute:panic:0",
            "worker_execute:panic:x",
            "worker_execute:panic:1:y",
            "worker_execute:panic:1:2:3",
            "worker_execute:delayms",
            "worker_execute:delay2s",
        ] {
            assert!(FaultPlan::parse(&[bad]).is_err(), "`{bad}` must not parse");
        }
        assert!(FaultPlan::parse::<&str>(&[]).unwrap().is_empty());
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn rules_fire_by_match_count_deterministically() {
        let plan = FaultPlan::parse(&["worker_execute:error:2:2"]).unwrap();
        let fired: Vec<bool> = (0..5)
            .map(|_| plan.check(FaultSite::WorkerExecute).is_some())
            .collect();
        assert_eq!(fired, [false, true, true, false, false]);
        assert_eq!(plan.injected(), 2);
        // Unarmed sites never fire and never advance their counter.
        assert_eq!(plan.check(FaultSite::Admission), None);
    }

    #[test]
    fn open_ended_rule_fires_forever_from_its_start() {
        let plan = FaultPlan::parse(&["admission:error:3"]).unwrap();
        let fired: Vec<bool> =
            (0..6).map(|_| plan.check(FaultSite::Admission).is_some()).collect();
        assert_eq!(fired, [false, false, true, true, true, true]);
    }

    #[test]
    fn perturb_returns_error_flag_and_counts_delays() {
        let plan = FaultPlan::parse(&["admission:error:1:1", "admission:delay1ms:2:1"]).unwrap();
        assert!(plan.perturb(FaultSite::Admission), "error rule → caller errors");
        assert!(!plan.perturb(FaultSite::Admission), "delay rule → no error");
        assert!(!plan.perturb(FaultSite::Admission), "rules exhausted");
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        for site in FaultSite::all() {
            assert_eq!(plan.check(site), None);
            assert!(!plan.perturb(site));
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_probes_half_open() {
        let b = Breaker::new(3, Duration::from_millis(0));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        b.record_success(); // breaks the run
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(); // third consecutive → trip
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Zero cooldown: the next allow() admits exactly one probe.
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe at a time");
        b.record_failure(); // probe fails → open again, cooldown restarts
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow());
        b.record_success(); // probe succeeds → closed
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        assert_eq!(b.opens(), 1, "re-open from half-open is not a new trip");
    }

    #[test]
    fn breaker_cooldown_blocks_probes_until_elapsed() {
        let b = Breaker::new(1, Duration::from_secs(3600));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "cooldown far in the future: no probe");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let b = Breaker::new(0, Duration::from_millis(1));
        for _ in 0..100 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let poisoner = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
