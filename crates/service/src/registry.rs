//! The graph registry: named, immutable graph snapshots shared via `Arc`.
//!
//! This is the offline half of the paper's offline/online split: a graph is
//! loaded (or generated) once, its `BccIndex` (Section 6.3) is built at
//! most once — lazily, on the first request that needs coreness defaults or
//! runs L2P — and every worker thread then reads the same snapshot with no
//! locking on the query path.
//!
//! Snapshots stay immutable under mutation: `add_edge`/`remove_edge` lines
//! *stage* a validated [`GraphDelta`] against the current snapshot, and
//! [`GraphRegistry::commit`] turns it into a **new** snapshot — patching
//! the already-built BCindex in place with the Algorithm 4 cascades and
//! Algorithm 7 butterfly deltas (`bcc_core::patch_index_batch`, which runs
//! them against a mutable adjacency overlay: O(1) graph work per edge, and
//! exactly **one** CSR materialization per commit via the
//! [`GraphDelta::apply`] merge pass) — while in-flight requests keep their
//! `Arc` to the old one. The commit reports the *dirty vertex set*
//! (mutation neighborhoods plus every index entry the cascades moved) so
//! the serving layer can invalidate result-cache entries by community
//! membership instead of clearing wholesale.
//!
//! Publishing the committed snapshot re-checks, under the `graphs` write
//! lock, that the registered generation is still the one the batch was
//! staged and patched against: a concurrent [`GraphRegistry::insert`] of
//! the same name between the commit's read and its write would otherwise be
//! silently clobbered by the committed old-lineage snapshot. On mismatch
//! the commit fails with a structured error and the new registration wins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use bcc_core::BccIndex;
use bcc_graph::{GraphDelta, LabeledGraph, VertexId};
use rustc_hash::FxHashSet;

use crate::fault::lock_unpoisoned;

/// A `BccIndex` plus the wall time its one-off build took.
#[derive(Clone, Debug)]
pub struct BuiltIndex {
    /// The offline index (label coreness + butterfly degrees).
    pub index: BccIndex,
    /// How long `BccIndex::build` ran.
    pub build_time: Duration,
}

/// Process-wide snapshot id source: every `GraphEntry` gets a distinct
/// generation, so cached results can never outlive the snapshot that
/// produced them (re-registering a name yields a new generation and the
/// old entries simply stop matching, aging out of the LRU).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);

/// One registered graph: the immutable `LabeledGraph` plus its lazily built
/// index. Cheap to share (`Arc<GraphEntry>`) across worker threads.
#[derive(Debug)]
pub struct GraphEntry {
    name: String,
    generation: u64,
    graph: LabeledGraph,
    index: OnceLock<BuiltIndex>,
    /// Worker threads for the lazy index build (0 ⇒ one per core) —
    /// stamped by the registry that created the entry.
    index_threads: usize,
}

impl GraphEntry {
    /// Wraps `graph` under `name` (index unbuilt, single-thread build).
    pub fn new(name: impl Into<String>, graph: LabeledGraph) -> Self {
        Self::with_index_threads(name, graph, 1)
    }

    /// Wraps `graph` under `name`, building the index with `threads`
    /// workers when it is first needed (0 ⇒ one per available core). Any
    /// thread count produces a bit-identical index.
    pub fn with_index_threads(
        name: impl Into<String>,
        graph: LabeledGraph,
        threads: usize,
    ) -> Self {
        GraphEntry {
            name: name.into(),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            graph,
            index: OnceLock::new(),
            index_threads: threads,
        }
    }

    /// Wraps `graph` with an already-built (patched) index — the commit
    /// path: the new snapshot inherits the old snapshot's index, updated in
    /// place, so no request ever pays a rebuild.
    fn with_built(name: String, graph: LabeledGraph, built: BuiltIndex, threads: usize) -> Self {
        let entry = GraphEntry::with_index_threads(name, graph, threads);
        entry.index.set(built).expect("fresh OnceLock accepts exactly one value");
        entry
    }

    /// The registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process-unique snapshot id (part of every cache key).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shared immutable graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// The index, building it on first use. Concurrent first callers may
    /// race the build; `OnceLock` keeps exactly one winner and the losers'
    /// work is discarded (bounded by one redundant build per graph).
    pub fn index(&self) -> &BuiltIndex {
        self.index.get_or_init(|| {
            let started = Instant::now();
            let index = BccIndex::build_with_threads(&self.graph, self.index_threads);
            BuiltIndex { index, build_time: started.elapsed() }
        })
    }

    /// The index if some request already forced its build.
    pub fn index_if_built(&self) -> Option<&BuiltIndex> {
        self.index.get()
    }
}

/// Edge changes staged for one graph, pinned to the snapshot generation
/// they were validated against.
struct PendingDelta {
    generation: u64,
    delta: GraphDelta,
}

/// What [`GraphRegistry::commit`] produced.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The new snapshot entry (already registered under the old name).
    pub entry: Arc<GraphEntry>,
    /// The replaced snapshot's generation (cache keys carrying it are the
    /// candidates for invalidation/rekeying).
    pub old_generation: u64,
    /// Edge changes applied.
    pub applied: usize,
    /// Vertices whose search-relevant state moved: the mutation endpoints,
    /// their pre/post neighborhoods, and every index entry the Algorithm 4
    /// cascades / Algorithm 7 deltas changed. `None` when the old snapshot's
    /// index was never built — no cascade information exists, so callers
    /// must treat every vertex of the graph as dirty.
    pub dirty: Option<FxHashSet<u32>>,
    /// Wall time of the one CSR merge pass splicing the staged delta onto
    /// the old snapshot (the `overlay_apply` commit stage).
    pub time_overlay_apply: Duration,
    /// Wall time of the Algorithm 4 coreness cascades across the batch.
    /// Zero on the lazy path (no index to patch ⇒ no cascades ran).
    pub time_cascade: Duration,
    /// Wall time of the Algorithm 7 butterfly-degree (χ) delta updates
    /// across the batch. Zero on the lazy path.
    pub time_chi_delta: Duration,
}

impl CommitOutcome {
    /// True when the BCindex was patched in place rather than left unbuilt.
    pub fn index_patched(&self) -> bool {
        self.dirty.is_some()
    }
}

/// A named collection of [`GraphEntry`]s behind a `RwLock` — writes happen
/// only at registration time and commit time, reads are a brief map lookup
/// per request — plus the per-graph staging area for edge mutations.
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Arc<GraphEntry>>>,
    pending: Mutex<HashMap<String, PendingDelta>>,
    /// Build-thread count stamped onto every entry this registry creates
    /// (0 ⇒ one per core). Defaults to 1 — sequential, the seed behavior;
    /// the service layer passes its own knob through.
    index_threads: usize,
    /// The shard routing table to notify on every publish (insert or
    /// commit), so explicit placement pins track the live generation.
    /// `None` for registries used outside a sharded service.
    placement: Mutex<Option<Arc<crate::placement::ShardMap>>>,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::with_index_threads(1)
    }
}

impl GraphRegistry {
    /// An empty registry (single-thread index builds).
    pub fn new() -> Self {
        GraphRegistry::default()
    }

    /// An empty registry whose entries build their BCindex with `threads`
    /// workers (0 ⇒ one per available core). Parallelism only moves the
    /// build's wall time: the index bits are identical at any setting.
    pub fn with_index_threads(threads: usize) -> Self {
        GraphRegistry {
            graphs: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            index_threads: threads,
            placement: Mutex::new(None),
        }
    }

    /// The build-thread count stamped onto new entries.
    pub fn index_threads(&self) -> usize {
        self.index_threads
    }

    /// Attaches the shard routing table: every publish (insert or commit)
    /// refreshes the generation pin on the published name's explicit
    /// assignment, so `shard list` always reflects the live snapshot and a
    /// re-registration never strands a placement decision on a dead
    /// generation.
    pub fn set_placement(&self, placement: Arc<crate::placement::ShardMap>) {
        *lock_unpoisoned(&self.placement) = Some(placement);
    }

    /// Refreshes the routing table's generation pin for a just-published
    /// snapshot (no-op with no placement attached).
    fn notify_placement(&self, name: &str, generation: u64) {
        if let Some(placement) = lock_unpoisoned(&self.placement).as_ref() {
            placement.note_registration(name, generation);
        }
    }

    /// Registers `graph` under `name`, replacing any previous entry with
    /// that name (in-flight requests keep their `Arc` to the old snapshot).
    pub fn insert(&self, name: impl Into<String>, graph: LabeledGraph) -> Arc<GraphEntry> {
        let name = name.into();
        let entry =
            Arc::new(GraphEntry::with_index_threads(name.clone(), graph, self.index_threads));
        self.graphs
            .write()
            .unwrap()
            .insert(name, Arc::clone(&entry));
        self.notify_placement(entry.name(), entry.generation());
        entry
    }

    /// Reads a graph file (`bcc-graph` text format) and registers it.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: &str,
    ) -> Result<Arc<GraphEntry>, String> {
        let graph = bcc_graph::io::read_graph_file(path).map_err(|e| e.to_string())?;
        Ok(self.insert(name, graph))
    }

    /// Generates one of the named paper networks and registers it.
    pub fn generate(
        &self,
        name: impl Into<String>,
        network: &str,
        scale: f64,
    ) -> Result<Arc<GraphEntry>, String> {
        let spec = match network {
            "baidu1" => bcc_datasets::baidu1(scale),
            "baidu2" => bcc_datasets::baidu2(scale),
            "amazon" => bcc_datasets::amazon(scale),
            "dblp" => bcc_datasets::dblp(scale),
            "youtube" => bcc_datasets::youtube(scale),
            "livejournal" => bcc_datasets::livejournal(scale),
            "orkut" => bcc_datasets::orkut(scale),
            other => return Err(format!("unknown network `{other}`")),
        };
        Ok(self.insert(name, spec.build().graph))
    }

    /// The entry registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs.read().unwrap().get(name).cloned()
    }

    /// Stages an edge insert (`insert = true`) or removal against the given
    /// snapshot `entry`, validating it against that snapshot plus everything
    /// already staged for it. Returns the number of changes now pending.
    ///
    /// The caller passes the exact `GraphEntry` it resolved the endpoints
    /// on: the staged batch is generation-pinned to *that* snapshot, so a
    /// concurrent re-registration can never smuggle ids resolved on one
    /// id space into a batch validated against another — [`commit`] rejects
    /// the whole batch if the registered generation moved
    /// ([`GraphRegistry::commit`]). Staging left over from a different
    /// generation is discarded on first touch.
    pub fn stage_edge(
        &self,
        entry: &GraphEntry,
        u: VertexId,
        v: VertexId,
        insert: bool,
    ) -> Result<usize, String> {
        let name = entry.name();
        let mut pending = lock_unpoisoned(&self.pending);
        let slot = pending
            .entry(name.to_owned())
            .or_insert_with(|| PendingDelta {
                generation: entry.generation(),
                delta: GraphDelta::new(),
            });
        if slot.generation != entry.generation() {
            *slot = PendingDelta { generation: entry.generation(), delta: GraphDelta::new() };
        }
        let staged = if insert {
            slot.delta.stage_insert(entry.graph(), u, v)
        } else {
            slot.delta.stage_remove(entry.graph(), u, v)
        };
        staged.map_err(|e| e.to_string())?;
        Ok(slot.delta.len())
    }

    /// Number of changes staged (and not yet committed) for `name`.
    pub fn pending_len(&self, name: &str) -> usize {
        self.pending
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, |slot| slot.delta.len())
    }

    /// Applies every change staged for `name`: patches the BCindex in place
    /// over a mutable adjacency overlay (Algorithm 4 cascades for coreness,
    /// Algorithm 7 deltas for butterfly degrees; `bcc_core::patch_index_batch`)
    /// when it had been built, splices the final snapshot in **one** CSR
    /// merge pass, and registers it under a fresh generation. In-flight
    /// requests keep their `Arc` to the old snapshot; results they cache
    /// afterwards carry the dead generation and age out of the LRU.
    ///
    /// Fails — dropping the committed snapshot — if `name` was re-registered
    /// between the commit's read of the entry and the publish: the live
    /// generation is re-checked under the write lock (see module docs).
    pub fn commit(&self, name: &str) -> Result<CommitOutcome, String> {
        let entry = self
            .get(name)
            .ok_or_else(|| format!("no graph registered as `{name}`"))?;
        self.commit_entry(entry, || ())
    }

    /// The commit body, parameterized for deterministic race tests: `entry`
    /// is the snapshot the caller read (tests pass a stale one to stand in
    /// a concurrent re-registration), and `before_publish` runs after
    /// patching but before the publish re-check — the other race window.
    fn commit_entry(
        &self,
        entry: Arc<GraphEntry>,
        before_publish: impl FnOnce(),
    ) -> Result<CommitOutcome, String> {
        let name = entry.name();
        let staged = {
            let mut pending = lock_unpoisoned(&self.pending);
            let Some(slot) = pending.get(name) else {
                return Err(format!("nothing staged for graph `{name}`"));
            };
            if slot.generation != entry.generation() {
                // Two distinct mismatches. If the slot is pinned to the
                // *currently live* registration, this commit simply read a
                // snapshot that has since been replaced — the batch belongs
                // to the new lineage and must be left for it, not consumed.
                // Otherwise the slot is pinned to a dead generation —
                // staging is optimistic-concurrency: a batch is validated
                // against exactly one snapshot, so once that snapshot was
                // replaced (by a re-registration or a sibling commit) the
                // batch cannot soundly apply and is dropped, as
                // [`GraphRegistry::stage_edge`] would on next touch.
                let live = self.graphs.read().unwrap().get(name).map(|e| e.generation());
                if live == Some(slot.generation) {
                    return Err(format!(
                        "graph `{name}` was re-registered before commit; staged changes \
                         kept for the new snapshot"
                    ));
                }
                pending.remove(name);
                return Err(format!(
                    "graph `{name}` moved to a new snapshot after staging (re-registered \
                     or committed concurrently); staged changes dropped"
                ));
            }
            pending.remove(name).expect("slot checked present under the lock")
        };
        let applied = staged.delta.len();
        let old_generation = entry.generation();
        let (new_entry, dirty, time_overlay_apply, time_cascade, time_chi_delta) =
            match entry.index_if_built() {
                Some(built) => {
                    let started = Instant::now();
                    let mut index = built.index.clone();
                    // O(1) graph work per staged edge: the cascades read the
                    // overlay, never an intermediate snapshot. The only CSR
                    // materialization of the whole commit is the one merge
                    // pass below — no clone of the base graph either (the
                    // batch API borrows it).
                    let report = bcc_core::patch_index_batch(
                        &mut index,
                        entry.graph(),
                        staged.delta.changes(),
                    );
                    let apply_started = Instant::now();
                    let graph = staged.delta.apply(entry.graph());
                    let time_overlay_apply = apply_started.elapsed();
                    let built = BuiltIndex {
                        index,
                        // Cumulative offline investment: the original build
                        // plus every patch since.
                        build_time: built.build_time + started.elapsed(),
                    };
                    let entry =
                        GraphEntry::with_built(name.to_owned(), graph, built, entry.index_threads);
                    (
                        Arc::new(entry),
                        Some(report.dirty),
                        time_overlay_apply,
                        report.time_cascade,
                        report.time_chi_delta,
                    )
                }
                None => {
                    // No index yet: splice the whole batch in one pass and
                    // stay lazy. No cascade ran, so no scoped dirty set
                    // exists and the cascade/χ stage times are zero.
                    let apply_started = Instant::now();
                    let graph = staged.delta.apply(entry.graph());
                    let time_overlay_apply = apply_started.elapsed();
                    let entry = GraphEntry::with_index_threads(
                        name.to_owned(),
                        graph,
                        entry.index_threads,
                    );
                    (Arc::new(entry), None, time_overlay_apply, Duration::ZERO, Duration::ZERO)
                }
            };
        before_publish();
        let mut graphs = self.graphs.write().unwrap();
        match graphs.get(name) {
            Some(live) if live.generation() == old_generation => {
                graphs.insert(name.to_owned(), Arc::clone(&new_entry));
            }
            _ => {
                return Err(format!(
                    "graph `{name}` moved to a new snapshot during commit (re-registered \
                     or committed concurrently); committed snapshot discarded"
                ));
            }
        }
        drop(graphs);
        self.notify_placement(name, new_entry.generation());
        Ok(CommitOutcome {
            entry: new_entry,
            old_generation,
            applied,
            dirty,
            time_overlay_apply,
            time_cascade,
            time_chi_delta,
        })
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    fn tiny_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("A");
        let y = b.add_vertex("B");
        b.add_edge(x, y);
        b.build()
    }

    #[test]
    fn insert_get_names() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        reg.insert("g1", tiny_graph());
        reg.insert("g2", tiny_graph());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["g1".to_string(), "g2".to_string()]);
        assert_eq!(reg.get("g1").unwrap().graph().vertex_count(), 2);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn index_is_lazy_and_cached() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("g", tiny_graph());
        assert!(entry.index_if_built().is_none(), "index must not build eagerly");
        let first = entry.index() as *const BuiltIndex;
        let second = entry.index() as *const BuiltIndex;
        assert_eq!(first, second, "index built exactly once");
        assert!(entry.index_if_built().is_some());
    }

    #[test]
    fn generate_registers_planted_networks() {
        let reg = GraphRegistry::new();
        let entry = reg.generate("d", "dblp", 0.05).unwrap();
        assert!(entry.graph().vertex_count() > 0);
        assert!(reg.generate("bad", "nope", 1.0).is_err());
    }

    #[test]
    fn stage_and_commit_patch_a_built_index() {
        let reg = GraphRegistry::new();
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("B")).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                b.add_edge(a[i], a[j]);
                b.add_edge(c[i], c[j]);
            }
        }
        b.add_edge(a[0], c[0]);
        let entry = reg.insert("g", b.build());
        entry.index(); // force the build so commit takes the patch path

        assert_eq!(reg.stage_edge(&entry, a[0], c[1], true).unwrap(), 1);
        assert_eq!(reg.stage_edge(&entry, a[1], c[0], true).unwrap(), 2);
        assert_eq!(reg.pending_len("g"), 2);
        // Invalid stagings are rejected without polluting the batch.
        assert!(reg.stage_edge(&entry, a[0], a[1], true).unwrap_err().contains("exists"));
        assert!(reg
            .stage_edge(&entry, a[0], c[2], false)
            .unwrap_err()
            .contains("does not exist"));

        let outcome = reg.commit("g").unwrap();
        assert_eq!(outcome.applied, 2);
        assert!(outcome.index_patched());
        assert_ne!(outcome.entry.generation(), outcome.old_generation);
        assert_eq!(reg.pending_len("g"), 0);
        // The registered entry is the new snapshot, and its patched index
        // is bit-identical to a from-scratch build.
        let current = reg.get("g").unwrap();
        assert_eq!(current.generation(), outcome.entry.generation());
        assert_eq!(current.graph().edge_count(), 9);
        let patched = &current.index_if_built().expect("index carried over").index;
        let rebuilt = BccIndex::build(current.graph());
        assert_eq!(patched.label_coreness, rebuilt.label_coreness);
        assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree);
        let dirty = outcome.dirty.as_ref().unwrap();
        assert!(dirty.contains(&a[0].0) && dirty.contains(&c[1].0));
    }

    #[test]
    fn commit_without_an_index_stays_lazy() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("g", tiny_graph());
        assert!(entry.index_if_built().is_none());
        reg.stage_edge(&entry, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();
        let outcome = reg.commit("g").unwrap();
        assert!(!outcome.index_patched());
        assert!(outcome.dirty.is_none());
        assert!(outcome.entry.index_if_built().is_none(), "still lazy");
        assert_eq!(outcome.entry.graph().edge_count(), 0);
    }

    #[test]
    fn commit_guards() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("g", tiny_graph());
        assert!(reg.commit("g").unwrap_err().contains("nothing staged"));
        assert!(reg.commit("missing").unwrap_err().contains("no graph registered"));
        // Re-registration between staging and commit invalidates the batch.
        reg.stage_edge(&entry, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();
        reg.insert("g", tiny_graph());
        assert!(reg.commit("g").unwrap_err().contains("re-registered"));
        assert_eq!(reg.pending_len("g"), 0, "the stale batch was dropped");
        // Staging pinned to a replaced snapshot also cannot commit: the pin
        // comes from the entry the endpoints were resolved on, never from a
        // racing re-registration's id space.
        let stale = reg.insert("g", tiny_graph());
        reg.insert("g", tiny_graph());
        reg.stage_edge(&stale, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();
        assert!(reg.commit("g").unwrap_err().contains("re-registered"));
    }

    #[test]
    fn commit_loses_to_a_concurrent_reregistration() {
        // The race the publish re-check closes: a `register` of the same
        // name lands between commit's read of the entry and its write. The
        // hook makes the interleaving deterministic while keeping the
        // re-registration on its own thread, like a real client.
        let reg = Arc::new(GraphRegistry::new());
        let entry = reg.insert("g", tiny_graph());
        entry.index(); // patched path
        reg.stage_edge(&entry, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();

        let racer = Arc::clone(&reg);
        let err = reg
            .commit_entry(Arc::clone(&entry), move || {
                std::thread::spawn(move || {
                    racer.insert("g", tiny_graph());
                })
                .join()
                .expect("re-registration thread");
            })
            .unwrap_err();
        assert!(err.contains("moved to a new snapshot during commit"), "{err}");

        // The concurrent registration won: its snapshot is live (edge intact,
        // not the committed removal) and nothing is left staged.
        let live = reg.get("g").unwrap();
        assert_eq!(live.graph().edge_count(), 1, "committed old-lineage snapshot discarded");
        assert_ne!(live.generation(), entry.generation());
        assert_eq!(reg.pending_len("g"), 0);
        // The next stage/commit cycle against the new snapshot succeeds.
        reg.stage_edge(&live, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();
        let outcome = reg.commit("g").unwrap();
        assert_eq!(outcome.entry.graph().edge_count(), 0);
    }

    #[test]
    fn stale_commit_never_consumes_a_newer_registrations_batch() {
        // The other half of the race: commit read its entry *before* a
        // re-registration, and a third client has already staged changes
        // against the new snapshot. The stale commit must fail without
        // eating that batch.
        let reg = GraphRegistry::new();
        let stale = reg.insert("g", tiny_graph());
        let fresh = reg.insert("g", tiny_graph());
        reg.stage_edge(&fresh, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();

        let err = reg.commit_entry(Arc::clone(&stale), || ()).unwrap_err();
        assert!(err.contains("re-registered before commit"), "{err}");
        assert_eq!(reg.pending_len("g"), 1, "the new lineage's batch survives");
        // The rightful owner commits it cleanly.
        let outcome = reg.commit("g").unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.entry.graph().edge_count(), 0);

        // A slot pinned to a *dead* generation is still dropped (the
        // pre-existing cleanup semantics).
        let stale2 = reg.insert("g", tiny_graph());
        reg.stage_edge(&stale2, bcc_graph::VertexId(0), bcc_graph::VertexId(1), false).unwrap();
        reg.insert("g", tiny_graph());
        let err = reg.commit("g").unwrap_err();
        assert!(err.contains("staged changes dropped"), "{err}");
        assert_eq!(reg.pending_len("g"), 0);
    }

    #[test]
    fn batched_commit_patch_equals_rebuild() {
        // Several staged changes, one commit: the batch-patched index must
        // be bit-identical to a from-scratch build on the final snapshot,
        // with the dirty set covering all mutation neighborhoods.
        let reg = GraphRegistry::new();
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(a[i], a[j]);
                b.add_edge(c[i], c[j]);
            }
        }
        for &x in &a[..2] {
            for &y in &c[..2] {
                b.add_edge(x, y);
            }
        }
        let entry = reg.insert("g", b.build());
        entry.index();
        reg.stage_edge(&entry, a[0], a[1], false).unwrap();
        reg.stage_edge(&entry, a[2], c[2], true).unwrap();
        reg.stage_edge(&entry, a[0], c[0], false).unwrap();
        reg.stage_edge(&entry, a[0], a[1], true).unwrap();
        let outcome = reg.commit("g").unwrap();
        assert_eq!(outcome.applied, 4);
        let patched = &outcome.entry.index_if_built().unwrap().index;
        let rebuilt = BccIndex::build(outcome.entry.graph());
        assert_eq!(patched.label_coreness, rebuilt.label_coreness);
        assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree);
        assert_eq!(patched.delta_max, rebuilt.delta_max);
        assert_eq!(patched.chi_max, rebuilt.chi_max);
        let dirty = outcome.dirty.as_ref().unwrap();
        for v in [a[0], a[1], a[2], c[0], c[2]] {
            assert!(dirty.contains(&v.0), "endpoint {v} must be dirty");
        }
    }

    #[test]
    fn concurrent_index_builds_converge() {
        let entry = Arc::new(GraphEntry::new("g", tiny_graph()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let entry = Arc::clone(&entry);
            handles.push(std::thread::spawn(move || {
                entry.index().index.delta_max
            }));
        }
        let values: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }
}
