//! The graph registry: named, immutable graph snapshots shared via `Arc`.
//!
//! This is the offline half of the paper's offline/online split: a graph is
//! loaded (or generated) once, its `BccIndex` (Section 6.3) is built at
//! most once — lazily, on the first request that needs coreness defaults or
//! runs L2P — and every worker thread then reads the same snapshot with no
//! locking on the query path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use bcc_core::BccIndex;
use bcc_graph::LabeledGraph;

/// A `BccIndex` plus the wall time its one-off build took.
#[derive(Clone, Debug)]
pub struct BuiltIndex {
    /// The offline index (label coreness + butterfly degrees).
    pub index: BccIndex,
    /// How long `BccIndex::build` ran.
    pub build_time: Duration,
}

/// Process-wide snapshot id source: every `GraphEntry` gets a distinct
/// generation, so cached results can never outlive the snapshot that
/// produced them (re-registering a name yields a new generation and the
/// old entries simply stop matching, aging out of the LRU).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);

/// One registered graph: the immutable `LabeledGraph` plus its lazily built
/// index. Cheap to share (`Arc<GraphEntry>`) across worker threads.
#[derive(Debug)]
pub struct GraphEntry {
    name: String,
    generation: u64,
    graph: LabeledGraph,
    index: OnceLock<BuiltIndex>,
}

impl GraphEntry {
    /// Wraps `graph` under `name` (index unbuilt).
    pub fn new(name: impl Into<String>, graph: LabeledGraph) -> Self {
        GraphEntry {
            name: name.into(),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            graph,
            index: OnceLock::new(),
        }
    }

    /// The registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process-unique snapshot id (part of every cache key).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shared immutable graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// The index, building it on first use. Concurrent first callers may
    /// race the build; `OnceLock` keeps exactly one winner and the losers'
    /// work is discarded (bounded by one redundant build per graph).
    pub fn index(&self) -> &BuiltIndex {
        self.index.get_or_init(|| {
            let started = Instant::now();
            let index = BccIndex::build(&self.graph);
            BuiltIndex { index, build_time: started.elapsed() }
        })
    }

    /// The index if some request already forced its build.
    pub fn index_if_built(&self) -> Option<&BuiltIndex> {
        self.index.get()
    }
}

/// A named collection of [`GraphEntry`]s behind a `RwLock` — writes happen
/// only at registration time, reads are a brief map lookup per request.
#[derive(Default)]
pub struct GraphRegistry {
    graphs: RwLock<HashMap<String, Arc<GraphEntry>>>,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GraphRegistry::default()
    }

    /// Registers `graph` under `name`, replacing any previous entry with
    /// that name (in-flight requests keep their `Arc` to the old snapshot).
    pub fn insert(&self, name: impl Into<String>, graph: LabeledGraph) -> Arc<GraphEntry> {
        let name = name.into();
        let entry = Arc::new(GraphEntry::new(name.clone(), graph));
        self.graphs
            .write()
            .unwrap()
            .insert(name, Arc::clone(&entry));
        entry
    }

    /// Reads a graph file (`bcc-graph` text format) and registers it.
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: &str,
    ) -> Result<Arc<GraphEntry>, String> {
        let graph = bcc_graph::io::read_graph_file(path).map_err(|e| e.to_string())?;
        Ok(self.insert(name, graph))
    }

    /// Generates one of the named paper networks and registers it.
    pub fn generate(
        &self,
        name: impl Into<String>,
        network: &str,
        scale: f64,
    ) -> Result<Arc<GraphEntry>, String> {
        let spec = match network {
            "baidu1" => bcc_datasets::baidu1(scale),
            "baidu2" => bcc_datasets::baidu2(scale),
            "amazon" => bcc_datasets::amazon(scale),
            "dblp" => bcc_datasets::dblp(scale),
            "youtube" => bcc_datasets::youtube(scale),
            "livejournal" => bcc_datasets::livejournal(scale),
            "orkut" => bcc_datasets::orkut(scale),
            other => return Err(format!("unknown network `{other}`")),
        };
        Ok(self.insert(name, spec.build().graph))
    }

    /// The entry registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.graphs.read().unwrap().get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    fn tiny_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("A");
        let y = b.add_vertex("B");
        b.add_edge(x, y);
        b.build()
    }

    #[test]
    fn insert_get_names() {
        let reg = GraphRegistry::new();
        assert!(reg.is_empty());
        reg.insert("g1", tiny_graph());
        reg.insert("g2", tiny_graph());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["g1".to_string(), "g2".to_string()]);
        assert_eq!(reg.get("g1").unwrap().graph().vertex_count(), 2);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn index_is_lazy_and_cached() {
        let reg = GraphRegistry::new();
        let entry = reg.insert("g", tiny_graph());
        assert!(entry.index_if_built().is_none(), "index must not build eagerly");
        let first = entry.index() as *const BuiltIndex;
        let second = entry.index() as *const BuiltIndex;
        assert_eq!(first, second, "index built exactly once");
        assert!(entry.index_if_built().is_some());
    }

    #[test]
    fn generate_registers_planted_networks() {
        let reg = GraphRegistry::new();
        let entry = reg.generate("d", "dblp", 0.05).unwrap();
        assert!(entry.graph().vertex_count() > 0);
        assert!(reg.generate("bad", "nope", 1.0).is_err());
    }

    #[test]
    fn concurrent_index_builds_converge() {
        let entry = Arc::new(GraphEntry::new("g", tiny_graph()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let entry = Arc::clone(&entry);
            handles.push(std::thread::spawn(move || {
                entry.index().index.delta_max
            }));
        }
        let values: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }
}
