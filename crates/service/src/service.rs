//! The query-serving façade: registry + pool + cache behind one type.
//!
//! [`BccService`] amortizes the offline work (graph load, `BccIndex` build)
//! across many online queries, the offline/online split of Section 6.3:
//!
//! * requests resolve and normalize on the calling thread (cheap);
//! * cache hits return immediately;
//! * misses execute on the worker pool against the shared `Arc` snapshot,
//!   then populate the LRU result cache — even when the caller's deadline
//!   has already expired, so abandoned work still warms the cache.
//!
//! Symmetric queries (`{q_l, q_r}` vs `{q_r, q_l}`) normalize to one cache
//! key *and* one execution order, so answers are reproducible regardless of
//! how the pair was written, how many workers run, or what the cache held.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bcc_core::{
    BccParams, BccQuery, L2pBcc, LpBcc, MbccParams, MbccQuery, MultiLabelBcc, OnlineBcc,
};
use bcc_graph::{LabeledGraph, VertexId};

use crate::cache::{CacheCounters, LruCache};
use crate::fault::{lock_unpoisoned, FaultPlan, FaultSite};
use crate::metrics::{Metrics, Verb};
use crate::placement::{ShardMap, ShardSnapshot};
use crate::pool::{JobError, Ticket};
use crate::registry::{GraphEntry, GraphRegistry};
use crate::request::{
    parse_line, CacheKey, ErrorKind, Method, MutateOp, MutateRequest, ParsedLine, QueryKind,
    QueryRequest, RequestError, ShardCmd,
};
use crate::response::{
    json_string, outcome_from_result, CommitSummary, MutateOutcome, MutateResponse, PairOutcome,
    QueryOutcome, QueryResponse,
};
use crate::scatter::{self, PairJob, PairSource, ScatterWait};

/// `query_threads` sentinel: resolve the per-query thread count
/// adaptively, per query — sequential on graphs below
/// [`ADAPTIVE_PARALLEL_MIN_VERTICES`] (where stage-parallel overhead
/// dominates), one thread per core at or above it.
pub const QUERY_THREADS_AUTO: usize = usize::MAX;

/// The adaptive cutover: graphs with at least this many vertices get
/// parallel per-query stages under [`QUERY_THREADS_AUTO`]. Chosen from the
/// PR-8 measurements — below a few tens of thousands of vertices the
/// frontier/peel chunks are too small to amortize thread handoff.
const ADAPTIVE_PARALLEL_MIN_VERTICES: usize = 1 << 15;

/// Bounded gather-side re-execution of a scatter pair that failed
/// internally (worker panic, injected fault): up to this many retries,
/// with 1 ms / 2 ms backoff, always inside the request's deadline budget.
const MAX_PAIR_RETRIES: u32 = 2;

/// Tunables for a [`BccService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker pools (shards). Each registered graph routes to one shard —
    /// explicit `shard assign` or hash of its name — and a multi-label
    /// `msearch` scatters label-pair sub-queries across shards. 0 or 1 ⇒
    /// the classic single-pool topology.
    pub shards: usize,
    /// Worker threads **per shard** (0 ⇒ one per available core).
    pub workers: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache weight budget: the summed member count of cached
    /// communities may not exceed this (LRU entries are evicted until it
    /// fits; the newest entry always survives). 0 = no weight budget
    /// (count-capacity only), the historical behavior.
    pub cache_weight_cap: usize,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Registry key used when a request names no graph.
    pub default_graph: String,
    /// Threads for the offline BCindex build of registered graphs (0 ⇒ one
    /// per available core — the default: the build is the cold-start cost
    /// of every `register` and first L2P query, and any thread count yields
    /// a bit-identical index).
    pub index_threads: usize,
    /// Whether the gated metrics tier is live: latency/phase/queue-wait
    /// histograms and the slow-query log. Per-verb request counters (and
    /// responses!) are identical either way — telemetry is out-of-band.
    pub metrics: bool,
    /// Queries slower than this are counted and logged (one JSON line to
    /// stderr) when metrics are enabled. 0 flags everything measurable.
    pub slow_query_ms: u64,
    /// Worker threads *inside* each search's stages (BFS distances,
    /// label-core reduction, butterfly recounts): `1` keeps queries
    /// sequential — the pool already parallelizes *across* queries —
    /// while `> 1` (or `0`, all cores) cuts single-query latency on big
    /// graphs. The default, [`QUERY_THREADS_AUTO`], picks per query:
    /// sequential below the adaptive vertex threshold, all cores at or
    /// above it. Responses are byte-identical at every setting.
    pub query_threads: usize,
    /// Deterministic fault-injection rules, one spec per entry
    /// (`<site>:<action>[:<from>[:<count>]]` — see [`FaultPlan::parse`]).
    /// Empty (the default, and the only production configuration) compiles
    /// the injection points down to a single never-taken branch.
    pub faults: Vec<String>,
    /// Consecutive sub-query failures that trip a shard's circuit breaker
    /// open (0 disables the breakers entirely).
    pub breaker_threshold: u32,
    /// How long an open breaker blocks a shard before admitting one
    /// half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 1,
            workers: 0,
            cache_capacity: 4096,
            cache_weight_cap: 0,
            default_timeout_ms: None,
            default_graph: "default".into(),
            index_threads: 0,
            metrics: true,
            slow_query_ms: 250,
            query_threads: QUERY_THREADS_AUTO,
            faults: Vec::new(),
            breaker_threshold: 5,
            breaker_cooldown_ms: 250,
        }
    }
}

/// Monotonic service counters (one consistent snapshot).
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Query requests accepted (parsed and submitted).
    pub requests: u64,
    /// Searches actually executed on the pool (≠ requests: hits and
    /// pre-deadline drops skip execution).
    pub searches_executed: u64,
    /// Result-cache counters.
    pub cache: CacheCounters,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Requests whose deadline expired before a result was delivered.
    pub timeouts: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Requests whose graph or vertex tokens did not resolve.
    pub resolve_errors: u64,
    /// Executed searches that returned a `SearchError`.
    pub search_errors: u64,
    /// Edge changes successfully staged (`add_edge`/`remove_edge`).
    pub mutations_staged: u64,
    /// Successful `commit`s.
    pub commits: u64,
    /// Mutation lines that failed (staging or commit).
    pub mutate_errors: u64,
    /// Cache entries dropped by community-scoped commit invalidation.
    pub cache_invalidated: u64,
    /// Warm cache entries rekeyed across a commit (still hits afterwards).
    pub cache_retained: u64,
    /// Worker threads.
    pub workers: usize,
    /// Registered graph names, sorted.
    pub graphs: Vec<String>,
    /// Wall time summed over executed searches.
    pub total_search_time: Duration,
    /// TCP connections accepted into a session.
    pub connections_accepted: u64,
    /// TCP connections turned away at the connection limit.
    pub connections_rejected: u64,
    /// Sessions currently open (a gauge, not a counter).
    pub active_sessions: u64,
    /// Requests the admission controller dispatched to the pool.
    pub admitted: u64,
    /// Requests rejected with a structured `overloaded` error (queue full).
    pub rejected_overloaded: u64,
    /// Requests whose deadline expired while waiting in the admission queue.
    pub admission_timeouts: u64,
    /// Request bytes read off sessions (payload + framing).
    pub bytes_in: u64,
    /// Response bytes written to sessions (payload + framing).
    pub bytes_out: u64,
    /// Queries over the slow-query threshold (0 with metrics disabled).
    pub slow_queries: u64,
    /// Requests counted per protocol verb, in [`Verb::ALL`] order. Always
    /// live (counters are unconditional; only histograms are gated).
    pub requests_by_verb: [u64; Verb::COUNT],
    /// Per-shard load snapshots, id order (one entry in the single-pool
    /// topology).
    pub shards: Vec<ShardSnapshot>,
    /// Service lifetime at snapshot time (the per-shard q/s denominator).
    pub uptime: Duration,
    /// Faults the injection plan has fired (always 0 without a plan).
    pub faults_injected: u64,
    /// Worker jobs that panicked (contained, never fatal; summed across
    /// shards).
    pub worker_panics: u64,
    /// Workers respawned after an uncaught job panic (summed across
    /// shards; pool capacity never decays).
    pub worker_respawns: u64,
    /// Scatter pair sub-queries re-executed after a transient internal
    /// failure.
    pub pair_retries: u64,
    /// Circuit-breaker closed→open transitions (summed across shards).
    pub breaker_opens: u64,
    /// Pair sub-queries rerouted to the home shard by an open breaker.
    pub breaker_rerouted: u64,
}

/// Renders per-shard snapshots as the `"shards"` JSON object body (shared
/// by `stats` and the `metrics` splice): throughput is integer q/s over
/// the service lifetime, everything else is a live counter or gauge.
fn shards_json(shards: &[ShardSnapshot], uptime: Duration) -> String {
    let uptime_us = uptime.as_micros() as u64;
    shards
        .iter()
        .map(|s| {
            let qps =
                s.executed.saturating_mul(1_000_000).checked_div(uptime_us).unwrap_or(0);
            format!(
                "\"{}\":{{\"workers\":{},\"queued\":{},\"routed\":{},\"executed\":{},\
                 \"admitted\":{},\"rejected\":{},\"qps\":{},\"panics\":{},\
                 \"respawns\":{},\"breaker\":\"{}\",\"breaker_opens\":{},\
                 \"breaker_rerouted\":{}}}",
                s.id,
                s.workers,
                s.queued,
                s.routed,
                s.executed,
                s.admitted,
                s.rejected,
                qps,
                s.panics,
                s.respawns,
                s.breaker.name(),
                s.breaker_opens,
                s.breaker_rerouted,
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl ServiceStats {
    /// One-line JSON form (the `stats` protocol command).
    pub fn to_json(&self) -> String {
        let graphs = self
            .graphs
            .iter()
            .map(|g| json_string(g))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"ok\":true,\"requests\":{},\"searches_executed\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_entries\":{},\"timeouts\":{},\"parse_errors\":{},\
             \"resolve_errors\":{},\"search_errors\":{},\"mutations_staged\":{},\
             \"commits\":{},\"mutate_errors\":{},\"cache_invalidated\":{},\
             \"cache_retained\":{},\"workers\":{},\
             \"connections_accepted\":{},\"connections_rejected\":{},\
             \"active_sessions\":{},\"admitted\":{},\"rejected_overloaded\":{},\
             \"admission_timeouts\":{},\"bytes_in\":{},\"bytes_out\":{},\
             \"graphs\":[{}],\"total_search_time_us\":{},\
             \"slow_queries\":{},\"requests_by_verb\":{{{}}},\"shards\":{{{}}},\
             \"faults\":{{\"injected\":{},\"worker_panics\":{},\
             \"worker_respawns\":{},\"pair_retries\":{},\"breaker_opens\":{},\
             \"breaker_rerouted\":{}}}}}",
            self.requests,
            self.searches_executed,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache_entries,
            self.timeouts,
            self.parse_errors,
            self.resolve_errors,
            self.search_errors,
            self.mutations_staged,
            self.commits,
            self.mutate_errors,
            self.cache_invalidated,
            self.cache_retained,
            self.workers,
            self.connections_accepted,
            self.connections_rejected,
            self.active_sessions,
            self.admitted,
            self.rejected_overloaded,
            self.admission_timeouts,
            self.bytes_in,
            self.bytes_out,
            graphs,
            self.total_search_time.as_micros(),
            self.slow_queries,
            Verb::ALL
                .iter()
                .map(|v| format!("\"{}\":{}", v.name(), self.requests_by_verb[v.index()]))
                .collect::<Vec<_>>()
                .join(","),
            shards_json(&self.shards, self.uptime),
            self.faults_injected,
            self.worker_panics,
            self.worker_respawns,
            self.pair_retries,
            self.breaker_opens,
            self.breaker_rerouted,
        )
    }
}

/// Transport-layer counters, shared by atomics: the TCP server, the
/// admission controller, and every session increment them lock-free, and
/// [`BccService::stats`] folds a snapshot into [`ServiceStats`]. A service
/// with no server attached reports zeros.
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Connections accepted into a session.
    pub connections_accepted: AtomicU64,
    /// Connections turned away at the connection limit.
    pub connections_rejected: AtomicU64,
    /// Open sessions (gauge: incremented on session start, decremented on
    /// teardown).
    pub active_sessions: AtomicU64,
    /// Requests dispatched through the admission gate.
    pub admitted: AtomicU64,
    /// Requests rejected with the structured `overloaded` error.
    pub rejected_overloaded: AtomicU64,
    /// Requests whose deadline expired in the admission queue.
    pub admission_timeouts: AtomicU64,
    /// Bytes read off sessions (payload + framing).
    pub bytes_in: AtomicU64,
    /// Bytes written to sessions (payload + framing).
    pub bytes_out: AtomicU64,
}

#[derive(Default)]
struct Counters {
    requests: u64,
    searches_executed: u64,
    timeouts: u64,
    parse_errors: u64,
    resolve_errors: u64,
    search_errors: u64,
    mutations_staged: u64,
    commits: u64,
    mutate_errors: u64,
    cache_invalidated: u64,
    cache_retained: u64,
    pair_retries: u64,
    total_search_time: Duration,
}

type SharedCache = Arc<Mutex<LruCache<CacheKey, Result<QueryOutcome, RequestError>>>>;

/// A response that may still be executing on the pool. Obtained from
/// [`BccService::submit`]; turn it into a [`QueryResponse`] with
/// [`BccService::wait`]. Submitting a whole batch before waiting is what
/// lets independent requests run concurrently.
pub enum Pending {
    /// Answered inline (cache hit, or an error before execution).
    Ready(QueryResponse),
    /// Executing on the pool.
    InFlight {
        /// Request sequence number.
        seq: u64,
        /// Graph registry key.
        graph: String,
        /// Searcher.
        method: Method,
        /// Protocol verb (search/msearch) for per-verb latency accounting.
        verb: Verb,
        /// Absolute deadline, if any.
        deadline: Option<Instant>,
        /// The pool ticket.
        ticket: Ticket<Result<QueryOutcome, RequestError>>,
        /// Submission instant (for the response's `elapsed`).
        started: Instant,
    },
    /// A multi-label msearch (m > 2) scattered across shards: one assembly
    /// job plus C(m,2) label-pair sub-queries, gathered in plan order by
    /// [`BccService::wait`].
    Scatter(Box<ScatterWait>),
}

/// What one protocol line produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineOutcome {
    /// Emit this line.
    Output(String),
    /// End the session.
    Quit,
    /// Emit nothing (blank/comment line).
    Silent,
}

/// The long-lived query engine: graph registry + sharded worker pools +
/// result cache + the line protocol.
pub struct BccService {
    config: ServiceConfig,
    registry: GraphRegistry,
    shards: Arc<ShardMap>,
    cache: SharedCache,
    counters: Arc<Mutex<Counters>>,
    transport: Arc<TransportCounters>,
    metrics: Arc<Metrics>,
    faults: Arc<FaultPlan>,
    seq: AtomicU64,
    started: Instant,
}

impl BccService {
    /// Starts the service (spawns the per-shard worker pools) with an
    /// empty registry.
    ///
    /// # Panics
    ///
    /// When `config.faults` holds a malformed spec — callers taking specs
    /// from users (the CLI) pre-validate with [`FaultPlan::parse`].
    pub fn new(config: ServiceConfig) -> Self {
        let faults = Arc::new(
            FaultPlan::parse(&config.faults)
                .unwrap_or_else(|err| panic!("invalid fault spec: {err}")),
        );
        let shards = Arc::new(ShardMap::with_breakers(
            config.shards,
            config.workers,
            config.breaker_threshold,
            Duration::from_millis(config.breaker_cooldown_ms),
        ));
        let cache = Arc::new(Mutex::new(LruCache::with_weight_cap(
            config.cache_capacity,
            config.cache_weight_cap,
        )));
        let registry = GraphRegistry::with_index_threads(config.index_threads);
        registry.set_placement(Arc::clone(&shards));
        let metrics = Arc::new(Metrics::new(config.metrics, config.slow_query_ms));
        BccService {
            config,
            registry,
            shards,
            cache,
            counters: Arc::new(Mutex::new(Counters::default())),
            transport: Arc::new(TransportCounters::default()),
            metrics,
            faults,
            seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Starts the service with `graph` registered as the default graph.
    pub fn with_graph(config: ServiceConfig, graph: LabeledGraph) -> Self {
        let service = BccService::new(config);
        service
            .registry
            .insert(service.config.default_graph.clone(), graph);
        service
    }

    /// The graph registry (register/lookup graphs at any time).
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Worker-thread count, summed across shards.
    pub fn workers(&self) -> usize {
        self.shards.total_workers()
    }

    /// The shard routing table (shared with the registry and the TCP
    /// server's per-shard admission gates).
    pub fn shard_map(&self) -> &Arc<ShardMap> {
        &self.shards
    }

    /// The shard id `graph` — or the default graph, when a request names
    /// none — routes to. The session layer picks its admission gate here.
    pub fn shard_for(&self, graph: Option<&str>) -> usize {
        self.shards
            .route_id(graph.unwrap_or(&self.config.default_graph))
    }

    /// The transport-layer counters (shared with the TCP server and its
    /// sessions; all zeros when no server is attached).
    pub fn transport(&self) -> &Arc<TransportCounters> {
        &self.transport
    }

    /// The metrics registry (shared with sessions and workers; the CLI's
    /// Prometheus responder reads it through this accessor too).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The compiled fault-injection plan (inert unless configured; shared
    /// with sessions so transport sites consult the same match counters).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        let counters = lock_unpoisoned(&self.counters);
        let cache = lock_unpoisoned(&self.cache);
        let t = &self.transport;
        let shards = self.shards.snapshot();
        let sum = |f: fn(&ShardSnapshot) -> u64| shards.iter().map(f).sum::<u64>();
        ServiceStats {
            requests: counters.requests,
            searches_executed: counters.searches_executed,
            cache: cache.counters(),
            cache_entries: cache.len(),
            timeouts: counters.timeouts,
            parse_errors: counters.parse_errors,
            resolve_errors: counters.resolve_errors,
            search_errors: counters.search_errors,
            mutations_staged: counters.mutations_staged,
            commits: counters.commits,
            mutate_errors: counters.mutate_errors,
            cache_invalidated: counters.cache_invalidated,
            cache_retained: counters.cache_retained,
            workers: self.shards.total_workers(),
            graphs: self.registry.names(),
            total_search_time: counters.total_search_time,
            connections_accepted: t.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: t.connections_rejected.load(Ordering::Relaxed),
            active_sessions: t.active_sessions.load(Ordering::Relaxed),
            admitted: t.admitted.load(Ordering::Relaxed),
            rejected_overloaded: t.rejected_overloaded.load(Ordering::Relaxed),
            admission_timeouts: t.admission_timeouts.load(Ordering::Relaxed),
            bytes_in: t.bytes_in.load(Ordering::Relaxed),
            bytes_out: t.bytes_out.load(Ordering::Relaxed),
            slow_queries: self.metrics.slow_queries(),
            requests_by_verb: std::array::from_fn(|i| self.metrics.requests(Verb::ALL[i])),
            faults_injected: self.faults.injected(),
            worker_panics: sum(|s| s.panics),
            worker_respawns: sum(|s| s.respawns),
            pair_retries: counters.pair_retries,
            breaker_opens: sum(|s| s.breaker_opens),
            breaker_rerouted: sum(|s| s.breaker_rerouted),
            shards,
            uptime: self.started.elapsed(),
        }
    }

    /// Submits a request: resolves + normalizes it, probes the cache, and
    /// on a miss schedules execution on the pool.
    pub fn submit(&self, request: QueryRequest) -> Pending {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.counters).requests += 1;
        let verb = match request.kind {
            QueryKind::Pair { .. } => Verb::Search,
            QueryKind::Multi { .. } => Verb::Msearch,
        };
        self.metrics.count_request(verb);
        let started = Instant::now();

        let graph_name = request
            .graph
            .clone()
            .unwrap_or_else(|| self.config.default_graph.clone());
        let Some(entry) = self.registry.get(&graph_name) else {
            lock_unpoisoned(&self.counters).resolve_errors += 1;
            self.metrics.record_latency(verb, started.elapsed());
            return Pending::Ready(QueryResponse::error(
                seq,
                "",
                request.method,
                RequestError::resolve(format!("no graph registered as `{graph_name}`")),
            ));
        };

        let normalized = match normalize(&entry, &request) {
            Ok(normalized) => normalized,
            Err(err) => {
                lock_unpoisoned(&self.counters).resolve_errors += 1;
                self.metrics.record_latency(verb, started.elapsed());
                return Pending::Ready(QueryResponse::error(seq, &graph_name, request.method, err));
            }
        };
        let key = CacheKey::normalized(
            entry.generation(),
            request.method,
            normalized.multi,
            &normalized.vertices,
            &normalized.ks,
            normalized.b,
        );

        if let Some(outcome) = lock_unpoisoned(&self.cache).get(&key) {
            let elapsed = started.elapsed();
            self.metrics.record_latency(verb, elapsed);
            return Pending::Ready(QueryResponse {
                seq,
                graph: graph_name,
                method: request.method,
                outcome: outcome.clone(),
                cached: true,
                elapsed,
            });
        }

        let deadline = request
            .timeout_ms
            .or(self.config.default_timeout_ms)
            .map(|ms| started + Duration::from_millis(ms));
        let method = request.method;

        // A multi-label msearch over more than two vertices scatters: the
        // pair sub-queries fan across shards while the assembly runs on the
        // graph's home shard. Pair searches and 2-vertex msearch (which the
        // engine reduces to the pair case) stay single-job.
        if normalized.multi && normalized.vertices.len() > 2 {
            return self
                .submit_scatter(seq, graph_name, entry, method, normalized, key, deadline, started);
        }

        let shared = self.exec_shared();
        let job_key = key.clone();
        let shard = self.shards.route(&graph_name);
        shard.counters().routed.fetch_add(1, Ordering::Relaxed);
        let ticket = shard.pool().submit(move || {
            execute(&entry, method, &normalized, job_key, deadline, true, &shared)
        });
        Pending::InFlight {
            seq,
            graph: graph_name,
            method,
            verb,
            deadline,
            ticket,
            started,
        }
    }

    /// The shared handles a worker job records through.
    fn exec_shared(&self) -> ExecShared {
        ExecShared {
            cache: Arc::clone(&self.cache),
            counters: Arc::clone(&self.counters),
            metrics: Arc::clone(&self.metrics),
            faults: Arc::clone(&self.faults),
            query_threads: self.config.query_threads,
        }
    }

    /// Scatters one m > 2 msearch: probes each label pair's cache slot in
    /// plan order on this thread (deterministic hit/miss accounting), fans
    /// misses out to their owning shards, and submits the monolithic
    /// assembly run to the graph's home shard. No sub-job inserts into the
    /// cache — [`Self::gather`] replays all inserts in plan order.
    #[allow(clippy::too_many_arguments)]
    fn submit_scatter(
        &self,
        seq: u64,
        graph_name: String,
        entry: Arc<GraphEntry>,
        method: Method,
        normalized: Normalized,
        key: CacheKey,
        deadline: Option<Instant>,
        started: Instant,
    ) -> Pending {
        let plan = scatter::pair_plan(&normalized.vertices, &normalized.ks);
        let home = self.shards.route_id(&graph_name);
        let mut pairs = Vec::with_capacity(plan.len());
        for ((vi, ki), (vj, kj)) in plan {
            let pair_key = CacheKey::normalized(
                entry.generation(),
                method,
                true,
                &[vi, vj],
                &[ki, kj],
                normalized.b,
            );
            let cached = lock_unpoisoned(&self.cache).get(&pair_key).cloned();
            let (source, shard) = match cached {
                Some(outcome) => (PairSource::Cached(outcome), home),
                None => {
                    let (ticket, shard) =
                        self.submit_pair(&graph_name, &entry, method, &pair_key, deadline, home);
                    (PairSource::Miss(ticket), shard)
                }
            };
            pairs.push(PairJob { ql: vi.0, qr: vj.0, key: pair_key, shard, source });
        }
        let shared = self.exec_shared();
        let job_key = key.clone();
        let shard = self.shards.route(&graph_name);
        shard.counters().routed.fetch_add(1, Ordering::Relaxed);
        let assembly = {
            let entry = Arc::clone(&entry);
            shard.pool().submit(move || {
                execute(&entry, method, &normalized, job_key, deadline, false, &shared)
            })
        };
        Pending::Scatter(Box::new(ScatterWait {
            seq,
            graph: graph_name,
            method,
            entry,
            deadline,
            started,
            key,
            assembly,
            pairs,
        }))
    }

    /// Routes and submits one label-pair sub-query. The pair's owning
    /// shard comes from rendezvous hashing — unless that shard's circuit
    /// breaker is open, in which case the graph's home shard absorbs the
    /// pair (correctness preserved, latency degraded, the reroute
    /// counted). Returns the ticket and the shard id the job actually ran
    /// on, which is where [`Self::gather`] records the breaker outcome.
    /// The pair's [`Normalized`] form is rebuilt from its cache key, so
    /// gather-side retries need only the key.
    fn submit_pair(
        &self,
        graph_name: &str,
        entry: &Arc<GraphEntry>,
        method: Method,
        pair_key: &CacheKey,
        deadline: Option<Instant>,
        home: usize,
    ) -> (Ticket<Result<QueryOutcome, RequestError>>, usize) {
        let (ql, qr) = (pair_key.vertex_ks[0].0, pair_key.vertex_ks[1].0);
        let owner = self.shards.route_pair(graph_name, ql, qr);
        let shard = if owner.id() != home && !owner.breaker().allow() {
            owner.counters().breaker_rerouted.fetch_add(1, Ordering::Relaxed);
            &self.shards.shards()[home]
        } else {
            owner
        };
        shard.counters().routed.fetch_add(1, Ordering::Relaxed);
        let sub = Normalized {
            multi: true,
            vertices: pair_key.vertex_ks.iter().map(|&(v, _)| VertexId(v)).collect(),
            ks: pair_key.vertex_ks.iter().map(|&(_, k)| k).collect(),
            b: pair_key.b,
        };
        let entry = Arc::clone(entry);
        let shared = self.exec_shared();
        let job_key = pair_key.clone();
        let ticket = shard.pool().submit(move || {
            if shared.faults.perturb(FaultSite::ScatterPair) {
                return Err(RequestError {
                    kind: ErrorKind::Internal,
                    message: "injected fault at scatter_pair".into(),
                });
            }
            execute(&entry, method, &sub, job_key, deadline, false, &shared)
        });
        (ticket, shard.id())
    }

    /// Blocks until `pending` resolves (or its deadline passes).
    pub fn wait(&self, pending: Pending) -> QueryResponse {
        match pending {
            Pending::Ready(response) => response,
            Pending::InFlight {
                seq,
                graph,
                method,
                verb,
                deadline,
                ticket,
                started,
            } => {
                let outcome = match ticket.wait_until(deadline) {
                    Ok(outcome) => outcome,
                    Err(err) => Err(job_error(err)),
                };
                // Count timeouts here, once per response, whichever side
                // noticed first (the waiter's deadline or the worker's
                // pre-execution drop).
                if matches!(&outcome, Err(e) if e.kind == ErrorKind::Timeout) {
                    lock_unpoisoned(&self.counters).timeouts += 1;
                }
                let elapsed = started.elapsed();
                self.metrics.record_latency(verb, elapsed);
                QueryResponse {
                    seq,
                    graph,
                    method,
                    outcome,
                    cached: false,
                    elapsed,
                }
            }
            Pending::Scatter(wait) => self.gather(*wait),
        }
    }

    /// Gathers a scattered msearch: the assembly result first (it is the
    /// response body), then every pair in plan order, all under the
    /// parent's inherited deadline. A failed pair becomes a structured
    /// entry in the response's `pairs` section — partial failure never
    /// fails the request as long as the assembly succeeded. Cache inserts
    /// replay here, in plan order, so cache state is identical at any
    /// shard count.
    ///
    /// Degradation logic lives here too: every executed pair's outcome
    /// feeds its shard's circuit breaker, and a pair that failed
    /// *internally* (worker panic, injected fault — never a deadline) is
    /// retried with bounded backoff inside the inherited deadline budget,
    /// re-executed against the scatter's original snapshot.
    fn gather(&self, wait: ScatterWait) -> QueryResponse {
        let ScatterWait {
            seq,
            graph,
            method,
            entry,
            deadline,
            started,
            key,
            assembly,
            pairs,
        } = wait;
        let collect = |ticket: Ticket<Result<QueryOutcome, RequestError>>| match ticket
            .wait_until(deadline)
        {
            Ok(outcome) => outcome,
            Err(err) => Err(job_error(err)),
        };
        let assembly_outcome = collect(assembly);
        let home = self.shards.route_id(&graph);
        let mut pair_outcomes = Vec::with_capacity(pairs.len());
        let mut inserts = Vec::new();
        for job in pairs {
            let outcome = match job.source {
                PairSource::Cached(outcome) => outcome,
                PairSource::Miss(ticket) => {
                    let mut outcome = collect(ticket);
                    let mut shard_id = job.shard;
                    let mut attempt: u32 = 0;
                    loop {
                        // Breaker accounting on the shard that actually ran
                        // the job: internal failures and timeouts are shard
                        //-health signals; deterministic search errors and
                        // successes prove the shard alive.
                        let breaker = self.shards.shards()[shard_id].breaker();
                        match &outcome {
                            Err(e)
                                if e.kind == ErrorKind::Internal
                                    || e.kind == ErrorKind::Timeout =>
                            {
                                breaker.record_failure()
                            }
                            _ => breaker.record_success(),
                        }
                        // Retry only internal failures (the job died; the
                        // work was never done) — a blown deadline stays
                        // blown. Backoff doubles and must fit the budget.
                        let retryable =
                            matches!(&outcome, Err(e) if e.kind == ErrorKind::Internal);
                        if !retryable || attempt >= MAX_PAIR_RETRIES {
                            break;
                        }
                        let backoff = Duration::from_millis(1 << attempt);
                        if let Some(deadline) = deadline {
                            if Instant::now() + backoff >= deadline {
                                break;
                            }
                        }
                        std::thread::sleep(backoff);
                        attempt += 1;
                        lock_unpoisoned(&self.counters).pair_retries += 1;
                        let (ticket, shard) =
                            self.submit_pair(&graph, &entry, method, &job.key, deadline, home);
                        shard_id = shard;
                        outcome = collect(ticket);
                    }
                    if scatter::cacheable(&outcome) {
                        inserts.push((job.key, outcome.clone()));
                    }
                    outcome
                }
            };
            pair_outcomes.push(PairOutcome {
                ql: job.ql,
                qr: job.qr,
                result: outcome.map(|o| o.community),
            });
        }
        // A transient pair failure (timeout, lost worker) must not be baked
        // into the full-query cache entry — a retry would keep serving it.
        let transient_pair = pair_outcomes.iter().any(|p| {
            matches!(&p.result, Err(e) if e.kind == ErrorKind::Timeout || e.kind == ErrorKind::Internal)
        });
        let outcome = assembly_outcome.map(|mut o| {
            o.pairs = pair_outcomes;
            o
        });
        {
            let mut cache = lock_unpoisoned(&self.cache);
            for (pair_key, value) in inserts {
                let weight = scatter::outcome_weight(&value);
                cache.insert_weighted(pair_key, value, weight);
            }
            if scatter::cacheable(&outcome) && !transient_pair {
                let weight = scatter::outcome_weight(&outcome);
                cache.insert_weighted(key, outcome.clone(), weight);
            }
        }
        if matches!(&outcome, Err(e) if e.kind == ErrorKind::Timeout) {
            lock_unpoisoned(&self.counters).timeouts += 1;
        }
        let elapsed = started.elapsed();
        self.metrics.record_latency(Verb::Msearch, elapsed);
        QueryResponse { seq, graph, method, outcome, cached: false, elapsed }
    }

    /// Submit + wait in one call (the sequential path).
    pub fn handle(&self, request: QueryRequest) -> QueryResponse {
        let pending = self.submit(request);
        self.wait(pending)
    }

    /// Executes one mutation line synchronously: stage an edge change, or
    /// commit the staged batch and invalidate affected cache entries.
    pub fn handle_mutate(&self, request: MutateRequest) -> MutateResponse {
        let verb = match request.op {
            MutateOp::AddEdge { .. } => Verb::AddEdge,
            MutateOp::RemoveEdge { .. } => Verb::RemoveEdge,
            MutateOp::Commit => Verb::Commit,
        };
        self.metrics.count_request(verb);
        let started = Instant::now();
        // Containment: a panic anywhere in the mutation path (staging,
        // commit, index patch, cache rescope) must not unwind into the
        // session loop — it surfaces as a structured internal error and
        // the service keeps serving.
        let op = request.op.verb();
        let graph_name = request
            .graph
            .clone()
            .unwrap_or_else(|| self.config.default_graph.clone());
        let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.handle_mutate_inner(request)
        })) {
            Ok(response) => response,
            Err(payload) => {
                lock_unpoisoned(&self.counters).mutate_errors += 1;
                MutateResponse {
                    op,
                    graph: graph_name,
                    outcome: Err(RequestError {
                        kind: ErrorKind::Internal,
                        message: format!(
                            "the mutation handler panicked: {}",
                            crate::fault::panic_message(payload.as_ref())
                        ),
                    }),
                }
            }
        };
        self.metrics.record_latency(verb, started.elapsed());
        response
    }

    /// [`Self::handle_mutate`] minus the per-verb accounting wrapper.
    fn handle_mutate_inner(&self, request: MutateRequest) -> MutateResponse {
        let graph_name = request
            .graph
            .clone()
            .unwrap_or_else(|| self.config.default_graph.clone());
        let op = request.op.verb();
        match &request.op {
            MutateOp::AddEdge { u, v } | MutateOp::RemoveEdge { u, v } => {
                let insert = matches!(request.op, MutateOp::AddEdge { .. });
                let Some(entry) = self.registry.get(&graph_name) else {
                    let message = format!("no graph registered as `{graph_name}`");
                    return self.mutate_error(op, graph_name, message);
                };
                let resolved = resolve_vertex(entry.graph(), u)
                    .and_then(|u| resolve_vertex(entry.graph(), v).map(|v| (u, v)));
                let (u, v) = match resolved {
                    Ok(pair) => pair,
                    Err(err) => return self.mutate_error(op, graph_name, err.message),
                };
                match self.registry.stage_edge(&entry, u, v, insert) {
                    Ok(pending) => {
                        lock_unpoisoned(&self.counters).mutations_staged += 1;
                        MutateResponse {
                            op,
                            graph: graph_name,
                            outcome: Ok(MutateOutcome::Staged { pending }),
                        }
                    }
                    Err(message) => self.mutate_error(op, graph_name, message),
                }
            }
            MutateOp::Commit => {
                // Injection points for the commit path, checked at commit
                // entry — bracketing the overlay/cascade/χ/invalidate
                // stages the commit is about to run. An injected error
                // leaves the staged batch intact (the commit never ran).
                use bcc_obs::Phase;
                for phase in [
                    Phase::OverlayApply,
                    Phase::Cascade,
                    Phase::ChiDelta,
                    Phase::CacheInvalidate,
                ] {
                    let site = FaultSite::Phase(phase);
                    if self.faults.perturb(site) {
                        lock_unpoisoned(&self.counters).mutate_errors += 1;
                        return MutateResponse {
                            op,
                            graph: graph_name,
                            outcome: Err(RequestError {
                                kind: ErrorKind::Internal,
                                message: format!("injected fault at {}", site.name()),
                            }),
                        };
                    }
                }
                match self.registry.commit(&graph_name) {
                    Ok(outcome) => {
                        // Commit-stage phase telemetry: the registry timed the
                        // overlay apply and the per-batch cascade/χ work; the
                        // cache rescope is bracketed right here.
                        use bcc_obs::{Phase, Recorder as _};
                        let m = &*self.metrics;
                        m.record_phase(Phase::OverlayApply, outcome.time_overlay_apply);
                        m.record_phase(Phase::Cascade, outcome.time_cascade);
                        m.record_phase(Phase::ChiDelta, outcome.time_chi_delta);
                        let rescope_started = Instant::now();
                        let (invalidated, retained) = self.rescope_cache(
                            outcome.old_generation,
                            outcome.entry.generation(),
                            outcome.dirty.as_ref(),
                        );
                        m.record_phase(Phase::CacheInvalidate, rescope_started.elapsed());
                        let mut counters = lock_unpoisoned(&self.counters);
                        counters.commits += 1;
                        counters.cache_invalidated += invalidated as u64;
                        counters.cache_retained += retained as u64;
                        drop(counters);
                        MutateResponse {
                            op,
                            graph: graph_name,
                            outcome: Ok(MutateOutcome::Committed(CommitSummary {
                                applied: outcome.applied,
                                vertices: outcome.entry.graph().vertex_count(),
                                edges: outcome.entry.graph().edge_count(),
                                index_patched: outcome.index_patched(),
                                invalidated,
                                retained,
                            })),
                        }
                    }
                    Err(message) => self.mutate_error(op, graph_name, message),
                }
            }
        }
    }

    /// A counted, structured mutation failure.
    fn mutate_error(&self, op: &'static str, graph: String, message: String) -> MutateResponse {
        lock_unpoisoned(&self.counters).mutate_errors += 1;
        MutateResponse { op, graph, outcome: Err(RequestError::mutate(message)) }
    }

    /// Community-scoped cache invalidation across a commit: every entry of
    /// the replaced generation whose query vertices or cached community
    /// intersect the dirty set (or whose outcome was an error — feasibility
    /// can shift non-locally) is dropped; unaffected warm entries are
    /// rekeyed to the new generation and keep hitting. With no dirty set
    /// (index never built) the graph's entries are invalidated wholesale;
    /// other graphs' entries are untouched either way.
    fn rescope_cache(
        &self,
        old_generation: u64,
        new_generation: u64,
        dirty: Option<&rustc_hash::FxHashSet<u32>>,
    ) -> (usize, usize) {
        let mut cache = lock_unpoisoned(&self.cache);
        let (mut invalidated, mut retained) = (0, 0);
        // LRU→MRU order, so rekeyed survivors keep their relative recency.
        for key in cache.keys_by_recency() {
            if key.generation != old_generation {
                continue;
            }
            let affected = match dirty {
                None => true,
                Some(dirty) => {
                    let query_touched =
                        key.vertex_ks.iter().any(|&(v, _)| dirty.contains(&v));
                    query_touched
                        || match cache.peek(&key) {
                            Some(Ok(outcome)) => {
                                outcome.community.iter().any(|v| dirty.contains(v))
                                    // Pair annotations scope too: a dirty
                                    // pair community — or a failed pair,
                                    // whose feasibility can shift
                                    // non-locally — taints the entry.
                                    || outcome.pairs.iter().any(|p| match &p.result {
                                        Ok(members) => {
                                            members.iter().any(|v| dirty.contains(v))
                                        }
                                        Err(_) => true,
                                    })
                            }
                            Some(Err(_)) | None => true,
                        }
                }
            };
            let Some(value) = cache.remove(&key) else { continue };
            if affected {
                invalidated += 1;
            } else {
                let mut rekeyed = key;
                rekeyed.generation = new_generation;
                let weight = scatter::outcome_weight(&value);
                cache.insert_weighted(rekeyed, value, weight);
                retained += 1;
            }
        }
        (invalidated, retained)
    }

    /// The `stats` verb's JSON line (counts the verb; [`Self::stats`] is
    /// the uncounted programmatic snapshot).
    pub fn stats_json(&self) -> String {
        self.metrics.count_request(Verb::Stats);
        self.stats().to_json()
    }

    /// The `metrics` verb's JSON line: the full registry snapshot with the
    /// per-shard load section spliced in — deterministic key order,
    /// integers only.
    pub fn metrics_json(&self) -> String {
        self.metrics.count_request(Verb::Metrics);
        let mut out = self.metrics.snapshot_json();
        debug_assert!(out.ends_with('}'));
        out.pop();
        out.push_str(",\"shards\":{");
        out.push_str(&shards_json(&self.shards.snapshot(), self.started.elapsed()));
        out.push_str("},\"faults\":{\"injected\":");
        out.push_str(&self.faults.injected().to_string());
        out.push_str(",\"pair_retries\":");
        out.push_str(&lock_unpoisoned(&self.counters).pair_retries.to_string());
        out.push_str("}}");
        out
    }

    /// Prometheus exposition text: the metrics registry's families plus
    /// the per-shard load gauges/counters.
    pub fn prometheus(&self) -> String {
        type ShardStat = fn(&ShardSnapshot) -> u64;
        let mut out = self.metrics.prometheus();
        let families: [(&str, &str, ShardStat); 9] = [
            ("bcc_shard_routed_total", "counter", |s| s.routed),
            ("bcc_shard_executed_total", "counter", |s| s.executed),
            ("bcc_shard_queue_depth", "gauge", |s| s.queued as u64),
            ("bcc_shard_admitted_total", "counter", |s| s.admitted),
            ("bcc_shard_rejected_total", "counter", |s| s.rejected),
            ("bcc_shard_worker_panics_total", "counter", |s| s.panics),
            ("bcc_shard_worker_respawns_total", "counter", |s| s.respawns),
            ("bcc_shard_breaker_opens_total", "counter", |s| s.breaker_opens),
            ("bcc_shard_breaker_rerouted_total", "counter", |s| s.breaker_rerouted),
        ];
        let snapshot = self.shards.snapshot();
        for (name, kind, value) in families {
            out.push_str(&format!("# HELP {name} Per-shard load.\n# TYPE {name} {kind}\n"));
            for s in &snapshot {
                out.push_str(&format!("{name}{{shard=\"{}\"}} {}\n", s.id, value(s)));
            }
        }
        out.push_str(
            "# HELP bcc_shard_breaker_state Circuit-breaker state \
             (0=closed, 1=open, 2=half_open).\n# TYPE bcc_shard_breaker_state gauge\n",
        );
        for s in &snapshot {
            out.push_str(&format!(
                "bcc_shard_breaker_state{{shard=\"{}\"}} {}\n",
                s.id,
                s.breaker.code()
            ));
        }
        out.push_str(&format!(
            "# HELP bcc_faults_injected_total Faults the injection plan has fired.\n\
             # TYPE bcc_faults_injected_total counter\n\
             bcc_faults_injected_total {}\n",
            self.faults.injected()
        ));
        out.push_str(&format!(
            "# HELP bcc_pair_retries_total Scatter pair sub-queries retried after an \
             internal failure.\n# TYPE bcc_pair_retries_total counter\n\
             bcc_pair_retries_total {}\n",
            lock_unpoisoned(&self.counters).pair_retries
        ));
        out
    }

    /// The `shard` verb's JSON line: `shard list` renders the topology and
    /// every registered graph's route; `shard assign <graph> <id>` pins a
    /// graph to a shard (pinned to the live generation for observability).
    pub fn shard_json(&self, cmd: ShardCmd) -> String {
        self.metrics.count_request(Verb::Shard);
        match cmd {
            ShardCmd::List => {
                let workers = self
                    .shards
                    .shards()
                    .iter()
                    .map(|s| s.pool().workers().to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let assigned: Vec<String> =
                    self.shards.assignments().into_iter().map(|(name, _, _)| name).collect();
                let routes = self
                    .registry
                    .names()
                    .iter()
                    .map(|name| {
                        format!(
                            "{{\"graph\":{},\"shard\":{},\"assigned\":{}}}",
                            json_string(name),
                            self.shards.route_id(name),
                            assigned.iter().any(|a| a == name),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let breakers = self
                    .shards
                    .shards()
                    .iter()
                    .map(|s| format!("\"{}\"", s.breaker().state().name()))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"ok\":true,\"shards\":{},\"workers\":[{}],\"routes\":[{}],\
                     \"breakers\":[{}]}}",
                    self.shards.shard_count(),
                    workers,
                    routes,
                    breakers
                )
            }
            ShardCmd::Assign { graph, shard } => {
                let Some(entry) = self.registry.get(&graph) else {
                    return format!(
                        "{{\"ok\":false,\"error\":\"resolve\",\"message\":{}}}",
                        json_string(&format!("no graph registered as `{graph}`"))
                    );
                };
                match self.shards.assign(&graph, shard, entry.generation()) {
                    Ok(()) => format!(
                        "{{\"ok\":true,\"graph\":{},\"shard\":{shard}}}",
                        json_string(&graph)
                    ),
                    Err(message) => format!(
                        "{{\"ok\":false,\"error\":\"resolve\",\"message\":{}}}",
                        json_string(&message)
                    ),
                }
            }
        }
    }

    /// The `graphs` command's JSON line.
    pub fn graphs_json(&self) -> String {
        self.metrics.count_request(Verb::Graphs);
        let names = self
            .registry
            .names()
            .iter()
            .map(|g| json_string(g))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"ok\":true,\"graphs\":[{names}]}}")
    }

    /// Counts a parse failure and allocates the global sequence number its
    /// error line carries on the sequential (`serve`) path. The session
    /// layer calls this for TCP sessions too (the counter), substituting
    /// its own per-session seq.
    pub(crate) fn note_parse_error(&self) -> u64 {
        lock_unpoisoned(&self.counters).parse_errors += 1;
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Processes one protocol line into its outcome. Never panics. A
    /// `shutdown` line behaves like `quit` here — this path serves exactly
    /// one session, so "stop serving" and "end the session" coincide; only
    /// the TCP server distinguishes them (see [`crate::session::Session`]).
    pub fn process_line(&self, line: &str) -> LineOutcome {
        match parse_line(line) {
            Ok(ParsedLine::Empty) => LineOutcome::Silent,
            Ok(ParsedLine::Quit) | Ok(ParsedLine::Shutdown) => LineOutcome::Quit,
            Ok(ParsedLine::Stats) => LineOutcome::Output(self.stats_json()),
            Ok(ParsedLine::Graphs) => LineOutcome::Output(self.graphs_json()),
            Ok(ParsedLine::Metrics) => LineOutcome::Output(self.metrics_json()),
            Ok(ParsedLine::Shard(cmd)) => LineOutcome::Output(self.shard_json(cmd)),
            Ok(ParsedLine::Request(request)) => {
                LineOutcome::Output(self.handle(request).to_json())
            }
            Ok(ParsedLine::Mutate(request)) => {
                LineOutcome::Output(self.handle_mutate(request).to_json())
            }
            Err(err) => {
                let seq = self.note_parse_error();
                LineOutcome::Output(QueryResponse::error(seq, "", Method::Lp, err).to_json())
            }
        }
    }

    /// Runs a whole session: one response line per request line, until EOF
    /// or `quit`. The `bcc serve` loop (also driven directly by tests).
    /// Since the codec/session refactor this is a [`crate::session::Session`]
    /// in [`crate::session::SeqPolicy::Service`] mode — same bytes as the
    /// historical inline loop, plus first-byte codec negotiation (a binary
    /// client can speak length-prefixed frames over stdin too).
    pub fn run_session<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<()> {
        crate::session::Session::service_mode(self).run(reader, writer).map(|_| ())
    }

    /// Executes a batch of request lines concurrently: every line is
    /// submitted before any result is awaited, so independent misses run in
    /// parallel across the pool. Output lines come back in input order,
    /// with `seq` renumbered to the *batch-local* output index — request
    /// lines therefore serialize byte-identically on every run, whatever
    /// the worker count or cache state. (`stats` lines are the exception:
    /// they snapshot live counters — rendered when the batch's emit pass
    /// reaches them, i.e. after every earlier request completed — and
    /// counters touched by *later* in-flight requests can differ run to
    /// run.)
    ///
    /// Duplicate queries inside one batch may each execute (the cache is
    /// probed at submit time, before the first copy lands); a *subsequent*
    /// batch of the same queries is served entirely from cache.
    pub fn run_batch<S: AsRef<str>>(&self, lines: &[S]) -> Vec<String> {
        enum Slot {
            Line(String),
            Stats,
            Metrics,
            Failed(RequestError),
            Waiting(Pending),
        }
        let mut slots = Vec::with_capacity(lines.len());
        for line in lines {
            match parse_line(line.as_ref()) {
                Ok(ParsedLine::Empty) => {}
                Ok(ParsedLine::Quit) | Ok(ParsedLine::Shutdown) => break,
                Ok(ParsedLine::Stats) => slots.push(Slot::Stats),
                Ok(ParsedLine::Metrics) => slots.push(Slot::Metrics),
                Ok(ParsedLine::Graphs) => {
                    if let LineOutcome::Output(out) = self.process_line("graphs") {
                        slots.push(Slot::Line(out));
                    }
                }
                // Shard commands execute at submit time, like mutations:
                // `shard assign` must re-route the lines that follow it.
                Ok(ParsedLine::Shard(cmd)) => {
                    slots.push(Slot::Line(self.shard_json(cmd)));
                }
                Ok(ParsedLine::Request(request)) => {
                    slots.push(Slot::Waiting(self.submit(request)));
                }
                // Mutations execute *at submit time*, synchronously: every
                // earlier search already holds its `Arc` to the pre-commit
                // snapshot, every later line resolves against the new one —
                // the batch behaves as if the lines ran sequentially.
                Ok(ParsedLine::Mutate(request)) => {
                    slots.push(Slot::Line(self.handle_mutate(request).to_json()));
                }
                Err(err) => {
                    lock_unpoisoned(&self.counters).parse_errors += 1;
                    slots.push(Slot::Failed(err));
                }
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| match slot {
                Slot::Line(out) => out,
                Slot::Stats => self.stats_json(),
                Slot::Metrics => self.metrics_json(),
                Slot::Failed(err) => {
                    QueryResponse::error(idx as u64, "", Method::Lp, err).to_json()
                }
                Slot::Waiting(pending) => {
                    let mut response = self.wait(pending);
                    response.seq = idx as u64;
                    response.to_json()
                }
            })
            .collect()
    }
}

/// A resolved request: vertices and effective parameters in normalized
/// (sorted-by-vertex-id) order.
struct Normalized {
    multi: bool,
    vertices: Vec<VertexId>,
    ks: Vec<u32>,
    b: u64,
}

/// Resolves a vertex token (name first, then numeric id) against `graph`.
fn resolve_vertex(graph: &LabeledGraph, token: &str) -> Result<VertexId, RequestError> {
    if let Some(v) = graph.vertex_by_name(token) {
        return Ok(v);
    }
    let id: u32 = token.parse().map_err(|_| {
        RequestError::resolve(format!("`{token}` is neither a vertex name nor an id"))
    })?;
    if (id as usize) < graph.vertex_count() {
        Ok(VertexId(id))
    } else {
        Err(RequestError::resolve(format!(
            "vertex id {id} out of range (graph has {} vertices)",
            graph.vertex_count()
        )))
    }
}

/// Resolves tokens and computes effective `(k, b)` parameters, touching the
/// index only when a default `k` is needed (the paper's coreness-of-query
/// auto parameterization) — explicit parameters keep the index unbuilt for
/// online/lp requests.
fn normalize(entry: &GraphEntry, request: &QueryRequest) -> Result<Normalized, RequestError> {
    let graph = entry.graph();
    let (multi, tokens, explicit_ks, b) = match &request.kind {
        QueryKind::Pair { ql, qr, k1, k2, b } => (
            false,
            vec![ql.clone(), qr.clone()],
            vec![*k1, *k2],
            b.unwrap_or(1),
        ),
        QueryKind::Multi { qs, k, b } => {
            (true, qs.clone(), vec![*k; qs.len()], b.unwrap_or(1))
        }
    };
    let vertices: Vec<VertexId> = tokens
        .iter()
        .map(|t| resolve_vertex(graph, t))
        .collect::<Result<_, _>>()?;
    let ks: Vec<u32> = vertices
        .iter()
        .zip(&explicit_ks)
        .map(|(&v, k)| match k {
            Some(k) => *k,
            // Default: the query vertex's label coreness (index-backed).
            None => entry.index().index.coreness(v),
        })
        .collect();
    // Normalized execution order = sorted by vertex id, k's carried along.
    let mut pairs: Vec<(VertexId, u32)> = vertices.into_iter().zip(ks).collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    if multi {
        // `msearch q=a,a,b` describes the same query set as `q=a,b`: dedup
        // so both execute identically and share one cache slot. (Duplicate
        // vertices always carry identical k's — a uniform override or the
        // vertex's own coreness.) Pair queries keep their two slots: the
        // degenerate `ql == qr` form is still a pair search.
        pairs.dedup_by_key(|&mut (v, _)| v);
        if pairs.len() < 2 {
            return Err(RequestError::resolve(
                "`msearch` needs at least two distinct query vertices",
            ));
        }
    }
    let (vertices, ks): (Vec<VertexId>, Vec<u32>) = pairs.into_iter().unzip();
    Ok(Normalized { multi, vertices, ks, b })
}

/// The shared service handles one worker job records through: the result
/// cache, the lock-guarded counters, and the lock-free metrics registry.
#[derive(Clone)]
struct ExecShared {
    cache: SharedCache,
    counters: Arc<Mutex<Counters>>,
    metrics: Arc<Metrics>,
    faults: Arc<FaultPlan>,
    query_threads: usize,
}

/// Maps a pool-level wait failure to the structured protocol error it
/// surfaces as: an expired deadline is a `timeout`; a panicked worker job
/// (contained, worker respawned) and a shut-down pool are `internal` —
/// transient, never cached, and retryable by the caller.
fn job_error(err: JobError) -> RequestError {
    match err {
        JobError::DeadlineExpired => RequestError {
            kind: ErrorKind::Timeout,
            message: "deadline expired before the search completed".into(),
        },
        JobError::Panicked(message) => RequestError {
            kind: ErrorKind::Internal,
            message: format!("the worker executing this request panicked: {message}"),
        },
        JobError::Shutdown => RequestError {
            kind: ErrorKind::Internal,
            message: "the worker pool shut down before the search completed".into(),
        },
    }
}

/// Resolves the [`QUERY_THREADS_AUTO`] sentinel per query: sequential on
/// graphs too small to amortize stage-parallel thread handoff, one thread
/// per core at or above the cutover. Explicit settings pass through —
/// `query_threads: 1` remains the exact reference configuration. Every
/// setting produces byte-identical responses; only wall time moves.
fn effective_query_threads(configured: usize, graph: &LabeledGraph) -> usize {
    if configured != QUERY_THREADS_AUTO {
        return configured;
    }
    if graph.vertex_count() >= ADAPTIVE_PARALLEL_MIN_VERTICES {
        0
    } else {
        1
    }
}

/// Runs one search on a worker thread and (when `cache_insert` is set)
/// populates the cache. Requests whose deadline already passed are dropped
/// without executing (their waiter has moved on; starting the search would
/// waste the pool). Scatter sub-jobs pass `cache_insert: false` — their
/// inserts replay on the gather side, in plan order, so cache state stays
/// deterministic across shard counts.
fn execute(
    entry: &GraphEntry,
    method: Method,
    normalized: &Normalized,
    key: CacheKey,
    deadline: Option<Instant>,
    cache_insert: bool,
    shared: &ExecShared,
) -> Result<QueryOutcome, RequestError> {
    if let Some(deadline) = deadline {
        if Instant::now() >= deadline {
            return Err(RequestError {
                kind: ErrorKind::Timeout,
                message: "deadline expired before the search started".into(),
            });
        }
    }
    // Injection points for the query path: the execute entry itself plus
    // the four search phases it is about to run, checked at phase entry.
    // An injected error is transient (never cached) by early return here,
    // before the insert below.
    {
        use bcc_obs::Phase;
        for site in [
            FaultSite::WorkerExecute,
            FaultSite::Phase(Phase::QueryDistance),
            FaultSite::Phase(Phase::CoreDecomp),
            FaultSite::Phase(Phase::ButterflyCounting),
            FaultSite::Phase(Phase::LeaderPairing),
        ] {
            if shared.faults.perturb(site) {
                return Err(RequestError {
                    kind: ErrorKind::Internal,
                    message: format!("injected fault at {}", site.name()),
                });
            }
        }
    }
    let started = Instant::now();
    let graph = entry.graph();
    let query_threads = effective_query_threads(shared.query_threads, graph);
    let result = if normalized.multi {
        let query = MbccQuery::new(normalized.vertices.clone());
        let params = MbccParams::new(normalized.ks.clone(), normalized.b);
        let searcher = MultiLabelBcc::with_strategy(method.multi_strategy())
            .with_query_threads(query_threads);
        let index = match method {
            Method::L2p => Some(&entry.index().index),
            _ => None,
        };
        searcher.search(graph, index, &query, &params)
    } else {
        let query = BccQuery::pair(normalized.vertices[0], normalized.vertices[1]);
        let params = BccParams::new(normalized.ks[0], normalized.ks[1], normalized.b);
        match method {
            Method::Online => OnlineBcc::default()
                .with_query_threads(query_threads)
                .search(graph, &query, &params),
            Method::Lp => LpBcc::default()
                .with_query_threads(query_threads)
                .search(graph, &query, &params),
            Method::L2p => L2pBcc::default()
                .with_query_threads(query_threads)
                .search(graph, &entry.index().index, &query, &params),
        }
    };
    let elapsed = started.elapsed();
    // Telemetry is out-of-band: phase replay and the slow-query log read
    // the result's stats here, where they still exist — the response JSON
    // built from the outcome below never carries them.
    let verb = if normalized.multi { Verb::Msearch } else { Verb::Search };
    if let Ok(r) = &result {
        r.stats.record_phases(&*shared.metrics);
        shared.metrics.note_query(verb, entry.name(), elapsed, Some(&r.stats));
    } else {
        shared.metrics.note_query(verb, entry.name(), elapsed, None);
    }
    let outcome = result
        .map(|r| outcome_from_result(&r, &normalized.ks, normalized.b))
        .map_err(|e| RequestError {
            kind: ErrorKind::Search,
            message: e.to_string(),
        });
    {
        let mut counters = lock_unpoisoned(&shared.counters);
        counters.searches_executed += 1;
        counters.total_search_time += elapsed;
        if outcome.is_err() {
            counters.search_errors += 1;
        }
    }
    // Search outcomes — including deterministic search errors — are
    // cacheable; timeouts and panics never reach this point.
    if cache_insert {
        let weight = scatter::outcome_weight(&outcome);
        lock_unpoisoned(&shared.cache).insert_weighted(key, outcome.clone(), weight);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Two labeled 4-cliques bridged by a butterfly (a (3,3,1)-BCC).
    fn butterfly_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
        let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
        for grp in [&l, &r] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        b.build()
    }

    fn service() -> BccService {
        BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            butterfly_graph(),
        )
    }

    #[test]
    fn end_to_end_search_line() {
        let service = service();
        let LineOutcome::Output(line) = service.process_line("search ql=l0 qr=r0") else {
            panic!("expected output");
        };
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"size\":8"), "{line}");
        assert!(line.contains("\"method\":\"lp\""), "{line}");
    }

    #[test]
    fn symmetric_queries_share_cache_and_answers() {
        let service = service();
        let LineOutcome::Output(a) = service.process_line("search ql=l0 qr=r0") else {
            panic!();
        };
        let LineOutcome::Output(b) = service.process_line("search ql=r0 qr=l0") else {
            panic!();
        };
        // Identical payloads modulo the sequence number.
        let payload = |s: &str| s.split(",\"graph\"").nth(1).unwrap().to_string();
        assert_eq!(payload(&a), payload(&b), "symmetric pair serves the identical answer");
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.searches_executed, 1);
    }

    #[test]
    fn methods_cache_separately() {
        let service = service();
        service.process_line("search ql=l0 qr=r0 method=online");
        service.process_line("search ql=l0 qr=r0 method=lp");
        assert_eq!(service.stats().searches_executed, 2);
    }

    #[test]
    fn search_errors_are_structured_and_cached() {
        let service = service();
        // b=100 is unsatisfiable → SearchError::NoCandidate.
        let LineOutcome::Output(first) = service.process_line("search ql=l0 qr=r0 b=100")
        else {
            panic!();
        };
        assert!(first.contains("\"ok\":false"), "{first}");
        assert!(first.contains("\"error\":\"search\""), "{first}");
        service.process_line("search ql=l0 qr=r0 b=100");
        let stats = service.stats();
        assert_eq!(stats.searches_executed, 1, "error outcome is cached");
        assert_eq!(stats.search_errors, 1);
        assert_eq!(stats.cache.hits, 1);
    }

    #[test]
    fn resolve_and_parse_errors() {
        let service = service();
        let LineOutcome::Output(bad_vertex) = service.process_line("search ql=zz qr=r0")
        else {
            panic!();
        };
        assert!(bad_vertex.contains("\"error\":\"resolve\""), "{bad_vertex}");
        let LineOutcome::Output(bad_graph) =
            service.process_line("search ql=l0 qr=r0 graph=missing")
        else {
            panic!();
        };
        assert!(bad_graph.contains("no graph registered"), "{bad_graph}");
        let LineOutcome::Output(bad_line) = service.process_line("nonsense !!") else {
            panic!();
        };
        assert!(bad_line.contains("\"error\":\"parse\""), "{bad_line}");
        let stats = service.stats();
        assert_eq!(stats.resolve_errors, 2);
        assert_eq!(stats.parse_errors, 1);
    }

    #[test]
    fn msearch_line_works() {
        let service = service();
        let LineOutcome::Output(line) = service.process_line("msearch q=l0,r0 k=3") else {
            panic!();
        };
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    #[test]
    fn explicit_params_keep_index_unbuilt_for_lp() {
        let service = service();
        service.process_line("search ql=l0 qr=r0 k1=3 k2=3 b=1 method=lp");
        let entry = service.registry().get("default").unwrap();
        assert!(
            entry.index_if_built().is_none(),
            "explicit params + lp must not force the index build"
        );
        service.process_line("search ql=l0 qr=r0 k1=3 k2=3 b=1 method=l2p");
        assert!(entry.index_if_built().is_some(), "l2p builds it");
    }

    #[test]
    fn reregistering_a_graph_invalidates_its_cached_results() {
        let service = service();
        let LineOutcome::Output(first) = service.process_line("search ql=0 qr=4") else {
            panic!();
        };
        assert!(first.contains("\"size\":8"), "{first}");
        // Replace the default graph with one where vertices 0 and 4 share a
        // label: the old cached answer must not be served for the new
        // snapshot (keys carry the snapshot generation, not the name).
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("L");
        let y = b.add_vertex("L");
        for _ in 0..6 {
            b.add_vertex("L");
        }
        b.add_edge(x, y);
        service.registry().insert("default", b.build());
        let LineOutcome::Output(second) = service.process_line("search ql=0 qr=4") else {
            panic!();
        };
        assert!(
            second.contains("\"error\":\"search\""),
            "stale cache served for a replaced snapshot: {second}"
        );
    }

    #[test]
    fn session_loop_answers_and_quits() {
        let service = service();
        let input = b"# warmup\nsearch ql=l0 qr=r0\nstats\nquit\nsearch ql=l1 qr=r1\n";
        let mut output = Vec::new();
        service.run_session(&input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "comment silent, quit stops the session: {text}");
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"requests\":1"));
    }

    #[test]
    fn batch_preserves_input_order() {
        let service = service();
        let lines = [
            "search ql=l0 qr=r0",
            "bogus line",
            "search ql=l1 qr=r1 method=online",
            "",
            "search ql=l0 qr=r0",
        ];
        let out = service.run_batch(&lines);
        assert_eq!(out.len(), 4, "empty line emits nothing");
        assert!(out[0].contains("\"seq\":0"));
        assert!(out[1].contains("\"error\":\"parse\""));
        assert!(out[2].contains("\"method\":\"online\""));
        assert!(out[3].contains("\"seq\":3"));
    }

    #[test]
    fn msearch_duplicates_normalize_to_one_slot() {
        let service = service();
        let LineOutcome::Output(a) = service.process_line("msearch q=l0,l0,r0 k=3") else {
            panic!();
        };
        assert!(a.contains("\"ok\":true"), "{a}");
        let LineOutcome::Output(b) = service.process_line("msearch q=l0,r0 k=3") else {
            panic!();
        };
        // Same answer, one execution, one hit: the duplicate collapsed.
        let payload = |s: &str| s.split(",\"graph\"").nth(1).unwrap().to_string();
        assert_eq!(payload(&a), payload(&b));
        let stats = service.stats();
        assert_eq!(stats.searches_executed, 1, "q=l0,l0,r0 and q=l0,r0 share a slot");
        assert_eq!(stats.cache.hits, 1);
        // All-duplicates degenerates below two distinct vertices: structured
        // resolve error, not a panic.
        let LineOutcome::Output(bad) = service.process_line("msearch q=l0,l0 k=3") else {
            panic!();
        };
        assert!(bad.contains("\"error\":\"resolve\""), "{bad}");
        assert!(bad.contains("distinct"), "{bad}");
    }

    #[test]
    fn mutate_stage_and_commit_line_flow() {
        let service = service();
        let LineOutcome::Output(staged) = service.process_line("add_edge u=l3 v=r3") else {
            panic!();
        };
        assert_eq!(
            staged,
            "{\"ok\":true,\"op\":\"add_edge\",\"graph\":\"default\",\"staged\":1}"
        );
        let LineOutcome::Output(second) = service.process_line("remove_edge u=l0 v=r1") else {
            panic!();
        };
        assert!(second.contains("\"staged\":2"), "{second}");
        let LineOutcome::Output(committed) = service.process_line("commit") else { panic!() };
        assert!(committed.contains("\"ok\":true"), "{committed}");
        assert!(committed.contains("\"applied\":2"), "{committed}");
        assert!(committed.contains("\"edges\":16"), "{committed}");
        assert!(committed.contains("\"index_patched\":false"), "{committed}");
        // The committed snapshot serves subsequent searches: l3–r3 exists.
        let current = service.registry().get("default").unwrap();
        assert!(current.graph().has_edge(VertexId(3), VertexId(7)));
        assert!(!current.graph().has_edge(VertexId(0), VertexId(5)));
        let stats = service.stats();
        assert_eq!(stats.mutations_staged, 2);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn mutate_errors_are_structured() {
        let service = service();
        for (line, needle) in [
            ("commit", "nothing staged"),
            ("add_edge u=l0 v=l1", "already exists"),
            ("remove_edge u=l0 v=r3", "does not exist"),
            ("add_edge u=l0 v=l0", "self-loop"),
            ("add_edge u=nobody v=l0", "neither a vertex name nor an id"),
            ("add_edge u=l0 v=l1 graph=missing", "no graph registered"),
        ] {
            let LineOutcome::Output(out) = service.process_line(line) else { panic!() };
            assert!(out.contains("\"ok\":false"), "{line}: {out}");
            assert!(out.contains("\"error\":\"mutate\""), "{line}: {out}");
            assert!(out.contains(needle), "{line}: {out}");
        }
        assert_eq!(service.stats().mutate_errors, 6);
        assert_eq!(service.stats().mutations_staged, 0);
    }

    /// Two disconnected butterfly communities; mutating one must leave the
    /// other's warm cache entry hitting across the commit.
    fn two_component_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        for comp in ["x", "y"] {
            let l: Vec<_> =
                (0..4).map(|i| b.add_named_vertex(&format!("{comp}l{i}"), "L")).collect();
            let r: Vec<_> =
                (0..4).map(|i| b.add_named_vertex(&format!("{comp}r{i}"), "R")).collect();
            for grp in [&l, &r] {
                for i in 0..4 {
                    for j in (i + 1)..4 {
                        b.add_edge(grp[i], grp[j]);
                    }
                }
            }
            for &x in &l[..2] {
                for &y in &r[..2] {
                    b.add_edge(x, y);
                }
            }
        }
        b.build()
    }

    #[test]
    fn commit_invalidation_is_community_scoped() {
        let service = BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            two_component_graph(),
        );
        // Build the index so the commit takes the scoped (patched) path.
        service.registry().get("default").unwrap().index();
        // Warm both components.
        service.process_line("search ql=xl0 qr=xr0 k1=3 k2=3 b=1");
        service.process_line("search ql=yl0 qr=yr0 k1=3 k2=3 b=1");
        assert_eq!(service.stats().searches_executed, 2);

        // Mutate component x only.
        service.process_line("add_edge u=xl3 v=xr3");
        let LineOutcome::Output(committed) = service.process_line("commit") else { panic!() };
        assert!(committed.contains("\"index_patched\":true"), "{committed}");
        assert!(committed.contains("\"invalidated\":1"), "{committed}");
        assert!(committed.contains("\"retained\":1"), "{committed}");

        // Component y's entry survived the generation bump: a pure hit.
        let LineOutcome::Output(y) = service.process_line("search ql=yl0 qr=yr0 k1=3 k2=3 b=1")
        else {
            panic!();
        };
        assert!(y.contains("\"ok\":true"), "{y}");
        let stats = service.stats();
        assert_eq!(stats.searches_executed, 2, "the y community was never re-executed");
        assert_eq!(stats.cache.hits, 1);
        // Component x re-executes against the patched snapshot.
        service.process_line("search ql=xl0 qr=xr0 k1=3 k2=3 b=1");
        assert_eq!(service.stats().searches_executed, 3);
    }

    #[test]
    fn hostile_names_stay_valid_json() {
        // The line parser splits on whitespace only, so `ali"ce` is a legal
        // vertex token and `no"such` a legal graph name; both flow into
        // response strings and must be escaped.
        let service = service();
        let LineOutcome::Output(bad_vertex) = service.process_line("search ql=ali\"ce qr=r0")
        else {
            panic!();
        };
        assert!(bad_vertex.contains("ali\\\"ce"), "{bad_vertex}");
        let LineOutcome::Output(bad_graph) =
            service.process_line("search ql=l0 qr=r0 graph=no\"such")
        else {
            panic!();
        };
        assert!(bad_graph.contains("no\\\"such"), "{bad_graph}");
        let LineOutcome::Output(bad_mutate) = service.process_line("add_edge u=ali\"ce v=l0")
        else {
            panic!();
        };
        assert!(bad_mutate.contains("ali\\\"ce"), "{bad_mutate}");
        for line in [&bad_vertex, &bad_graph, &bad_mutate] {
            // Minimal structural check: even quote count ⇒ the name did not
            // terminate the JSON string early.
            let unescaped = line.replace("\\\"", "");
            assert_eq!(unescaped.matches('"').count() % 2, 0, "{line}");
        }
    }

    fn service_with_faults(specs: &[&str]) -> BccService {
        BccService::with_graph(
            ServiceConfig {
                workers: 1,
                faults: specs.iter().map(|s| s.to_string()).collect(),
                ..ServiceConfig::default()
            },
            butterfly_graph(),
        )
    }

    #[test]
    fn injected_worker_panic_is_contained_and_typed() {
        let service = service_with_faults(&["worker_execute:panic:1:1"]);
        let LineOutcome::Output(first) = service.process_line("search ql=l0 qr=r0") else {
            panic!();
        };
        assert!(first.contains("\"error\":\"internal\""), "{first}");
        assert!(first.contains("panicked"), "{first}");
        // The panicked query was never cached; the retry executes at full
        // (respawn-free: submit containment keeps the worker alive)
        // capacity and succeeds.
        let LineOutcome::Output(second) = service.process_line("search ql=l0 qr=r0") else {
            panic!();
        };
        assert!(second.contains("\"ok\":true"), "{second}");
        assert!(second.contains("\"size\":8"), "{second}");
        assert!(!second.contains("\"cached\""), "sanity: cached is not serialized");
        let stats = service.stats();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.worker_respawns, 0, "submit path contains without respawn");
        assert_eq!(stats.workers, 1, "pool capacity intact");
    }

    #[test]
    fn injected_error_is_transient_and_never_cached() {
        let service = service_with_faults(&["query_distance:error:1:1"]);
        let LineOutcome::Output(first) = service.process_line("search ql=l0 qr=r0") else {
            panic!();
        };
        assert!(first.contains("\"error\":\"internal\""), "{first}");
        assert!(first.contains("injected fault at query_distance"), "{first}");
        let LineOutcome::Output(second) = service.process_line("search ql=l0 qr=r0") else {
            panic!();
        };
        assert!(second.contains("\"ok\":true"), "{second}");
        let stats = service.stats();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.cache.hits, 0, "the injected failure must not be served again");
        assert_eq!(stats.searches_executed, 1, "only the retry reached the engine");
    }

    #[test]
    fn injected_delay_leaves_response_bytes_identical() {
        let faulty = service_with_faults(&["core_decomp:delay5ms:1:1"]);
        let clean = service_with_faults(&[]);
        let line = "search ql=l0 qr=r0";
        let LineOutcome::Output(a) = faulty.process_line(line) else { panic!() };
        let LineOutcome::Output(b) = clean.process_line(line) else { panic!() };
        assert_eq!(a, b, "a delay perturbs timing, never bytes");
        assert_eq!(faulty.stats().faults_injected, 1);
    }

    #[test]
    fn commit_phase_fault_leaves_staged_batch_intact() {
        let service = service_with_faults(&["overlay_apply:error:1:1"]);
        service.process_line("add_edge u=l3 v=r3");
        let LineOutcome::Output(failed) = service.process_line("commit") else { panic!() };
        assert!(failed.contains("\"ok\":false"), "{failed}");
        assert!(failed.contains("injected fault at overlay_apply"), "{failed}");
        // The batch was never consumed: the next commit applies it.
        let LineOutcome::Output(committed) = service.process_line("commit") else { panic!() };
        assert!(committed.contains("\"ok\":true"), "{committed}");
        assert!(committed.contains("\"applied\":1"), "{committed}");
        let stats = service.stats();
        assert_eq!(stats.mutate_errors, 1);
        assert_eq!(stats.commits, 1);
    }

    /// Three labeled 4-cliques chained A–B–C by butterflies (the
    /// sharded-differential suite's scatter topology).
    fn three_group_graph() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        let bb: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("C")).collect();
        for grp in [&a, &bb, &c] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for (left, right) in [(&a, &bb), (&bb, &c)] {
            for &x in &left[..2] {
                for &y in &right[..2] {
                    b.add_edge(x, y);
                }
            }
        }
        b.build()
    }

    #[test]
    fn scatter_pair_fault_is_retried_within_the_gather() {
        let service = BccService::with_graph(
            ServiceConfig {
                workers: 1,
                faults: vec!["scatter_pair:error:1:1".into()],
                ..ServiceConfig::default()
            },
            three_group_graph(),
        );
        // Three distinct labels ⇒ the scatter path (one assembly + three
        // pair sub-queries). The first pair submission eats the injected
        // error; the gather-side retry re-executes it cleanly.
        let LineOutcome::Output(line) = service.process_line("msearch q=0,4,8 k=3 b=1") else {
            panic!();
        };
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(!line.contains("internal"), "retry absorbed the fault: {line}");
        let stats = service.stats();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.pair_retries, 1);
    }

    #[test]
    fn stats_and_prometheus_surface_fault_counters() {
        let service = service();
        let stats = service.stats_json();
        assert!(
            stats.contains(
                ",\"faults\":{\"injected\":0,\"worker_panics\":0,\"worker_respawns\":0,\
                 \"pair_retries\":0,\"breaker_opens\":0,\"breaker_rerouted\":0}}"
            ),
            "{stats}"
        );
        assert!(stats.contains("\"breaker\":\"closed\""), "{stats}");
        let shard_list = service.shard_json(ShardCmd::List);
        assert!(shard_list.contains("\"breakers\":[\"closed\"]"), "{shard_list}");
        let prom = service.prometheus();
        assert!(prom.contains("bcc_shard_breaker_state{shard=\"0\"} 0"), "{prom}");
        assert!(prom.contains("bcc_faults_injected_total 0"), "{prom}");
        assert!(prom.contains("bcc_shard_worker_panics_total{shard=\"0\"} 0"), "{prom}");
        let metrics = service.metrics_json();
        assert!(metrics.ends_with(",\"faults\":{\"injected\":0,\"pair_retries\":0}}"), "{metrics}");
    }

    #[test]
    fn timeout_returns_structured_error() {
        // One worker: submit two uncached requests back-to-back, the second
        // with an already-expired (0 ms) deadline. Whichever side notices —
        // the waiter's deadline or the worker's pre-execution drop — the
        // response is a structured timeout, exactly once in the stats.
        let service = BccService::with_graph(
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
            butterfly_graph(),
        );
        let pair = |ql: &str, qr: &str, timeout_ms: Option<u64>| QueryRequest {
            graph: None,
            kind: QueryKind::Pair {
                ql: ql.into(),
                qr: qr.into(),
                k1: Some(3),
                k2: Some(3),
                b: Some(1),
            },
            method: Method::Lp,
            timeout_ms,
            priority: crate::request::Priority::Normal,
        };
        let first = service.submit(pair("l0", "r0", None));
        let second = service.submit(pair("l1", "r1", Some(0)));
        let err = service.wait(second).outcome.unwrap_err();
        assert_eq!(err.kind, ErrorKind::Timeout);
        assert!(service.wait(first).is_ok());
        assert_eq!(service.stats().timeouts, 1);
        // The dropped request was never executed, so it is not cached: a
        // retry without a deadline succeeds.
        let retry = service.handle(pair("l1", "r1", None));
        assert!(retry.is_ok());
        assert!(!retry.cached);
    }
}
