//! The service-side metrics registry: per-verb request counters and latency
//! histograms, per-phase histograms fed by [`bcc_core::SearchStats`] replays
//! and commit-stage timers, queue-wait distribution, and a slow-query log.
//!
//! Telemetry is strictly **out-of-band**: nothing here ever changes a
//! protocol response byte. The registry implements [`Recorder`], so the
//! same `record_phases` call that feeds a figure binary's [`QueryTrace`]
//! feeds the live histograms here. All hot-path recording is lock-free
//! (atomics only); the only formatting work happens in the cold
//! `snapshot_json` / `prometheus` renderers and in the (rare, gated)
//! slow-query log line.
//!
//! Two tiers of cost:
//!
//! * per-verb **request counters** are always on — they are single relaxed
//!   `fetch_add`s, the same price the service already pays for
//!   `TransportCounters`, and they back the `stats` verb's new fields;
//! * **histograms, phase recording, queue-wait, and the slow-query log**
//!   are gated on [`ServiceConfig::metrics`](crate::ServiceConfig) — the
//!   `metrics off` configuration is the baseline the ≤5 % overhead gate in
//!   `load_bench` compares against.

use std::time::Duration;

use bcc_obs::{duration_to_micros, Counter, Histogram, HistogramSnapshot, Phase, Recorder};

/// Protocol verbs, as counted/timed by the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verb {
    /// `search` — pair query.
    Search,
    /// `msearch` — multi-vertex query.
    Msearch,
    /// `add_edge` — stage an insertion.
    AddEdge,
    /// `remove_edge` — stage a removal.
    RemoveEdge,
    /// `commit` — apply the staged batch.
    Commit,
    /// `stats` — service counters snapshot.
    Stats,
    /// `graphs` — registry listing.
    Graphs,
    /// `metrics` — this registry's own snapshot.
    Metrics,
    /// `shard` — placement inspection/assignment (`shard list`/`shard
    /// assign`). Appended last so historical key-order prefixes survive.
    Shard,
}

impl Verb {
    /// Number of verbs.
    pub const COUNT: usize = 9;

    /// Every verb, in display order (stable: JSON + Prometheus rely on it).
    pub const ALL: [Verb; Verb::COUNT] = [
        Verb::Search,
        Verb::Msearch,
        Verb::AddEdge,
        Verb::RemoveEdge,
        Verb::Commit,
        Verb::Stats,
        Verb::Graphs,
        Verb::Metrics,
        Verb::Shard,
    ];

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Protocol spelling, used as JSON key and Prometheus label value.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Search => "search",
            Verb::Msearch => "msearch",
            Verb::AddEdge => "add_edge",
            Verb::RemoveEdge => "remove_edge",
            Verb::Commit => "commit",
            Verb::Stats => "stats",
            Verb::Graphs => "graphs",
            Verb::Metrics => "metrics",
            Verb::Shard => "shard",
        }
    }
}

/// The registry. One instance per [`crate::BccService`], shared (behind
/// `Arc`) with every worker and session thread.
#[derive(Debug)]
pub struct Metrics {
    enabled: bool,
    slow_query_micros: u64,
    requests: [Counter; Verb::COUNT],
    latency: [Histogram; Verb::COUNT],
    phases: [Histogram; Phase::COUNT],
    queue_wait: Histogram,
    slow_queries: Counter,
}

impl Metrics {
    /// `enabled = false` turns every histogram/log path into a branch on a
    /// bool; the per-verb request counters stay live either way.
    pub fn new(enabled: bool, slow_query_ms: u64) -> Metrics {
        Metrics {
            enabled,
            slow_query_micros: slow_query_ms.saturating_mul(1000),
            requests: std::array::from_fn(|_| Counter::new()),
            latency: std::array::from_fn(|_| Histogram::new()),
            phases: std::array::from_fn(|_| Histogram::new()),
            queue_wait: Histogram::new(),
            slow_queries: Counter::new(),
        }
    }

    /// Whether the gated (histogram/log) tier is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counts one request for `verb`. Always on.
    #[inline]
    pub fn count_request(&self, verb: Verb) {
        self.requests[verb.index()].inc();
    }

    /// Requests counted so far for `verb`.
    #[inline]
    pub fn requests(&self, verb: Verb) -> u64 {
        self.requests[verb.index()].get()
    }

    /// Records end-to-end latency for `verb`. Gated.
    #[inline]
    pub fn record_latency(&self, verb: Verb, elapsed: Duration) {
        if self.enabled {
            self.latency[verb.index()].record_duration(elapsed);
        }
    }

    /// Records time a request spent waiting for an admission permit. Gated.
    #[inline]
    pub fn record_queue_wait(&self, elapsed: Duration) {
        if self.enabled {
            self.queue_wait.record_duration(elapsed);
        }
    }

    /// Slow queries flagged so far.
    #[inline]
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries.get()
    }

    /// If `elapsed` exceeds the configured threshold, counts it and writes
    /// one structured JSON line to **stderr** (stdout is the protocol
    /// stream; responses must stay byte-identical with metrics on or off).
    /// Gated; a threshold of 0 ms flags every query with `elapsed > 0`.
    pub fn note_query(
        &self,
        verb: Verb,
        graph: &str,
        elapsed: Duration,
        stats: Option<&bcc_core::SearchStats>,
    ) {
        if !self.enabled {
            return;
        }
        let micros = duration_to_micros(elapsed);
        if micros <= self.slow_query_micros {
            return;
        }
        self.slow_queries.inc();
        let mut line = String::with_capacity(160);
        line.push_str(&format!(
            "{{\"slow_query\":true,\"verb\":\"{}\",\"graph\":\"{}\",\"elapsed_us\":{micros}",
            verb.name(),
            graph.escape_default(),
        ));
        if let Some(s) = stats {
            line.push_str(&format!(
                ",\"query_distance_us\":{},\"core_decomp_us\":{},\
                 \"butterfly_counting_us\":{},\"leader_pairing_us\":{}",
                duration_to_micros(s.time_query_distance),
                duration_to_micros(s.time_core_decomp),
                duration_to_micros(s.time_butterfly_counting),
                duration_to_micros(s.time_leader_update),
            ));
        }
        line.push('}');
        eprintln!("{line}");
    }

    /// Point-in-time copy of one phase histogram.
    pub fn phase_snapshot(&self, phase: Phase) -> HistogramSnapshot {
        self.phases[phase.index()].snapshot()
    }

    /// Point-in-time copy of one verb's latency histogram.
    pub fn latency_snapshot(&self, verb: Verb) -> HistogramSnapshot {
        self.latency[verb.index()].snapshot()
    }

    /// Point-in-time copy of the queue-wait histogram.
    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.queue_wait.snapshot()
    }

    /// The full registry as one deterministic JSON line (fixed key order,
    /// integers only) — the `metrics` protocol verb's response.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\"ok\":true,\"metrics_enabled\":{},\"slow_queries\":{}",
            self.enabled,
            self.slow_queries.get()
        ));
        out.push_str(",\"verbs\":{");
        for (i, verb) in Verb::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = self.latency[verb.index()].snapshot();
            out.push_str(&format!(
                "\"{}\":{{\"requests\":{},{}}}",
                verb.name(),
                self.requests[verb.index()].get(),
                histogram_json_fields(&snap)
            ));
        }
        out.push_str("},\"phases\":{");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = self.phases[phase.index()].snapshot();
            out.push_str(&format!("\"{}\":{{{}}}", phase.name(), histogram_json_fields(&snap)));
        }
        out.push_str(&format!(
            "}},\"queue_wait\":{{{}}}}}",
            histogram_json_fields(&self.queue_wait.snapshot())
        ));
        out
    }

    /// Prometheus text exposition (format 0.0.4), summary-style: quantiles
    /// as `quantile` labels plus `_sum`/`_count`, all in microseconds.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP bcc_metrics_enabled Whether the gated metrics tier is live.\n");
        out.push_str("# TYPE bcc_metrics_enabled gauge\n");
        out.push_str(&format!("bcc_metrics_enabled {}\n", u64::from(self.enabled)));
        out.push_str("# HELP bcc_requests_total Requests received, by protocol verb.\n");
        out.push_str("# TYPE bcc_requests_total counter\n");
        for verb in Verb::ALL {
            out.push_str(&format!(
                "bcc_requests_total{{verb=\"{}\"}} {}\n",
                verb.name(),
                self.requests[verb.index()].get()
            ));
        }
        out.push_str("# HELP bcc_slow_queries_total Queries over the slow-query threshold.\n");
        out.push_str("# TYPE bcc_slow_queries_total counter\n");
        out.push_str(&format!("bcc_slow_queries_total {}\n", self.slow_queries.get()));
        out.push_str(
            "# HELP bcc_verb_latency_microseconds End-to-end request latency, by verb.\n",
        );
        out.push_str("# TYPE bcc_verb_latency_microseconds summary\n");
        for verb in Verb::ALL {
            let snap = self.latency[verb.index()].snapshot();
            prometheus_summary(
                &mut out,
                "bcc_verb_latency_microseconds",
                &format!("verb=\"{}\"", verb.name()),
                &snap,
            );
        }
        out.push_str(
            "# HELP bcc_phase_latency_microseconds Time spent per engine phase.\n",
        );
        out.push_str("# TYPE bcc_phase_latency_microseconds summary\n");
        for phase in Phase::ALL {
            let snap = self.phases[phase.index()].snapshot();
            prometheus_summary(
                &mut out,
                "bcc_phase_latency_microseconds",
                &format!("phase=\"{}\"", phase.name()),
                &snap,
            );
        }
        out.push_str(
            "# HELP bcc_queue_wait_microseconds Time requests waited for an admission permit.\n",
        );
        out.push_str("# TYPE bcc_queue_wait_microseconds summary\n");
        prometheus_summary(&mut out, "bcc_queue_wait_microseconds", "", &self.queue_wait.snapshot());
        out
    }
}

impl Recorder for Metrics {
    /// Feeds the per-phase histograms. Gated: with metrics off this is a
    /// single predictable branch.
    #[inline]
    fn record_phase(&self, phase: Phase, elapsed: Duration) {
        if self.enabled {
            self.phases[phase.index()].record_duration(elapsed);
        }
    }
}

/// Shared histogram fields for `snapshot_json` (no surrounding braces).
fn histogram_json_fields(snap: &HistogramSnapshot) -> String {
    format!(
        "\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}",
        snap.count,
        snap.sum,
        snap.quantile(0.50),
        snap.quantile(0.90),
        snap.quantile(0.99)
    )
}

/// One summary family member: three quantiles + `_sum` + `_count`.
fn prometheus_summary(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
        out.push_str(&format!(
            "{name}{{{labels}{sep}quantile=\"{label}\"}} {}\n",
            snap.quantile(q)
        ));
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{braces} {}\n", snap.sum));
    out.push_str(&format!("{name}_count{braces} {}\n", snap.count));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_names_are_stable_and_distinct() {
        let mut names: Vec<_> = Verb::ALL.iter().map(|v| v.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Verb::COUNT);
        for (i, v) in Verb::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn counters_always_on_histograms_gated() {
        let off = Metrics::new(false, 250);
        off.count_request(Verb::Search);
        off.record_latency(Verb::Search, Duration::from_millis(3));
        off.record_phase(Phase::Cascade, Duration::from_millis(1));
        off.record_queue_wait(Duration::from_millis(1));
        assert_eq!(off.requests(Verb::Search), 1);
        assert!(off.latency_snapshot(Verb::Search).is_empty());
        assert!(off.phase_snapshot(Phase::Cascade).is_empty());
        assert!(off.queue_wait_snapshot().is_empty());

        let on = Metrics::new(true, 250);
        on.count_request(Verb::Search);
        on.record_latency(Verb::Search, Duration::from_millis(3));
        on.record_phase(Phase::Cascade, Duration::from_millis(1));
        on.record_queue_wait(Duration::from_millis(1));
        assert_eq!(on.latency_snapshot(Verb::Search).count, 1);
        assert_eq!(on.phase_snapshot(Phase::Cascade).count, 1);
        assert_eq!(on.queue_wait_snapshot().count, 1);
    }

    #[test]
    fn slow_query_threshold() {
        let m = Metrics::new(true, 10);
        m.note_query(Verb::Search, "g", Duration::from_millis(5), None);
        assert_eq!(m.slow_queries(), 0);
        m.note_query(Verb::Search, "g", Duration::from_millis(50), None);
        assert_eq!(m.slow_queries(), 1);
        let with_stats = bcc_core::SearchStats {
            time_query_distance: Duration::from_micros(17),
            ..Default::default()
        };
        m.note_query(Verb::Msearch, "g", Duration::from_millis(11), Some(&with_stats));
        assert_eq!(m.slow_queries(), 2);
        // Disabled registries never flag.
        let off = Metrics::new(false, 0);
        off.note_query(Verb::Search, "g", Duration::from_secs(1), None);
        assert_eq!(off.slow_queries(), 0);
    }

    #[test]
    fn snapshot_json_shape_is_deterministic() {
        let m = Metrics::new(true, 250);
        m.count_request(Verb::Search);
        m.record_latency(Verb::Search, Duration::from_micros(100));
        let json = m.snapshot_json();
        assert!(json.starts_with("{\"ok\":true,\"metrics_enabled\":true,\"slow_queries\":0"));
        assert!(json.contains("\"verbs\":{\"search\":{\"requests\":1,\"count\":1,"));
        assert!(json.contains("\"phases\":{\"query_distance\":{"));
        assert!(json.contains("\"queue_wait\":{\"count\":0,"));
        assert!(json.ends_with('}'));
        assert!(!json.contains('\n'));
        // Rendering twice with no traffic in between is byte-identical.
        assert_eq!(json, m.snapshot_json());
        // Every verb and phase appears exactly once.
        for v in Verb::ALL {
            assert_eq!(json.matches(&format!("\"{}\":{{", v.name())).count(), 1, "{}", v.name());
        }
        for p in Phase::ALL {
            assert!(json.contains(&format!("\"{}\":{{", p.name())), "{}", p.name());
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = Metrics::new(true, 250);
        m.count_request(Verb::Commit);
        m.record_latency(Verb::Commit, Duration::from_micros(64));
        m.record_phase(Phase::OverlayApply, Duration::from_micros(10));
        m.record_queue_wait(Duration::from_micros(5));
        let text = m.prometheus();
        assert!(text.contains("# TYPE bcc_requests_total counter"));
        assert!(text.contains("bcc_requests_total{verb=\"commit\"} 1"));
        assert!(text.contains("# TYPE bcc_verb_latency_microseconds summary"));
        assert!(text.contains("bcc_verb_latency_microseconds{verb=\"commit\",quantile=\"0.5\"}"));
        assert!(text.contains("bcc_verb_latency_microseconds_count{verb=\"commit\"} 1"));
        assert!(text.contains("bcc_phase_latency_microseconds{phase=\"overlay_apply\",quantile=\"0.99\"}"));
        assert!(text.contains("bcc_queue_wait_microseconds{quantile=\"0.5\"}"));
        assert!(text.contains("bcc_queue_wait_microseconds_count 1"));
        assert!(text.ends_with('\n'));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<u64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn metrics_recorder_accepts_search_stats_replay() {
        let m = Metrics::new(true, 250);
        let stats = bcc_core::SearchStats {
            time_query_distance: Duration::from_micros(10),
            time_core_decomp: Duration::from_micros(20),
            time_butterfly_counting: Duration::from_micros(30),
            time_leader_update: Duration::from_micros(40),
            ..Default::default()
        };
        stats.record_phases(&m);
        assert_eq!(m.phase_snapshot(Phase::QueryDistance).count, 1);
        assert_eq!(m.phase_snapshot(Phase::CoreDecomp).sum, 20);
        assert_eq!(m.phase_snapshot(Phase::ButterflyCounting).sum, 30);
        assert_eq!(m.phase_snapshot(Phase::LeaderPairing).sum, 40);
    }
}
