//! # bcc-service — concurrent, cached BCC query serving
//!
//! The paper's BCC search is an *online, per-query* operation over a shared
//! offline index (Section 6.3's BCindex). This crate turns the workspace's
//! library into a long-lived query engine exploiting exactly that split:
//!
//! * [`GraphRegistry`] — loads/generates named graphs once, holds each
//!   `LabeledGraph` + lazily built [`bcc_core::BccIndex`] behind `Arc` for
//!   shared read-only access across threads;
//! * [`WorkerPool`] — std::thread workers (N = available parallelism)
//!   executing requests concurrently against the shared snapshot, with
//!   per-request deadline support;
//! * [`LruCache`] — a result cache keyed by the *normalized* query
//!   (`(graph, method, sorted (vertex, k) pairs, b)`), so repeated and
//!   symmetric queries are served from memory, with hit/miss/eviction
//!   counters;
//! * [`BccService`] — the façade tying the three together and speaking a
//!   line-oriented protocol (`bcc serve` / `bcc batch` in the CLI),
//!   including live mutation: `add_edge`/`remove_edge` stage validated
//!   edge changes, `commit` applies them as a fresh snapshot with the
//!   BCindex patched in place (Algorithm 4 cascades + Algorithm 7
//!   butterfly deltas) and cache invalidation scoped to the affected
//!   communities.
//!
//! ```
//! use bcc_graph::GraphBuilder;
//! use bcc_service::{BccService, LineOutcome, ServiceConfig};
//!
//! // Two labeled 4-cliques bridged by a butterfly.
//! let mut b = GraphBuilder::new();
//! let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
//! let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
//! for grp in [&l, &r] {
//!     for i in 0..4 {
//!         for j in (i + 1)..4 {
//!             b.add_edge(grp[i], grp[j]);
//!         }
//!     }
//! }
//! for &x in &l[..2] {
//!     for &y in &r[..2] {
//!         b.add_edge(x, y);
//!     }
//! }
//!
//! let service = BccService::with_graph(ServiceConfig::default(), b.build());
//! let LineOutcome::Output(line) = service.process_line("search ql=l0 qr=r0") else {
//!     panic!("search lines produce output");
//! };
//! assert!(line.contains("\"ok\":true"));
//! // The same (symmetric) query again: a cache hit, same answer.
//! service.process_line("search ql=r0 qr=l0");
//! assert_eq!(service.stats().cache.hits, 1);
//! ```

pub mod cache;
pub mod codec;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod pool;
pub mod registry;
pub mod request;
pub mod response;
pub mod scatter;
pub mod server;
pub mod service;
pub mod session;

pub use cache::{CacheCounters, LruCache};
pub use codec::{codec_for, BinaryCodec, Codec, CodecError, CodecKind, LineCodec, MAX_FRAME_LEN};
pub use fault::{
    lock_unpoisoned, Breaker, BreakerState, FaultAction, FaultPlan, FaultRule, FaultSite,
};
pub use metrics::{Metrics, Verb};
pub use placement::{Shard, ShardCounters, ShardMap, ShardSnapshot};
pub use pool::{default_workers, JobError, Ticket, WorkerPool};
pub use registry::{BuiltIndex, CommitOutcome, GraphEntry, GraphRegistry};
pub use request::{
    parse_line, CacheKey, ErrorKind, Method, MutateOp, MutateRequest, ParsedLine, Priority,
    QueryKind, QueryRequest, RequestError, ShardCmd,
};
pub use response::{
    CommitSummary, MutateOutcome, MutateResponse, PairOutcome, QueryOutcome, QueryResponse,
};
pub use server::{Admission, AdmissionPermit, AdmitError, Server, ServerConfig, ServerHandle};
pub use service::{
    BccService, LineOutcome, Pending, ServiceConfig, ServiceStats, TransportCounters,
    QUERY_THREADS_AUTO,
};
pub use session::{session_error_json, SeqPolicy, Session, SessionConfig, SessionEnd};

/// Compile-time audit that every type the worker pool shares across threads
/// is `Send + Sync`: the graph snapshot, the index, the searchers, and the
/// service façade itself (`&BccService` is used from the session loop while
/// workers hold its cache/counters). A regression — say an `Rc` slipping
/// into `LabeledGraph` — fails this module's build, not a test at runtime.
#[allow(dead_code)]
mod send_sync_audit {
    fn assert_send_sync<T: Send + Sync>() {}

    fn audit() {
        assert_send_sync::<bcc_graph::LabeledGraph>();
        assert_send_sync::<bcc_core::BccIndex>();
        assert_send_sync::<bcc_core::BccResult>();
        assert_send_sync::<bcc_core::OnlineBcc>();
        assert_send_sync::<bcc_core::LpBcc>();
        assert_send_sync::<bcc_core::L2pBcc>();
        assert_send_sync::<bcc_core::MultiLabelBcc>();
        assert_send_sync::<bcc_core::SearchError>();
        assert_send_sync::<crate::GraphEntry>();
        assert_send_sync::<crate::GraphRegistry>();
        assert_send_sync::<crate::WorkerPool>();
        assert_send_sync::<crate::ShardMap>();
        assert_send_sync::<crate::BccService>();
        assert_send_sync::<crate::QueryResponse>();
        assert_send_sync::<crate::TransportCounters>();
        assert_send_sync::<crate::Admission>();
        assert_send_sync::<crate::Metrics>();
        assert_send_sync::<bcc_obs::Histogram>();
        assert_send_sync::<bcc_obs::QueryTrace>();
        assert_send_sync::<crate::FaultPlan>();
        assert_send_sync::<crate::Breaker>();
    }
}
