//! Concurrency smoke tests: the same workload must produce byte-identical
//! responses on 1 worker and N workers, and the cache must obey its
//! hit-count invariants (a second identical batch is served 100% from
//! memory).

use bcc_datasets::{queries, PlantedConfig, PlantedNetwork, QueryConstraints};
use bcc_service::{BccService, ServiceConfig};

/// A small planted network with guaranteed cross-label communities.
fn planted() -> PlantedNetwork {
    PlantedNetwork::generate(PlantedConfig {
        communities: 8,
        community_size: (16, 28),
        ..PlantedConfig::default()
    })
}

/// A deterministic workload of protocol lines over the planted network:
/// distinct ground-truth query pairs across all three methods, plus an
/// msearch and a deliberately unsatisfiable query (search errors are
/// deterministic outcomes and must cache like successes).
fn workload(net: &PlantedNetwork) -> Vec<String> {
    let qs = queries::random_community_queries(
        net,
        12,
        QueryConstraints { degree_rank: 0, inter_distance: None },
        7,
    );
    assert!(qs.len() >= 6, "planted network must yield enough queries");
    let mut lines = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, q) in qs.iter().enumerate() {
        let (a, b) = (q.vertices[0].0, q.vertices[1].0);
        // Dedup (unordered) pairs: in-batch duplicates would make cache
        // hit counts depend on scheduling.
        if !seen.insert((a.min(b), a.max(b))) {
            continue;
        }
        let method = ["online", "lp", "l2p"][i % 3];
        lines.push(format!("search ql={a} qr={b} method={method}"));
        lines.push(format!("msearch q={b},{a} method=lp"));
        lines.push(format!("search ql={a} qr={b} method={method} b=1000000"));
    }
    lines
}

fn service_with(workers: usize, net: &PlantedNetwork) -> BccService {
    BccService::with_graph(
        ServiceConfig { workers, cache_capacity: 4096, ..Default::default() },
        net.graph.clone(),
    )
}

#[test]
fn one_worker_and_n_workers_agree_byte_for_byte() {
    let net = planted();
    let lines = workload(&net);
    let n = bcc_service::default_workers().max(2);

    let single = service_with(1, &net);
    let multi = service_with(n, &net);
    let sequential = single.run_batch(&lines);
    let concurrent = multi.run_batch(&lines);

    assert_eq!(sequential.len(), lines.len());
    assert_eq!(
        sequential, concurrent,
        "worker count must never change an answer"
    );
    // Re-running the same batch on a *fresh* single-worker service is also
    // identical: the cache changes latency, never bytes.
    let fresh = service_with(1, &net);
    assert_eq!(fresh.run_batch(&lines), sequential);
}

#[test]
fn second_identical_batch_is_all_hits() {
    let net = planted();
    let lines = workload(&net);
    let service = service_with(bcc_service::default_workers(), &net);

    let first = service.run_batch(&lines);
    let after_first = service.stats();
    assert_eq!(after_first.cache.hits, 0, "distinct queries: no hit in batch 1");
    assert_eq!(after_first.cache.misses, lines.len() as u64);
    assert_eq!(after_first.searches_executed, lines.len() as u64);

    let second = service.run_batch(&lines);
    let after_second = service.stats();
    assert_eq!(first, second, "cached answers are byte-identical");
    assert_eq!(
        after_second.cache.hits,
        lines.len() as u64,
        "second identical batch ⇒ 100% hits"
    );
    assert_eq!(
        after_second.searches_executed,
        lines.len() as u64,
        "no additional search may execute for batch 2"
    );
    // Symmetric rewrites of the whole batch are also pure hits.
    let swapped: Vec<String> = lines
        .iter()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("search ql=") {
                let mut parts = rest.split(' ');
                let ql = parts.next().unwrap();
                let qr = parts.next().unwrap().strip_prefix("qr=").unwrap();
                let tail: Vec<&str> = parts.collect();
                format!("search ql={qr} qr={ql} {}", tail.join(" "))
            } else {
                l.clone()
            }
        })
        .collect();
    service.run_batch(&swapped);
    assert_eq!(
        service.stats().searches_executed,
        lines.len() as u64,
        "symmetric queries must be served from cache"
    );
}

#[test]
fn hammering_one_service_from_many_threads_is_consistent() {
    let net = planted();
    let lines = workload(&net);
    let service = std::sync::Arc::new(service_with(4, &net));
    let baseline = service.run_batch(&lines);

    // 8 client threads replay the same workload concurrently against the
    // shared (now warm) service; every response must match the baseline.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let service = std::sync::Arc::clone(&service);
        let lines = lines.clone();
        let baseline = baseline.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..3 {
                assert_eq!(service.run_batch(&lines), baseline);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = service.stats();
    assert_eq!(stats.searches_executed, lines.len() as u64);
    assert_eq!(stats.cache.hits, (8 * 3 * lines.len()) as u64);
}
