//! Property tests for the request parser and the serving front-end: no
//! input line — arbitrary byte soup or near-valid mutations — may panic,
//! and every malformed line must map to a structured error.

use bcc_graph::GraphBuilder;
use bcc_service::{
    parse_line, BccService, ErrorKind, LineOutcome, ParsedLine, ServiceConfig,
};
use proptest::prelude::*;

/// Arbitrary bytes (lossily decoded — the session reader hands the parser
/// `String`s, so this matches the real input surface).
fn byte_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..255, 0..120)
}

/// Near-valid lines: protocol fragments spliced together in random order,
/// hitting the parser's key/value handling much harder than raw bytes.
fn fragment_line() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..8)
}

const FRAGMENTS: &[&str] = &[
    "search", "msearch", "stats", "graphs", "quit", "ql=a", "ql=0", "qr=b", "qr==",
    "q=a,b", "q=,", "q=a", "k1=3", "k1=99999999999999999999", "k2=-1", "k=2", "b=1",
    "method=lp", "method=l2p", "method=", "graph=g", "timeout_ms=10", "ql", "=",
    "ql=a=b", "#", "search ql=a qr=b", "\u{1F98B}", "k1=③",
    "add_edge", "remove_edge", "commit", "u=a", "u=0", "v=b", "v=",
];

fn assemble(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| FRAGMENTS[i])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A tiny service so fuzz lines also exercise resolution + response
/// serialization end-to-end.
fn tiny_service() -> BccService {
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("a{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("b{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    BccService::with_graph(ServiceConfig { workers: 2, ..Default::default() }, b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics and classifies every line: parsed, empty, or
    /// a structured parse error.
    #[test]
    fn parser_total_on_arbitrary_bytes(bytes in byte_soup()) {
        let line = String::from_utf8_lossy(&bytes);
        match parse_line(&line) {
            Ok(ParsedLine::Request(req)) => {
                // A parsed request round-trips its invariants.
                match req.kind {
                    bcc_service::QueryKind::Pair { ref ql, ref qr, .. } => {
                        prop_assert!(!ql.is_empty() && !qr.is_empty());
                    }
                    bcc_service::QueryKind::Multi { ref qs, .. } => {
                        prop_assert!(qs.len() >= 2);
                    }
                }
            }
            Ok(_) => {}
            Err(err) => {
                prop_assert_eq!(err.kind, ErrorKind::Parse);
                prop_assert!(!err.message.is_empty());
            }
        }
    }

    /// Near-valid fragment splices never panic either, and errors stay
    /// structured.
    #[test]
    fn parser_total_on_fragment_splices(indices in fragment_line()) {
        let line = assemble(&indices);
        if let Err(err) = parse_line(&line) {
            prop_assert_eq!(err.kind, ErrorKind::Parse);
            prop_assert!(!err.message.is_empty());
        }
    }

    /// A repeated key is always a structured `duplicate key` parse error —
    /// never silent last-wins — for every verb, every key, every duplicate
    /// position, and regardless of whether the repeated value differs.
    #[test]
    fn duplicate_keys_are_structured_errors(
        verb_idx in 0usize..5,
        key_idx in 0usize..8,
        position in 0usize..8,
        same_value in 0usize..2,
    ) {
        // (verb, base tokens forming a fully valid line)
        const BASES: &[(&str, &[&str])] = &[
            ("search", &["ql=a", "qr=b", "k1=1", "b=2", "method=lp", "graph=g"]),
            ("msearch", &["q=a,b", "k=1", "b=2", "timeout_ms=5"]),
            ("add_edge", &["u=a", "v=b", "graph=g"]),
            ("remove_edge", &["u=a", "v=b"]),
            ("commit", &["graph=g"]),
        ];
        let (verb, base) = BASES[verb_idx % BASES.len()];
        let dup_source = base[key_idx % base.len()];
        let key = dup_source.split('=').next().unwrap();
        let duplicate = if same_value == 0 {
            dup_source.to_string()
        } else {
            format!("{key}=zz9")
        };
        let mut tokens: Vec<String> = base.iter().map(|t| t.to_string()).collect();
        tokens.insert(position % (tokens.len() + 1), duplicate);
        let line = format!("{verb} {}", tokens.join(" "));

        let err = parse_line(&line).expect_err(&format!("`{line}` must be rejected"));
        prop_assert_eq!(err.kind, ErrorKind::Parse, "line: {}", line);
        prop_assert!(
            err.message.contains("duplicate key"),
            "line `{}`: message `{}`",
            line,
            err.message
        );
        // The base line without the duplicate still parses.
        let clean = format!("{verb} {}", base.join(" "));
        prop_assert!(parse_line(&clean).is_ok(), "base line `{}` must parse", clean);
    }

    /// Valid `search` lines with arbitrary numeric parameters always parse
    /// to exactly those parameters.
    #[test]
    fn valid_search_lines_round_trip(
        (k1, k2) in (0u32..50, 0u32..50),
        b in 0u64..10,
        timeout in 1u64..10_000,
    ) {
        let line = format!(
            "search ql=x qr=y k1={k1} k2={k2} b={b} timeout_ms={timeout} method=online"
        );
        let Ok(ParsedLine::Request(req)) = parse_line(&line) else {
            panic!("valid line failed to parse: {line}");
        };
        prop_assert_eq!(req.timeout_ms, Some(timeout));
        prop_assert_eq!(req.method, bcc_service::Method::Online);
        let bcc_service::QueryKind::Pair { k1: pk1, k2: pk2, b: pb, .. } = req.kind else {
            panic!("search parsed to non-pair");
        };
        prop_assert_eq!(pk1, Some(k1));
        prop_assert_eq!(pk2, Some(k2));
        prop_assert_eq!(pb, Some(b));
    }
}

proptest! {
    // Full end-to-end fuzz runs searches on resolvable lines, so fewer
    // cases keep the suite fast; the graph is 8 vertices.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The whole serving front-end is total: any line produces either
    /// silence, a quit, or exactly one well-formed output line (valid JSON
    /// head, never a panic).
    #[test]
    fn service_front_end_total(indices in fragment_line(), bytes in byte_soup()) {
        let service = tiny_service();
        for line in [assemble(&indices), String::from_utf8_lossy(&bytes).into_owned()] {
            match service.process_line(&line) {
                LineOutcome::Output(out) => {
                    prop_assert!(
                        out.starts_with("{\"ok\":true") || out.starts_with("{\"ok\":false"),
                        "malformed output line: {out}"
                    );
                    prop_assert!(!out.contains('\n'), "output must be one line: {out:?}");
                }
                LineOutcome::Quit | LineOutcome::Silent => {}
            }
        }
    }
}
