//! Differential correctness of the live-mutation pipeline, driven through
//! the service protocol: after any randomized sequence of
//! `add_edge`/`remove_edge`/`commit` lines,
//!
//! * the registered snapshot equals a from-scratch rebuild of the final
//!   edge set,
//! * the patched BCindex is bit-identical to `BccIndex::build` on that
//!   snapshot, and
//! * search responses through the mutated service are byte-identical to a
//!   fresh service started directly on the final snapshot.

use bcc_core::BccIndex;
use bcc_graph::{GraphBuilder, LabeledGraph, VertexId};
use bcc_service::{BccService, LineOutcome, ServiceConfig};
use proptest::prelude::*;

/// Deterministic graph from generated bits: vertex `i` takes label
/// `G{label_bits[i % len] }`, pair `p` (row-major upper triangle) is an edge
/// iff `edge_bits[p % len]` is odd.
fn graph_from_bits(n: usize, label_bits: &[u8], edge_bits: &[u8]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            let bit = if label_bits.is_empty() { (i % 2) as u8 } else { label_bits[i % label_bits.len()] };
            b.add_vertex(&format!("G{bit}"))
        })
        .collect();
    let mut pair = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let bit = if edge_bits.is_empty() { (pair % 2) as u8 } else { edge_bits[pair % edge_bits.len()] };
            if bit == 1 {
                b.add_edge(vs[i], vs[j]);
            }
            pair += 1;
        }
    }
    b.build()
}

fn expect_output(service: &BccService, line: &str) -> String {
    match service.process_line(line) {
        LineOutcome::Output(out) => out,
        other => panic!("`{line}` produced {other:?} instead of output"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn protocol_mutation_sequences_are_differentially_correct(
        n in 6usize..12,
        label_bits in proptest::collection::vec(0u8..3, 1..12),
        edge_bits in proptest::collection::vec(0u8..2, 1..64),
        flips in proptest::collection::vec((0usize..16, 0usize..16), 1..10),
    ) {
        let base = graph_from_bits(n, &label_bits, &edge_bits);
        let service = BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            base.clone(),
        );
        // Force the index so every commit takes the patch path.
        service.registry().get("default").unwrap().index();

        // Replay the flip sequence through the protocol, committing each
        // change individually (maximum pressure on patch + rekey paths).
        for &(a, b) in &flips {
            let (u, v) = (a % n, b % n);
            if u == v {
                continue;
            }
            let entry = service.registry().get("default").unwrap();
            let verb = if entry.graph().has_edge(VertexId(u as u32), VertexId(v as u32)) {
                "remove_edge"
            } else {
                "add_edge"
            };
            let staged = expect_output(&service, &format!("{verb} u={u} v={v}"));
            prop_assert!(staged.contains("\"ok\":true"), "{staged}");
            let committed = expect_output(&service, "commit");
            prop_assert!(committed.contains("\"ok\":true"), "{committed}");
            prop_assert!(committed.contains("\"index_patched\":true"), "{committed}");
        }

        // 1. The patched index is bit-identical to a from-scratch build.
        let final_entry = service.registry().get("default").unwrap();
        let patched = &final_entry.index_if_built().expect("index carried across commits").index;
        let rebuilt = BccIndex::build(final_entry.graph());
        prop_assert_eq!(&patched.label_coreness, &rebuilt.label_coreness);
        prop_assert_eq!(&patched.butterfly_degree, &rebuilt.butterfly_degree);
        prop_assert_eq!(patched.delta_max, rebuilt.delta_max);
        prop_assert_eq!(patched.chi_max, rebuilt.chi_max);

        // 2. Search responses are byte-identical to a fresh service started
        // directly on the final snapshot (same seq: neither service has
        // executed a query request yet — mutations do not consume seq).
        let fresh = BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            final_entry.graph().clone(),
        );
        for (ql, qr, method) in [(0usize, n - 1, "lp"), (1, n / 2, "l2p"), (2, n - 2, "online")] {
            if ql == qr {
                continue;
            }
            let line = format!("search ql={ql} qr={qr} method={method}");
            prop_assert_eq!(
                expect_output(&service, &line),
                expect_output(&fresh, &line),
                "mutated-then-searched differs from fresh on `{}`",
                line
            );
        }
        let mline = format!("msearch q=0,{} k=1", n - 1);
        prop_assert_eq!(expect_output(&service, &mline), expect_output(&fresh, &mline));
    }

    /// Batched commits (several staged changes, one commit) agree with a
    /// rebuild too — including when the index was never built (lazy path).
    #[test]
    fn batched_commits_agree_with_rebuild(
        n in 6usize..12,
        label_bits in proptest::collection::vec(0u8..2, 1..8),
        edge_bits in proptest::collection::vec(0u8..2, 1..64),
        flips in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
        build_index in 0u8..2,
    ) {
        let base = graph_from_bits(n, &label_bits, &edge_bits);
        let service = BccService::with_graph(ServiceConfig::default(), base.clone());
        if build_index == 1 {
            service.registry().get("default").unwrap().index();
        }
        let mut staged_any = false;
        for &(a, b) in &flips {
            let (u, v) = (a % n, b % n);
            if u == v {
                continue;
            }
            // Validity against base ∪ staged: ask the service; a rejected
            // staging must leave the batch intact.
            let out = expect_output(&service, &format!("add_edge u={u} v={v}"));
            if out.contains("already exists") {
                let out = expect_output(&service, &format!("remove_edge u={u} v={v}"));
                prop_assert!(out.contains("\"ok\":true"), "{out}");
            } else {
                prop_assert!(out.contains("\"ok\":true"), "{out}");
            }
            staged_any = true;
        }
        if !staged_any {
            continue; // every flip degenerated to a self-loop — skip the case
        }
        let committed = expect_output(&service, "commit");
        prop_assert!(committed.contains("\"ok\":true"), "{committed}");

        let entry = service.registry().get("default").unwrap();
        let rebuilt = BccIndex::build(entry.graph());
        match entry.index_if_built() {
            Some(built) => {
                prop_assert_eq!(&built.index.label_coreness, &rebuilt.label_coreness);
                prop_assert_eq!(&built.index.butterfly_degree, &rebuilt.butterfly_degree);
            }
            None => {
                // Lazy path: first use builds it fresh on the new snapshot.
                prop_assert!(build_index == 0);
                let forced = &entry.index().index;
                prop_assert_eq!(&forced.label_coreness, &rebuilt.label_coreness);
            }
        }
    }
}
