//! Differential correctness of the live-mutation pipeline, driven through
//! the service protocol: after any randomized sequence of
//! `add_edge`/`remove_edge`/`commit` lines,
//!
//! * the registered snapshot equals a from-scratch rebuild of the final
//!   edge set,
//! * the patched BCindex is bit-identical to `BccIndex::build` on that
//!   snapshot, and
//! * search responses through the mutated service are byte-identical to a
//!   fresh service started directly on the final snapshot.

use bcc_core::BccIndex;
use bcc_graph::{GraphBuilder, LabeledGraph, VertexId};
use bcc_service::{BccService, LineOutcome, ServiceConfig};
use proptest::prelude::*;

/// Deterministic graph from generated bits: vertex `i` takes label
/// `G{label_bits[i % len] }`, pair `p` (row-major upper triangle) is an edge
/// iff `edge_bits[p % len]` is odd.
fn graph_from_bits(n: usize, label_bits: &[u8], edge_bits: &[u8]) -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|i| {
            let bit = if label_bits.is_empty() { (i % 2) as u8 } else { label_bits[i % label_bits.len()] };
            b.add_vertex(&format!("G{bit}"))
        })
        .collect();
    let mut pair = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let bit = if edge_bits.is_empty() { (pair % 2) as u8 } else { edge_bits[pair % edge_bits.len()] };
            if bit == 1 {
                b.add_edge(vs[i], vs[j]);
            }
            pair += 1;
        }
    }
    b.build()
}

fn expect_output(service: &BccService, line: &str) -> String {
    match service.process_line(line) {
        LineOutcome::Output(out) => out,
        other => panic!("`{line}` produced {other:?} instead of output"),
    }
}

/// Pulls the integer value of `"field":N` out of a JSON response line.
fn json_uint(response: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let start = response
        .find(&needle)
        .unwrap_or_else(|| panic!("`{field}` missing in `{response}`"))
        + needle.len();
    response[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("`{field}` not an integer in `{response}`"))
}

/// Two 4-clique communities per label side, far apart: a pair of bridged
/// L/R cliques on vertices 0..8 and another on 8..16, with a long path of
/// alternating labels between them so the graph stays connected but the
/// clusters never share community members.
fn two_clusters() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..16)
        .map(|i| b.add_vertex(if (i / 4) % 2 == 0 { "L" } else { "R" }))
        .collect();
    for cluster in [0usize, 8] {
        for side in [cluster, cluster + 4] {
            for i in side..side + 4 {
                for j in (i + 1)..side + 4 {
                    b.add_edge(vs[i], vs[j]);
                }
            }
        }
        // A 2×2 butterfly bridges the cluster's L and R cliques.
        for &x in &vs[cluster..cluster + 2] {
            for &y in &vs[cluster + 4..cluster + 6] {
                b.add_edge(x, y);
            }
        }
    }
    let path: Vec<VertexId> = (0..6)
        .map(|i| b.add_vertex(if i % 2 == 0 { "L" } else { "R" }))
        .collect();
    b.add_edge(vs[7], path[0]);
    for w in path.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.add_edge(path[5], vs[8]);
    b.build()
}

/// Scoped invalidation, deterministically non-vacuous: warm entries in the
/// untouched cluster survive a batched commit that only mutates the other
/// cluster — and the batched `retained`/`invalidated` counts match the
/// per-edge twin's survivors exactly.
#[test]
fn batched_commit_retains_far_entries_like_per_edge_twin() {
    let base = two_clusters();
    let config = || ServiceConfig { workers: 2, ..ServiceConfig::default() };
    let batched = BccService::with_graph(config(), base.clone());
    let twin = BccService::with_graph(config(), base.clone());
    batched.registry().get("default").unwrap().index();
    twin.registry().get("default").unwrap().index();

    // Warm one entry per cluster (cluster 0: vertices 0..8 with its L/R
    // butterfly; cluster 1: vertices 8..16).
    for line in ["search ql=0 qr=4", "search ql=8 qr=12"] {
        let a = expect_output(&batched, line);
        assert!(a.contains("\"ok\":true"), "{a}");
        assert_eq!(a, expect_output(&twin, line));
    }

    // Mutate only cluster 1: drop and re-route two of its cross edges and
    // one homogeneous edge. Cluster 0's community never intersects. The
    // batched service stages all three and commits once; the per-edge twin
    // commits after every stage.
    let flips = ["remove_edge u=8 v=12", "add_edge u=10 v=14", "remove_edge u=9 v=10"];
    let mut twin_last_retained = 0;
    for line in flips {
        assert!(expect_output(&batched, line).contains("\"ok\":true"));
        assert!(expect_output(&twin, line).contains("\"ok\":true"));
        let committed = expect_output(&twin, "commit");
        assert!(committed.contains("\"index_patched\":true"), "{committed}");
        twin_last_retained = json_uint(&committed, "retained");
    }

    let committed = expect_output(&batched, "commit");
    assert!(committed.contains("\"index_patched\":true"), "{committed}");
    assert_eq!(json_uint(&committed, "applied"), 3);
    let retained = json_uint(&committed, "retained");
    assert!(retained >= 1, "cluster-0 entry must survive: {committed}");
    assert_eq!(retained, twin_last_retained, "batched vs per-edge survivors: {committed}");
    assert_eq!(
        json_uint(&committed, "invalidated"),
        1,
        "only the mutated cluster's entry drops: {committed}"
    );

    // The retained entry still serves byte-identically post-commit.
    assert_eq!(
        expect_output(&batched, "search ql=0 qr=4"),
        expect_output(&twin, "search ql=0 qr=4")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn protocol_mutation_sequences_are_differentially_correct(
        n in 6usize..12,
        label_bits in proptest::collection::vec(0u8..3, 1..12),
        edge_bits in proptest::collection::vec(0u8..2, 1..64),
        flips in proptest::collection::vec((0usize..16, 0usize..16), 1..10),
    ) {
        let base = graph_from_bits(n, &label_bits, &edge_bits);
        let service = BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            base.clone(),
        );
        // Force the index so every commit takes the patch path.
        service.registry().get("default").unwrap().index();

        // Replay the flip sequence through the protocol, committing each
        // change individually (maximum pressure on patch + rekey paths).
        for &(a, b) in &flips {
            let (u, v) = (a % n, b % n);
            if u == v {
                continue;
            }
            let entry = service.registry().get("default").unwrap();
            let verb = if entry.graph().has_edge(VertexId(u as u32), VertexId(v as u32)) {
                "remove_edge"
            } else {
                "add_edge"
            };
            let staged = expect_output(&service, &format!("{verb} u={u} v={v}"));
            prop_assert!(staged.contains("\"ok\":true"), "{staged}");
            let committed = expect_output(&service, "commit");
            prop_assert!(committed.contains("\"ok\":true"), "{committed}");
            prop_assert!(committed.contains("\"index_patched\":true"), "{committed}");
        }

        // 1. The patched index is bit-identical to a from-scratch build.
        let final_entry = service.registry().get("default").unwrap();
        let patched = &final_entry.index_if_built().expect("index carried across commits").index;
        let rebuilt = BccIndex::build(final_entry.graph());
        prop_assert_eq!(&patched.label_coreness, &rebuilt.label_coreness);
        prop_assert_eq!(&patched.butterfly_degree, &rebuilt.butterfly_degree);
        prop_assert_eq!(patched.delta_max, rebuilt.delta_max);
        prop_assert_eq!(patched.chi_max, rebuilt.chi_max);

        // 2. Search responses are byte-identical to a fresh service started
        // directly on the final snapshot (same seq: neither service has
        // executed a query request yet — mutations do not consume seq).
        let fresh = BccService::with_graph(
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
            final_entry.graph().clone(),
        );
        for (ql, qr, method) in [(0usize, n - 1, "lp"), (1, n / 2, "l2p"), (2, n - 2, "online")] {
            if ql == qr {
                continue;
            }
            let line = format!("search ql={ql} qr={qr} method={method}");
            prop_assert_eq!(
                expect_output(&service, &line),
                expect_output(&fresh, &line),
                "mutated-then-searched differs from fresh on `{}`",
                line
            );
        }
        let mline = format!("msearch q=0,{} k=1", n - 1);
        prop_assert_eq!(expect_output(&service, &mline), expect_output(&fresh, &mline));
    }

    /// One batched commit versus a per-edge-commit twin versus a cold
    /// rebuild, driven entirely through the protocol: the same flip
    /// sequence staged once and committed in one batch must produce
    /// byte-identical search responses, a bit-identical BCindex, and the
    /// same dirty-set-scoped invalidation outcome — the batched commit's
    /// `retained` count equals the per-edge twin's final survivor count
    /// (an entry survives iff it intersects no per-edge dirty set, and the
    /// batch dirty set is exactly the union of the per-edge ones).
    #[test]
    fn batched_commit_matches_per_edge_twin_and_cold_rebuild(
        n in 6usize..12,
        label_bits in proptest::collection::vec(0u8..3, 1..10),
        edge_bits in proptest::collection::vec(0u8..2, 1..64),
        flips in proptest::collection::vec((0usize..16, 0usize..16), 1..24),
    ) {
        let base = graph_from_bits(n, &label_bits, &edge_bits);
        let config = || ServiceConfig { workers: 2, ..ServiceConfig::default() };
        let batched = BccService::with_graph(config(), base.clone());
        let twin = BccService::with_graph(config(), base.clone());
        batched.registry().get("default").unwrap().index();
        twin.registry().get("default").unwrap().index();

        // Seed both caches with the same warm entries (Ok and Err outcomes).
        let seeds: Vec<String> = [(0usize, n - 1), (1, n / 2), (2, n - 2), (0, n + 7)]
            .iter()
            .filter(|(ql, qr)| ql != qr)
            .map(|(ql, qr)| format!("search ql={ql} qr={qr}"))
            .collect();
        for line in &seeds {
            prop_assert_eq!(expect_output(&batched, line), expect_output(&twin, line));
        }

        // Same flip sequence: staged-only on `batched`, commit-per-edge on
        // `twin`. Verbs are resolved on the twin's live snapshot, which the
        // batched service's base ∪ staged overlay mirrors exactly.
        let mut staged_count = 0usize;
        let mut twin_last_retained = 0u64;
        for &(a, b) in &flips {
            let (u, v) = (a % n, b % n);
            if u == v {
                continue;
            }
            let live = twin.registry().get("default").unwrap();
            let verb = if live.graph().has_edge(VertexId(u as u32), VertexId(v as u32)) {
                "remove_edge"
            } else {
                "add_edge"
            };
            let line = format!("{verb} u={u} v={v}");
            let twin_out = expect_output(&twin, &line);
            prop_assert!(twin_out.contains("\"ok\":true"), "{}", twin_out);
            let batched_out = expect_output(&batched, &line);
            prop_assert!(batched_out.contains("\"ok\":true"), "{}", batched_out);
            let committed = expect_output(&twin, "commit");
            prop_assert!(committed.contains("\"index_patched\":true"), "{}", committed);
            twin_last_retained = json_uint(&committed, "retained");
            staged_count += 1;
        }
        if staged_count == 0 {
            continue; // every flip degenerated to a self-loop — skip the case
        }

        let committed = expect_output(&batched, "commit");
        prop_assert!(committed.contains("\"ok\":true"), "{}", committed);
        prop_assert!(committed.contains("\"index_patched\":true"), "{}", committed);
        prop_assert_eq!(json_uint(&committed, "applied"), staged_count as u64);
        // Scoped invalidation equivalence: survivors of the one batched
        // commit == survivors of the whole per-edge commit chain.
        prop_assert_eq!(
            json_uint(&committed, "retained"),
            twin_last_retained,
            "batched retained != per-edge twin survivors: {}",
            committed
        );

        // Identical final snapshots and bit-identical patched indices.
        let batched_entry = batched.registry().get("default").unwrap();
        let twin_entry = twin.registry().get("default").unwrap();
        prop_assert_eq!(batched_entry.graph().edge_count(), twin_entry.graph().edge_count());
        let batched_index = &batched_entry.index_if_built().unwrap().index;
        let twin_index = &twin_entry.index_if_built().unwrap().index;
        prop_assert_eq!(&batched_index.label_coreness, &twin_index.label_coreness);
        prop_assert_eq!(&batched_index.butterfly_degree, &twin_index.butterfly_degree);
        let rebuilt = BccIndex::build(batched_entry.graph());
        prop_assert_eq!(&batched_index.label_coreness, &rebuilt.label_coreness);
        prop_assert_eq!(&batched_index.butterfly_degree, &rebuilt.butterfly_degree);
        prop_assert_eq!(batched_index.delta_max, rebuilt.delta_max);
        prop_assert_eq!(batched_index.chi_max, rebuilt.chi_max);

        // Byte-identical serving: cold service on the final snapshot, with
        // the same pre-commit search lines replayed so seq counters align.
        let cold = BccService::with_graph(config(), batched_entry.graph().clone());
        for line in &seeds {
            let _ = expect_output(&cold, line);
        }
        for (ql, qr, method) in [(0usize, n - 1, "lp"), (1, n / 2, "l2p"), (2, n - 2, "online")] {
            if ql == qr {
                continue;
            }
            let line = format!("search ql={ql} qr={qr} method={method}");
            let from_batched = expect_output(&batched, &line);
            prop_assert_eq!(&from_batched, &expect_output(&twin, &line), "twin diverged on `{}`", line);
            prop_assert_eq!(&from_batched, &expect_output(&cold, &line), "cold diverged on `{}`", line);
        }
        let mline = format!("msearch q=0,{} k=1", n - 1);
        let from_batched = expect_output(&batched, &mline);
        prop_assert_eq!(&from_batched, &expect_output(&twin, &mline));
        prop_assert_eq!(&from_batched, &expect_output(&cold, &mline));
    }

    /// Batched commits (several staged changes, one commit) agree with a
    /// rebuild too — including when the index was never built (lazy path).
    #[test]
    fn batched_commits_agree_with_rebuild(
        n in 6usize..12,
        label_bits in proptest::collection::vec(0u8..2, 1..8),
        edge_bits in proptest::collection::vec(0u8..2, 1..64),
        flips in proptest::collection::vec((0usize..16, 0usize..16), 1..8),
        build_index in 0u8..2,
    ) {
        let base = graph_from_bits(n, &label_bits, &edge_bits);
        let service = BccService::with_graph(ServiceConfig::default(), base.clone());
        if build_index == 1 {
            service.registry().get("default").unwrap().index();
        }
        let mut staged_any = false;
        for &(a, b) in &flips {
            let (u, v) = (a % n, b % n);
            if u == v {
                continue;
            }
            // Validity against base ∪ staged: ask the service; a rejected
            // staging must leave the batch intact.
            let out = expect_output(&service, &format!("add_edge u={u} v={v}"));
            if out.contains("already exists") {
                let out = expect_output(&service, &format!("remove_edge u={u} v={v}"));
                prop_assert!(out.contains("\"ok\":true"), "{out}");
            } else {
                prop_assert!(out.contains("\"ok\":true"), "{out}");
            }
            staged_any = true;
        }
        if !staged_any {
            continue; // every flip degenerated to a self-loop — skip the case
        }
        let committed = expect_output(&service, "commit");
        prop_assert!(committed.contains("\"ok\":true"), "{committed}");

        let entry = service.registry().get("default").unwrap();
        let rebuilt = BccIndex::build(entry.graph());
        match entry.index_if_built() {
            Some(built) => {
                prop_assert_eq!(&built.index.label_coreness, &rebuilt.label_coreness);
                prop_assert_eq!(&built.index.butterfly_degree, &rebuilt.butterfly_degree);
            }
            None => {
                // Lazy path: first use builds it fresh on the new snapshot.
                prop_assert!(build_index == 0);
                let forced = &entry.index().index;
                prop_assert_eq!(&forced.label_coreness, &rebuilt.label_coreness);
            }
        }
    }
}
