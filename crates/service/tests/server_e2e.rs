//! End-to-end tests of the TCP front-end against an in-process server:
//! byte-identity with `run_batch` across both codecs, structured overload
//! rejection, per-transport `quit` semantics, and full-server `shutdown`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bcc_graph::{GraphBuilder, LabeledGraph};
use bcc_service::{
    BccService, BinaryCodec, Priority, Server, ServerConfig, ServerHandle, ServiceConfig,
};

/// Two labeled 4-cliques bridged by a butterfly (a (3,3,1)-BCC).
fn butterfly_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    b.build()
}

/// A service with `count` independent copies of the butterfly graph
/// registered as `g0..g{count-1}` — per-client graphs keep concurrent
/// mutate-then-search workloads deterministic per client.
///
/// The result cache is off: a commit's `invalidated` count depends on
/// whether earlier searches' results have landed in the cache yet, which
/// `run_batch` (mutations execute at submit time, search results land
/// asynchronously) does not pin down. With the cache disabled both the
/// sequential TCP session and the batch report `invalidated:0` — every
/// other byte is timing-independent.
fn service_with_graphs(count: usize) -> Arc<BccService> {
    let service = Arc::new(BccService::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        ..ServiceConfig::default()
    }));
    for i in 0..count {
        service.registry().insert(format!("g{i}"), butterfly_graph());
    }
    service
}

fn start(service: &Arc<BccService>, config: ServerConfig) -> ServerHandle {
    Server::bind(Arc::clone(service), "127.0.0.1:0", config).expect("bind 127.0.0.1:0")
}

/// A test client speaking either codec over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    fn connect(handle: &ServerHandle, binary: bool) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("set_nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            binary,
        }
    }

    fn send(&mut self, payload: &str) {
        if self.binary {
            self.writer.write_all(&BinaryCodec::encode_frame(payload)).unwrap();
        } else {
            let mut line = Vec::with_capacity(payload.len() + 1);
            line.extend_from_slice(payload.as_bytes());
            line.push(b'\n');
            self.writer.write_all(&line).unwrap();
        }
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Option<String> {
        if self.binary {
            let mut prefix = [0u8; 4];
            self.reader.read_exact(&mut prefix).ok()?;
            let len = u32::from_be_bytes(prefix) as usize;
            let mut payload = vec![0u8; len];
            self.reader.read_exact(&mut payload).ok()?;
            Some(String::from_utf8(payload).expect("UTF-8 response"))
        } else {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => None,
                Ok(_) => {
                    while line.ends_with('\n') || line.ends_with('\r') {
                        line.pop();
                    }
                    Some(line)
                }
            }
        }
    }

    fn round_trip(&mut self, payload: &str) -> String {
        self.send(payload);
        self.recv().expect("response")
    }
}

/// The per-client workload: mutate-then-search interleaved, plus a parse
/// error and both query forms. No `stats` lines — their counters are
/// global and nondeterministic under concurrency.
fn workload(graph: &str) -> Vec<String> {
    vec![
        format!("search ql=l0 qr=r0 graph={graph}"),
        format!("add_edge u=l3 v=r3 graph={graph}"),
        format!("commit graph={graph}"),
        format!("search ql=l3 qr=r3 graph={graph}"),
        format!("this is not a protocol line"),
        format!("search ql=l0 qr=r0 graph={graph} method=online"),
        format!("msearch q=l1,r1 graph={graph} k=3 b=1"),
        format!("remove_edge u=l3 v=r3 graph={graph}"),
        format!("commit graph={graph}"),
        format!("search ql=l0 qr=r0 graph={graph}"),
    ]
}

#[test]
fn eight_concurrent_clients_match_run_batch_on_both_codecs() {
    const CLIENTS: usize = 8;
    let service = service_with_graphs(CLIENTS);
    let handle = start(&service, ServerConfig::default());

    let collected: Vec<(usize, Vec<String>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let handle = &handle;
                s.spawn(move || {
                    // Half the clients speak binary frames, half newline JSON.
                    let mut client = Client::connect(handle, i % 2 == 0);
                    let responses: Vec<String> = workload(&format!("g{i}"))
                        .iter()
                        .map(|line| client.round_trip(line))
                        .collect();
                    client.send("quit");
                    assert!(client.recv().is_none(), "quit closes the session");
                    (i, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Each client's responses must be byte-identical to the equivalent
    // run_batch against a fresh service holding the same graph.
    for (i, responses) in collected {
        let graph = format!("g{i}");
        let twin = BccService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        twin.registry().insert(graph.clone(), butterfly_graph());
        let expected = twin.run_batch(&workload(&graph));
        assert_eq!(
            responses, expected,
            "client {i}: TCP responses diverge from run_batch"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.connections_accepted, CLIENTS as u64);
    assert_eq!(
        stats.admitted,
        5 * CLIENTS as u64,
        "four searches + one msearch per client pass the gate"
    );
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

    handle.shutdown();
    handle.join();
    assert_eq!(service.stats().active_sessions, 0, "no leaked sessions");
}

#[test]
fn overload_rejects_with_structured_error_and_recovers() {
    let service = service_with_graphs(1);
    let handle = start(
        &service,
        ServerConfig { concurrency: 1, queue_depth: 0, ..ServerConfig::default() },
    );

    // Occupy the only admission slot from the outside: any query arriving
    // now sees a full (depth-0) queue — deterministic overload.
    let permit = handle.admission().admit(u64::MAX, Priority::Normal, None).unwrap();
    let mut client = Client::connect(&handle, false);
    let rejected = client.round_trip("search ql=l0 qr=r0 graph=g0");
    assert!(
        rejected.contains("\"error\":{\"kind\":\"overloaded\""),
        "structured overload rejection, got: {rejected}"
    );
    assert!(rejected.starts_with("{\"ok\":false,\"seq\":0"), "{rejected}");

    // Non-query lines bypass admission and still work while overloaded.
    let graphs = client.round_trip("graphs");
    assert!(graphs.contains("\"graphs\":[\"g0\"]"), "{graphs}");

    // Release the slot: the same session's next query succeeds (the
    // session was never closed, never hung).
    drop(permit);
    let ok = client.round_trip("search ql=l0 qr=r0 graph=g0");
    assert!(ok.contains("\"ok\":true"), "{ok}");
    assert!(ok.contains("\"seq\":2"), "per-session seq kept counting: {ok}");

    let stats = service.stats();
    assert_eq!(stats.rejected_overloaded, 1);
    assert_eq!(stats.admitted, 2, "external permit + the successful query");

    handle.shutdown();
    handle.join();
}

#[test]
fn queued_request_times_out_with_structured_error() {
    let service = service_with_graphs(1);
    let handle = start(
        &service,
        ServerConfig { concurrency: 1, queue_depth: 8, ..ServerConfig::default() },
    );
    let permit = handle.admission().admit(u64::MAX, Priority::Normal, None).unwrap();
    let mut client = Client::connect(&handle, true);
    let response = client.round_trip("search ql=l0 qr=r0 graph=g0 timeout_ms=50");
    assert!(response.contains("\"error\":\"timeout\""), "{response}");
    assert!(response.contains("admission queue"), "{response}");
    assert_eq!(service.stats().admission_timeouts, 1);
    drop(permit);
    handle.shutdown();
    handle.join();
}

#[test]
fn quit_closes_only_the_issuing_tcp_session() {
    let service = service_with_graphs(1);
    let handle = start(&service, ServerConfig::default());

    let mut a = Client::connect(&handle, false);
    let mut b = Client::connect(&handle, true);
    assert!(a.round_trip("search ql=l0 qr=r0 graph=g0").contains("\"ok\":true"));
    assert!(b.round_trip("search ql=l1 qr=r1 graph=g0").contains("\"ok\":true"));

    a.send("quit");
    assert!(a.recv().is_none(), "quitting session closes");

    // Session b is unaffected and the server still accepts new sessions.
    assert!(b.round_trip("search ql=l0 qr=r0 graph=g0").contains("\"ok\":true"));
    let mut c = Client::connect(&handle, false);
    assert!(c.round_trip("graphs").contains("\"ok\":true"));

    handle.shutdown();
    handle.join();
    assert_eq!(service.stats().active_sessions, 0);
}

#[test]
fn shutdown_line_closes_every_session_and_stops_accepting() {
    let service = service_with_graphs(1);
    let handle = start(&service, ServerConfig::default());
    let addr = handle.addr();

    let mut idle_a = Client::connect(&handle, false);
    let mut idle_b = Client::connect(&handle, true);
    assert!(idle_a.round_trip("graphs").contains("\"ok\":true"));
    assert!(idle_b.round_trip("graphs").contains("\"ok\":true"));

    let mut closer = Client::connect(&handle, false);
    closer.send("shutdown");

    // join() returning proves the accept loop and every session thread
    // (including the two idle ones, unblocked by the socket shutdown)
    // exited — nothing leaked.
    handle.join();
    assert!(idle_a.recv().is_none(), "idle session was closed by shutdown");
    assert!(idle_b.recv().is_none(), "idle session was closed by shutdown");
    assert_eq!(service.stats().active_sessions, 0);

    // The listener is gone: new connections are refused (or immediately
    // closed by the dying acceptor).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut buf = String::new();
            assert_eq!(reader.read_line(&mut buf).unwrap_or(0), 0, "no service behind it");
        }
    }
}

#[test]
fn connection_limit_rejects_with_structured_error() {
    let service = service_with_graphs(1);
    let handle = start(
        &service,
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
    );
    let mut a = Client::connect(&handle, false);
    let mut b = Client::connect(&handle, false);
    // Force both sessions to be fully established before the third tries.
    assert!(a.round_trip("graphs").contains("\"ok\":true"));
    assert!(b.round_trip("graphs").contains("\"ok\":true"));

    let mut c = Client::connect(&handle, false);
    let rejection = c.recv().expect("structured rejection line");
    assert!(
        rejection.contains("\"error\":{\"kind\":\"overloaded\""),
        "{rejection}"
    );
    assert!(rejection.contains("connection limit"), "{rejection}");
    assert_eq!(
        service.transport().connections_rejected.load(Ordering::Relaxed),
        1
    );

    handle.shutdown();
    handle.join();
}
