//! Property tests for the wire codecs: round-trips are lossless, the
//! 16 MiB frame cap is enforced exactly at the boundary, and truncated or
//! garbage streams always surface as structured [`CodecError::Protocol`]
//! errors — never panics, never silent data loss.

use std::io::Write;

use bcc_service::{BinaryCodec, Codec, CodecError, CodecKind, LineCodec, MAX_FRAME_LEN};
use proptest::prelude::*;

/// Reads every payload from `wire` until clean EOF or an error.
fn drain(codec: &dyn Codec, mut wire: &[u8]) -> Result<Vec<String>, CodecError> {
    let mut payloads = Vec::new();
    while let Some((payload, _)) = codec.read_request(&mut wire)? {
        payloads.push(payload);
    }
    Ok(payloads)
}

/// Byte soup → valid payload strings (lossy decode), exercising newlines,
/// NULs, control bytes, and multi-byte UTF-8 replacement characters.
fn payloads_from(raw: &[Vec<u16>]) -> Vec<String> {
    raw.iter()
        .map(|bytes| {
            let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        })
        .collect()
}

proptest! {
    /// Binary framing round-trips arbitrary payload strings (including
    /// newlines and NULs — the framing is content-agnostic).
    #[test]
    fn binary_round_trips_any_payload(
        raw in proptest::collection::vec(proptest::collection::vec(0u16..256, 0..80), 0..8)
    ) {
        let payloads = payloads_from(&raw);
        let codec = BinaryCodec;
        let mut wire = Vec::new();
        for p in &payloads {
            codec.write_response(&mut wire, p).unwrap();
        }
        let decoded = drain(&codec, &wire).expect("well-formed frames decode");
        prop_assert_eq!(decoded, payloads);
    }

    /// Line framing round-trips newline-free payloads.
    #[test]
    fn lines_round_trip_newline_free_payloads(
        raw in proptest::collection::vec(proptest::collection::vec(0u16..256, 0..80), 0..8)
    ) {
        let payloads: Vec<String> = payloads_from(&raw)
            .into_iter()
            .map(|p| p.replace(['\r', '\n'], " "))
            .collect();
        let codec = LineCodec;
        let mut wire = Vec::new();
        for p in &payloads {
            codec.write_response(&mut wire, p).unwrap();
        }
        let decoded = drain(&codec, &wire).expect("lines decode");
        prop_assert_eq!(decoded, payloads);
    }

    /// Truncating a valid binary stream at any point mid-frame yields a
    /// protocol error (or a shorter clean prefix when the cut lands on a
    /// frame boundary) — never a panic, never a garbled payload.
    #[test]
    fn binary_truncation_never_panics(
        lens in proptest::collection::vec(0usize..40, 1..6),
        cut_seed in 0usize..10_000,
    ) {
        let payloads: Vec<String> = lens.iter().map(|&n| "x".repeat(n)).collect();
        let codec = BinaryCodec;
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for p in &payloads {
            codec.write_response(&mut wire, p).unwrap();
            boundaries.push(wire.len());
        }
        let cut = cut_seed % (wire.len() + 1);
        match drain(&codec, &wire[..cut]) {
            Ok(decoded) => {
                // A clean decode is only possible on a frame boundary, and
                // then it is exactly the prefix of payloads up to the cut.
                let frames = boundaries
                    .iter()
                    .position(|&b| b == cut)
                    .expect("clean EOF only at a frame boundary");
                prop_assert_eq!(decoded, payloads[..frames].to_vec());
            }
            Err(CodecError::Protocol(message)) => {
                prop_assert!(
                    message.contains("length prefix") || message.contains("payload"),
                    "unexpected protocol error: {}", message
                );
            }
            Err(CodecError::Io(e)) => panic!("truncation must not surface as io: {e}"),
        }
    }

    /// Arbitrary garbage decoded as binary frames either parses (when it
    /// happens to form valid frames) or fails with a structured protocol
    /// error — it never panics and never allocates past the cap.
    #[test]
    fn binary_garbage_never_panics(wire in proptest::collection::vec(0u16..256, 0..200)) {
        let wire: Vec<u8> = wire.into_iter().map(|b| b as u8).collect();
        let codec = BinaryCodec;
        match drain(&codec, &wire) {
            Ok(_) => {}
            Err(CodecError::Protocol(_)) => {}
            Err(CodecError::Io(e)) => panic!("garbage must not surface as io: {e}"),
        }
    }

    /// Negotiation is total and consistent: every first byte selects
    /// exactly one codec, and only `0x00`/`0x01` select binary.
    #[test]
    fn negotiation_is_total(first in 0u16..256) {
        let first = first as u8;
        let kind = CodecKind::negotiate(first);
        prop_assert_eq!(kind == CodecKind::Binary, first <= 0x01);
    }
}

/// The cap boundary, exactly: a 16 MiB payload round-trips, 16 MiB + 1 is
/// rejected on both the write and the read side. Plain tests — the two
/// interesting sizes are fixed, no point sampling around them.
#[test]
fn cap_boundary_exact() {
    let codec = BinaryCodec;
    let max_payload = "x".repeat(MAX_FRAME_LEN);

    let mut wire = Vec::new();
    codec.write_response(&mut wire, &max_payload).unwrap();
    let mut stream: &[u8] = &wire;
    let (decoded, read) = codec.read_request(&mut stream).unwrap().unwrap();
    assert_eq!(decoded.len(), MAX_FRAME_LEN);
    assert_eq!(read, 4 + MAX_FRAME_LEN as u64);

    let over_payload = "x".repeat(MAX_FRAME_LEN + 1);
    let err = codec.write_response(&mut Vec::new(), &over_payload).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // A hand-built over-cap frame is rejected from the prefix alone — the
    // payload bytes are never read (or allocated).
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_be_bytes());
    wire.write_all(b"would-be payload").unwrap();
    let mut stream: &[u8] = &wire;
    assert!(matches!(
        codec.read_request(&mut stream),
        Err(CodecError::Protocol(m)) if m.contains("cap")
    ));
}
