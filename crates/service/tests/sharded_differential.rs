//! Sharded serving is a placement detail, not a semantics change: the same
//! protocol session must produce byte-identical responses at any shard
//! count, with identical cache accounting — including m > 2 msearch lines
//! (the scatter-gather path), mutate/commit cycles (generation re-pins),
//! and mid-session `shard assign` reassignment. Only the `shard` verb and
//! `stats`/`metrics` surfaces (which report the topology itself) may
//! differ, so they are exercised but excluded from the byte comparison.

use bcc_graph::{GraphBuilder, LabeledGraph};
use bcc_service::{BccService, CacheCounters, LineOutcome, ServiceConfig};

/// Three label groups A (0..4), B (4..8), C (8..12): each a 4-clique, A–B
/// and B–C butterfly-bridged, no A–C edges. The m=3 mBCC over {0, 4, 8}
/// is feasible (connectivity flows through B) even though the (A, C) label
/// pair has no butterfly at all — so its scatter always carries one
/// structured per-pair failure inside an `"ok":true` response.
fn three_group_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
    let bb: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
    let c: Vec<_> = (0..4).map(|_| b.add_vertex("C")).collect();
    for grp in [&a, &bb, &c] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &a[..2] {
        for &y in &bb[..2] {
            b.add_edge(x, y);
        }
    }
    for &x in &bb[..2] {
        for &y in &c[..2] {
            b.add_edge(x, y);
        }
    }
    b.build()
}

fn expect_output(service: &BccService, line: &str) -> String {
    match service.process_line(line) {
        LineOutcome::Output(out) => out,
        other => panic!("`{line}` produced {other:?} instead of output"),
    }
}

/// The session script. `compare = false` lines are executed (their side
/// effects — routing changes, topology output — are part of the scenario)
/// but excluded from the byte comparison because they legitimately mention
/// the shard count.
fn workload(shards: usize) -> Vec<(String, bool)> {
    let q = |s: &str| (s.to_string(), true);
    vec![
        q("search ql=0 qr=4 method=lp"),
        q("search ql=0 qr=4 method=online"),
        q("search ql=4 qr=8 method=l2p"),
        // m=2 msearch stays a single job — and warms the (0, 4) pair slot
        // the m=3 scatter below probes (identical CacheKey by design).
        q("msearch q=0,4 k=3 b=1"),
        // m=3: scatters pairs (0,4) [cache hit], (0,8) [structured error:
        // no A–C butterfly], (4,8) plus the monolithic assembly.
        q("msearch q=0,4,8 k=3 b=1"),
        // Byte-for-byte repeat: a full-key cache hit, no re-scatter.
        q("msearch q=0,4,8 k=3 b=1"),
        q("msearch q=0,4,8 k=3 b=1 method=online"),
        // Mutate + commit: a new generation re-pins the routing table and
        // invalidates by dirty set; the scatter must rebuild cleanly.
        q("add_edge u=2 v=10"),
        q("commit"),
        q("msearch q=0,4,8 k=3 b=1"),
        q("search ql=0 qr=8"),
        q("remove_edge u=2 v=10"),
        q("commit"),
        q("msearch q=0,4,8 k=3 b=1"),
        // Mid-session reassignment: pin the graph to the last shard, then
        // keep querying. Routing moves; responses must not.
        (format!("shard assign default {}", shards - 1), false),
        ("shard list".to_string(), false),
        ("stats".to_string(), false),
        q("msearch q=0,4,8 k=3 b=1"),
        q("search ql=0 qr=4 method=lp"),
        q("msearch q=4,8,0 k=3 b=1"),
    ]
}

/// Runs the whole script on a fresh service, returning the comparable
/// response lines and the final cache counters.
fn run(shards: usize, cache_capacity: usize, cache_weight_cap: usize) -> (Vec<String>, CacheCounters) {
    let service = BccService::with_graph(
        ServiceConfig {
            shards,
            workers: 2,
            cache_capacity,
            cache_weight_cap,
            ..ServiceConfig::default()
        },
        three_group_graph(),
    );
    let mut outputs = Vec::new();
    for (line, compare) in workload(shards) {
        let out = expect_output(&service, &line);
        if compare {
            outputs.push((line, out));
        }
    }
    let cache = service.stats().cache;
    (outputs.into_iter().map(|(_, o)| o).collect(), cache)
}

#[test]
fn responses_byte_identical_across_shard_counts() {
    // (cache capacity, weight cap): the default cache, no cache at all,
    // and a tiny member-weight cap that forces size-aware eviction — the
    // determinism must survive every eviction regime.
    for (capacity, weight_cap) in [(4096usize, 0usize), (0, 0), (4096, 20)] {
        let (reference, ref_cache) = run(1, capacity, weight_cap);
        for shards in [2usize, 4] {
            let (outputs, cache) = run(shards, capacity, weight_cap);
            assert_eq!(outputs.len(), reference.len());
            for (i, (got, want)) in outputs.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got, want,
                    "response {i} diverged at shards={shards} \
                     (cache {capacity}, weight cap {weight_cap})"
                );
            }
            // Identical hit/miss/insert/evict accounting: the scatter
            // probes and insert replay run in plan order on the session
            // thread, so shard count cannot move a single counter.
            assert_eq!(
                cache, ref_cache,
                "cache counters diverged at shards={shards} \
                 (cache {capacity}, weight cap {weight_cap})"
            );
        }
        if capacity > 0 {
            assert!(ref_cache.hits > 0, "the script must exercise cache hits");
        }
    }
}

#[test]
fn scatter_surfaces_partial_failure_per_pair() {
    let service = BccService::with_graph(
        ServiceConfig { shards: 2, workers: 2, ..ServiceConfig::default() },
        three_group_graph(),
    );
    // Warm the (0, 4) pair slot through a direct m=2 msearch, then scatter.
    let _ = expect_output(&service, "msearch q=0,4 k=3 b=1");
    let out = expect_output(&service, "msearch q=0,4,8 k=3 b=1");
    assert!(out.contains("\"ok\":true"), "{out}");
    assert!(out.contains("\"size\":12"), "all three 4-cliques: {out}");
    assert!(out.contains("\"pairs\":["), "{out}");
    assert!(out.contains("\"ql\":0,\"qr\":4,\"ok\":true"), "{out}");
    assert!(
        out.contains("\"ql\":0,\"qr\":8,\"ok\":false,\"error\":\"search\""),
        "the A–C pair has no butterfly — its slot must carry the structured \
         error while the overall response stays ok: {out}"
    );
    assert!(out.contains("\"ql\":4,\"qr\":8,\"ok\":true"), "{out}");

    // The warmed pair was served from cache; the other two pair slots and
    // the full key missed; the repeat is a pure full-key hit.
    let before = service.stats().cache;
    let repeat = expect_output(&service, "msearch q=0,4,8 k=3 b=1");
    let after = service.stats().cache;
    assert_eq!(after.hits, before.hits + 1, "repeat must hit the full key");
    assert_eq!(after.misses, before.misses, "repeat must not re-scatter");
    // Symmetric vertex order normalizes to the same key — still one hit.
    assert_eq!(repeat, expect_output(&service, "msearch q=8,4,0 k=3 b=1").replace("\"seq\":3", "\"seq\":2"));
}
