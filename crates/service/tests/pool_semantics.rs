//! Pins the `WorkerPool` contracts the serving layer leans on (documented
//! in `pool.rs` and `service.rs`, previously untested from this layer):
//!
//! * `Drop` drains every already-queued job before the workers exit;
//! * a ticket whose waiter gave up (deadline expired) does **not** cancel
//!   the job — it completes and its side effects (cache population) land.
//!
//! All gating is via channels, never sleeps: the tests are deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use bcc_service::{JobError, LruCache, WorkerPool};

#[test]
fn drop_drains_jobs_queued_behind_a_running_job() {
    let pool = WorkerPool::new(1);
    // Gate the single worker so the counter jobs provably sit in the queue.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (running_tx, running_rx) = mpsc::channel::<()>();
    pool.execute(move || {
        running_tx.send(()).expect("test alive");
        let _ = gate_rx.recv_timeout(Duration::from_secs(10));
    });
    running_rx.recv().expect("gate job started");

    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..8 {
        let counter = Arc::clone(&counter);
        pool.execute(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
    }
    assert_eq!(counter.load(Ordering::SeqCst), 0, "worker is gated, queue is full");

    gate_tx.send(()).expect("worker is blocked on the gate");
    drop(pool); // must block until the queue is drained
    assert_eq!(counter.load(Ordering::SeqCst), 8, "drop drained every queued job");
}

#[test]
fn drop_still_delivers_queued_tickets_results() {
    let pool = WorkerPool::new(2);
    let tickets: Vec<_> = (0..16).map(|i| pool.submit(move || i * 3)).collect();
    drop(pool); // joins the workers; every job has run and sent its result
    let mut results: Vec<i32> = tickets
        .into_iter()
        .map(|t| t.wait().expect("result survives the pool"))
        .collect();
    results.sort_unstable();
    assert_eq!(results, (0..16).map(|i| i * 3).collect::<Vec<_>>());
}

#[test]
fn deadline_expired_ticket_job_still_completes_and_populates_cache() {
    let pool = WorkerPool::new(1);
    let cache: Arc<Mutex<LruCache<u32, u32>>> = Arc::new(Mutex::new(LruCache::new(8)));

    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let job_cache = Arc::clone(&cache);
    let ticket = pool.submit(move || {
        started_tx.send(()).expect("test alive");
        let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        job_cache.lock().unwrap().insert(7, 42);
        42
    });

    // The job is mid-flight; its waiter's deadline has already passed.
    started_rx.recv().expect("job started");
    let expired = Some(Instant::now() - Duration::from_millis(1));
    assert_eq!(ticket.wait_until(expired), Err(JobError::DeadlineExpired));

    // The abandoned job still completes and warms the cache. A second
    // ticket is the barrier proving it finished.
    gate_tx.send(()).expect("worker is blocked on the gate");
    pool.submit(|| ()).wait().expect("barrier job runs after the gated job");
    assert_eq!(cache.lock().unwrap().peek(&7), Some(&42));
}

#[test]
fn expired_result_delivered_before_the_wait_is_not_discarded() {
    // The complementary documented subtlety: if the job already *finished*
    // when an expired waiter looks, the value is returned, not thrown away.
    let pool = WorkerPool::new(1);
    let ticket = pool.submit(|| 99);
    // Barrier: guarantee the job has completed and sent its result.
    pool.submit(|| ()).wait().expect("barrier");
    let expired = Some(Instant::now() - Duration::from_millis(1));
    assert_eq!(ticket.wait_until(expired), Ok(99));
}
