//! Chaos differential suite: deterministic fault injection must never
//! change what a *healthy* request observes. Every test runs a faulty
//! service against a fault-free twin and demands byte-identical responses
//! for unaffected requests, while the injected faults themselves surface
//! as structured errors, counted events, and — crucially — no loss of
//! pool capacity and no poisoned cache entries.

use std::sync::Arc;

use bcc_graph::{GraphBuilder, LabeledGraph};
use bcc_service::{
    BccService, BreakerState, LineOutcome, Server, ServerConfig, ServiceConfig,
};

/// Two labeled 4-cliques bridged by a butterfly (a (3,3,1)-BCC).
fn butterfly_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    b.build()
}

/// Three label groups A (0..4), B (4..8), C (8..12): each a 4-clique, A–B
/// and B–C butterfly-bridged — the m=3 mBCC over {0, 4, 8} exercises the
/// scatter-gather path (three label-pair sub-queries).
fn three_group_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
    let bb: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
    let c: Vec<_> = (0..4).map(|_| b.add_vertex("C")).collect();
    for grp in [&a, &bb, &c] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &a[..2] {
        for &y in &bb[..2] {
            b.add_edge(x, y);
        }
    }
    for &x in &bb[..2] {
        for &y in &c[..2] {
            b.add_edge(x, y);
        }
    }
    b.build()
}

fn service_with(graph: LabeledGraph, shards: usize, faults: &[&str]) -> BccService {
    BccService::with_graph(
        ServiceConfig {
            shards,
            workers: 2,
            faults: faults.iter().map(|s| s.to_string()).collect(),
            ..ServiceConfig::default()
        },
        graph,
    )
}

fn expect_output(service: &BccService, line: &str) -> String {
    match service.process_line(line) {
        LineOutcome::Output(out) => out,
        other => panic!("`{line}` produced {other:?} instead of output"),
    }
}

/// Four distinct pair queries on the butterfly graph — distinct cache
/// keys, so each one reaches the pool (no hit short-circuits a fault).
const PAIR_QUERIES: [&str; 4] = [
    "search ql=l0 qr=r0",
    "search ql=l1 qr=r1",
    "search ql=l0 qr=r1",
    "search ql=l1 qr=r0",
];

/// Worker panics are contained: each faulted request gets a structured
/// internal error naming the panic, nothing lands in the cache, and after
/// the burst the pool is back at full width serving byte-identical
/// responses to a never-faulted twin.
#[test]
fn worker_panics_yield_typed_errors_and_full_capacity_after() {
    let faulty = service_with(butterfly_graph(), 1, &["worker_execute:panic:1:4"]);
    let clean = service_with(butterfly_graph(), 1, &[]);

    // Issue every line to both twins (errors consume a seq too, so the
    // comparison below needs both sides to have seen the same workload).
    for line in PAIR_QUERIES {
        let out = expect_output(&faulty, line);
        expect_output(&clean, line);
        assert!(
            out.contains("\"error\":\"internal\"") && out.contains("panicked"),
            "faulted `{line}` should report a contained panic, got: {out}"
        );
    }

    // The plan is exhausted: the same queries now succeed, byte-identical
    // to the twin — the panicked attempts were never cached, and the pool
    // still has every worker (a submit-path panic is caught in place).
    for line in PAIR_QUERIES {
        assert_eq!(expect_output(&faulty, line), expect_output(&clean, line), "line: {line}");
    }
    let stats = faulty.stats();
    assert_eq!(stats.worker_panics, 4);
    assert_eq!(stats.faults_injected, 4);
    assert_eq!(stats.shards[0].workers, 2, "pool capacity must not decay");
    assert_eq!(stats.cache.hits, 0, "a panicked request must never be served from cache");
    assert_eq!(stats.searches_executed, 4, "panicked attempts never reach the engine");

    // And the cache is healthy: a repeat is a hit with identical bytes.
    let repeat = expect_output(&faulty, PAIR_QUERIES[0]);
    assert_eq!(repeat, expect_output(&clean, PAIR_QUERIES[0]));
    assert_eq!(faulty.stats().cache.hits, 1);
}

/// The full mixed workload — searches, m=2 and m=3 msearch (scatter),
/// mutate/commit cycles — under always-on delay faults at every site:
/// delays move wall time only, so every response byte must match the
/// fault-free twin, while the injection counter proves the plan fired.
#[test]
fn delay_faults_at_every_site_leave_all_responses_byte_identical() {
    let all_sites = [
        "query_distance:delay1ms:1:0",
        "core_decomp:delay1ms:1:0",
        "butterfly_counting:delay1ms:1:0",
        "leader_pairing:delay1ms:1:0",
        "overlay_apply:delay1ms:1:0",
        "cascade:delay1ms:1:0",
        "chi_delta:delay1ms:1:0",
        "cache_invalidate:delay1ms:1:0",
        "query_dist_expand:delay1ms:1:0",
        "query_dist_merge:delay1ms:1:0",
        "codec_decode:delay1ms:1:0",
        "admission:delay1ms:1:0",
        "worker_execute:delay1ms:1:0",
        "scatter_pair:delay1ms:1:0",
    ];
    let faulty = service_with(three_group_graph(), 2, &all_sites);
    let clean = service_with(three_group_graph(), 2, &[]);
    let workload = [
        "search ql=0 qr=4",
        "msearch q=0,4 k=3 b=1",
        "msearch q=0,4,8 k=3 b=1",
        "msearch q=0,4,8 k=3 b=1",
        "add_edge u=2 v=10",
        "commit",
        "msearch q=0,4,8 k=3 b=1",
        "remove_edge u=2 v=10",
        "commit",
        "search ql=4 qr=8 method=online",
    ];
    for line in workload {
        assert_eq!(expect_output(&faulty, line), expect_output(&clean, line), "line: {line}");
    }
    let stats = faulty.stats();
    assert!(stats.faults_injected > 0, "the delay plan must actually have fired");
    assert_eq!(stats.worker_panics, 0);
}

/// A single targeted error fault hits exactly the request it selects by
/// match count; every other request in the run is byte-identical to the
/// twin, and re-issuing the affected line afterwards recovers (the error
/// was transient and uncached).
#[test]
fn targeted_error_fault_affects_only_its_selected_request() {
    let faulty = service_with(butterfly_graph(), 1, &["worker_execute:error:3:1"]);
    let clean = service_with(butterfly_graph(), 1, &[]);

    for (i, line) in PAIR_QUERIES.iter().enumerate() {
        let out = expect_output(&faulty, line);
        let twin = expect_output(&clean, line);
        if i == 2 {
            assert!(
                out.contains("\"error\":\"internal\"")
                    && out.contains("injected fault at worker_execute"),
                "third execution should carry the injected error, got: {out}"
            );
        } else {
            assert_eq!(out, twin, "line: {line}");
        }
    }
    // The plan is spent; the affected query now succeeds and matches.
    assert_eq!(
        expect_output(&faulty, PAIR_QUERIES[2]),
        expect_output(&clean, PAIR_QUERIES[2])
    );
    assert_eq!(faulty.stats().faults_injected, 1);
}

/// A panic inside one scatter pair sub-query is contained, retried within
/// the gather, and the assembled m=3 response stays byte-identical to the
/// fault-free twin — the client never sees the fault at all.
#[test]
fn scatter_pair_panic_is_retried_and_invisible_to_the_client() {
    let faulty = service_with(three_group_graph(), 2, &["scatter_pair:panic:1:1"]);
    let clean = service_with(three_group_graph(), 2, &[]);
    let line = "msearch q=0,4,8 k=3 b=1";
    assert_eq!(expect_output(&faulty, line), expect_output(&clean, line));
    let stats = faulty.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.pair_retries, 1);
    assert_eq!(stats.faults_injected, 1);
}

/// Opening a shard's breaker reroutes its scatter pairs to the graph's
/// home shard without changing a byte of any response: the single-shard
/// service is the reference, and a four-shard service with three of four
/// breakers forced open must match it exactly.
#[test]
fn open_breakers_reroute_pairs_byte_identically_to_single_shard() {
    let reference = service_with(three_group_graph(), 1, &[]);
    let sharded = BccService::with_graph(
        ServiceConfig {
            shards: 4,
            workers: 2,
            breaker_threshold: 2,
            // A cooldown far beyond the test's runtime: the breakers stay
            // open (no half-open probe re-admits a pair mid-comparison).
            breaker_cooldown_ms: 600_000,
            ..ServiceConfig::default()
        },
        three_group_graph(),
    );

    // Pin the graph to shard 0, then trip every other shard's breaker.
    expect_output(&sharded, "shard assign default 0");
    for id in 1..4 {
        let breaker = sharded.shard_map().shard(id).breaker();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
    }
    let listing = expect_output(&sharded, "shard list");
    assert!(
        listing.contains("\"breakers\":[\"closed\",\"open\",\"open\",\"open\"]"),
        "shard list must surface breaker state, got: {listing}"
    );

    let workload = [
        "msearch q=0,4,8 k=3 b=1",
        "search ql=0 qr=4",
        "msearch q=4,8,0 k=3 b=1",
        "msearch q=0,4,8 k=3 b=1 method=online",
    ];
    for line in workload {
        assert_eq!(
            expect_output(&sharded, line),
            expect_output(&reference, line),
            "line: {line}"
        );
    }
    let stats = sharded.stats();
    assert_eq!(stats.breaker_opens, 3);
    assert!(
        stats.breaker_rerouted > 0,
        "at least one pair must have rendezvous-routed to an open shard and been rerouted home"
    );
}

/// The session-layer sites fire over a real TCP connection: an injected
/// decode fault surfaces as a structured internal error, an admission
/// fault as a structured overload rejection — and the connection keeps
/// serving afterwards, byte-identical to a clean request.
#[test]
fn session_sites_fire_over_tcp_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let service = Arc::new(service_with(
        butterfly_graph(),
        1,
        &["codec_decode:error:1:1", "admission:error:1:1"],
    ));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind 127.0.0.1:0");

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("set_nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut round_trip = |payload: &str| -> String {
        writer.write_all(payload.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    // First request: the decode-site fault fires before dispatch.
    let first = round_trip("search ql=l0 qr=r0");
    assert!(
        first.contains("\"kind\":\"internal\"") && first.contains("codec_decode"),
        "got: {first}"
    );
    // Second: the admission-site fault renders as a structured overload.
    let second = round_trip("search ql=l0 qr=r0");
    assert!(
        second.contains("\"kind\":\"overloaded\"") && second.contains("admission"),
        "got: {second}"
    );
    // Third: the plan is spent; the same line now succeeds.
    let third = round_trip("search ql=l0 qr=r0");
    assert!(third.contains("\"ok\":true"), "got: {third}");
    assert_eq!(service.fault_plan().injected(), 2);

    round_trip("quit");
    handle.shutdown();
    handle.join();
}
