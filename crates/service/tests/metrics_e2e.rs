//! Observability end-to-end: the metrics tier must be invisible on the
//! wire (byte-identical responses with the recorder on or off, both
//! codecs) and visible on the side channels — the `metrics` verb and the
//! Prometheus exposition populated by real queries over TCP — while the
//! `stats` JSON keeps its historical key prefix byte-for-byte.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bcc_graph::{GraphBuilder, LabeledGraph};
use bcc_service::{BccService, BinaryCodec, Server, ServerConfig, ServerHandle, ServiceConfig};

/// Two labeled 4-cliques bridged by a butterfly (a (3,3,1)-BCC).
fn butterfly_graph() -> LabeledGraph {
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("l{i}"), "L")).collect();
    let r: Vec<_> = (0..4).map(|i| b.add_named_vertex(&format!("r{i}"), "R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    b.build()
}

/// A fresh service with the butterfly graph as `g`, metrics on or off.
/// The result cache is off so commit invalidation counts are
/// timing-independent (see `server_e2e.rs`).
fn service(metrics: bool) -> Arc<BccService> {
    let svc = Arc::new(BccService::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        metrics,
        ..ServiceConfig::default()
    }));
    svc.registry().insert("g".to_string(), butterfly_graph());
    svc
}

/// A test client speaking either codec over one connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    fn connect(handle: &ServerHandle, binary: bool) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).expect("set_nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
            binary,
        }
    }

    fn round_trip(&mut self, payload: &str) -> String {
        if self.binary {
            self.writer.write_all(&BinaryCodec::encode_frame(payload)).unwrap();
        } else {
            let mut line = Vec::with_capacity(payload.len() + 1);
            line.extend_from_slice(payload.as_bytes());
            line.push(b'\n');
            self.writer.write_all(&line).unwrap();
        }
        self.writer.flush().unwrap();
        if self.binary {
            let mut prefix = [0u8; 4];
            self.reader.read_exact(&mut prefix).expect("response prefix");
            let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
            self.reader.read_exact(&mut payload).expect("response payload");
            String::from_utf8(payload).expect("UTF-8 response")
        } else {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("response line");
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            line
        }
    }
}

/// Searches (all three methods), mutations, a commit cycle, a multi-label
/// query, a parse error, and `graphs` — everything whose response bytes
/// must not depend on the metrics tier. (`stats` and `metrics` are
/// excluded: their outputs report the telemetry itself.)
fn workload() -> Vec<String> {
    vec![
        "search ql=l0 qr=r0 graph=g".into(),
        "search ql=l0 qr=r0 graph=g method=online".into(),
        "search ql=l1 qr=r1 graph=g method=l2p".into(),
        "add_edge u=l3 v=r3 graph=g".into(),
        "commit graph=g".into(),
        "search ql=l3 qr=r3 graph=g".into(),
        "msearch q=l1,r1 graph=g k=3 b=1".into(),
        "not a protocol line".into(),
        "remove_edge u=l3 v=r3 graph=g".into(),
        "commit graph=g".into(),
        "graphs".into(),
        "search ql=l0 qr=r0 graph=g".into(),
    ]
}

/// The differential pin: recorder on vs no-op recorder, same workload over
/// TCP, both codecs — transcripts byte-identical. Telemetry is strictly
/// out-of-band.
#[test]
fn tcp_responses_byte_identical_with_metrics_on_and_off() {
    let transcript = |metrics: bool, binary: bool| -> Vec<String> {
        let svc = service(metrics);
        let handle = Server::bind(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default())
            .expect("bind");
        let mut client = Client::connect(&handle, binary);
        let out: Vec<String> =
            workload().iter().map(|line| client.round_trip(line)).collect();
        drop(client);
        handle.shutdown();
        handle.join();
        out
    };
    for binary in [false, true] {
        let on = transcript(true, binary);
        let off = transcript(false, binary);
        assert_eq!(
            on, off,
            "metrics tier changed response bytes (binary codec: {binary})"
        );
    }
}

/// Real queries over TCP populate the `metrics` verb's JSON snapshot and
/// the Prometheus exposition: request counters, verb latency histograms,
/// engine phase histograms, queue wait.
#[test]
fn metrics_verb_and_prometheus_populated_by_real_queries() {
    let svc = service(true);
    let handle =
        Server::bind(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(&handle, false);
    for line in workload() {
        client.round_trip(&line);
    }
    let snapshot = client.round_trip("metrics");

    assert!(snapshot.starts_with("{\"ok\":true,\"metrics_enabled\":true"), "{snapshot}");
    // 5 searches in the workload; every one must land in the counter and
    // the latency histogram (requests counts arrivals, count the samples).
    assert!(snapshot.contains("\"search\":{\"requests\":5,\"count\":5,"), "{snapshot}");
    assert!(snapshot.contains("\"msearch\":{\"requests\":1,\"count\":1,"), "{snapshot}");
    assert!(snapshot.contains("\"add_edge\":{\"requests\":1,"), "{snapshot}");
    assert!(snapshot.contains("\"commit\":{\"requests\":2,"), "{snapshot}");
    assert!(snapshot.contains("\"metrics\":{\"requests\":1,"), "{snapshot}");
    // Engine phases recorded by the worker's trace replay: 6 executed
    // searches (5 search + 1 msearch), each timing its distance phase.
    assert!(snapshot.contains("\"query_distance\":{\"count\":6,"), "{snapshot}");
    // Commit stages recorded from the registry's timings: 2 commits.
    assert!(snapshot.contains("\"overlay_apply\":{\"count\":2,"), "{snapshot}");
    assert!(snapshot.contains("\"cache_invalidate\":{\"count\":2,"), "{snapshot}");
    // Admission gate bracketed every query dispatch (5 search + 1 msearch).
    assert!(snapshot.contains("\"queue_wait\":{\"count\":6,"), "{snapshot}");

    let prom = svc.metrics().prometheus();
    assert!(prom.contains("bcc_metrics_enabled 1"), "{prom}");
    assert!(prom.contains("bcc_requests_total{verb=\"search\"} 5"), "{prom}");
    assert!(prom.contains("bcc_requests_total{verb=\"commit\"} 2"), "{prom}");
    assert!(
        prom.contains("bcc_verb_latency_microseconds_count{verb=\"search\"} 5"),
        "{prom}"
    );
    assert!(
        prom.contains("bcc_phase_latency_microseconds_count{phase=\"query_distance\"} 6"),
        "{prom}"
    );
    assert!(prom.contains("bcc_queue_wait_microseconds_count 6"), "{prom}");
    // Exposition is well-formed: every non-comment line is `name[{labels}] value`.
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "bad line: {line}");
    }

    drop(client);
    handle.shutdown();
    handle.join();
}

/// The `query_threads` knob composes with the metrics tier: responses stay
/// byte-identical at every setting, while the parallel BFS's
/// frontier-expansion / merge sub-phases show up in the snapshot only when
/// the parallel path actually ran (the sequential reference records
/// neither — no zero-sample flooding).
#[test]
fn query_threads_keep_bytes_identical_and_record_bfs_subphases() {
    let transcript = |query_threads: usize| -> (Vec<String>, String) {
        let svc = Arc::new(BccService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            metrics: true,
            query_threads,
            ..ServiceConfig::default()
        }));
        svc.registry().insert("g".to_string(), butterfly_graph());
        let handle = Server::bind(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default())
            .expect("bind");
        let mut client = Client::connect(&handle, false);
        let out: Vec<String> =
            workload().iter().map(|line| client.round_trip(line)).collect();
        let snapshot = client.round_trip("metrics");
        drop(client);
        handle.shutdown();
        handle.join();
        (out, snapshot)
    };
    let subphase_count = |snapshot: &str, phase: &str| -> u64 {
        let key = format!("\"{phase}\":{{\"count\":");
        let tail = &snapshot[snapshot.find(&key).expect("sub-phase key present") + key.len()..];
        tail[..tail.find(',').expect("count is comma-terminated")]
            .parse()
            .expect("count is an integer")
    };

    let (reference, seq_snapshot) = transcript(1);
    // The sequential reference path never enters the chunked BFS, so the
    // sub-phase histograms must stay empty.
    assert_eq!(subphase_count(&seq_snapshot, "query_dist_expand"), 0, "{seq_snapshot}");
    assert_eq!(subphase_count(&seq_snapshot, "query_dist_merge"), 0, "{seq_snapshot}");

    for threads in [2usize, 3] {
        let (run, snapshot) = transcript(threads);
        assert_eq!(
            run, reference,
            "query_threads={threads} changed response bytes over TCP"
        );
        // All 6 executed searches (5 search + 1 msearch) went through the
        // parallel BFS, and each replayed both sub-phases exactly once.
        assert_eq!(subphase_count(&snapshot, "query_dist_expand"), 6, "{snapshot}");
        assert_eq!(subphase_count(&snapshot, "query_dist_merge"), 6, "{snapshot}");
    }
}

/// With the tier disabled the `metrics` verb still answers (counters tick,
/// histograms stay empty) — observability degrades, never errors.
#[test]
fn metrics_verb_answers_with_tier_disabled() {
    let svc = service(false);
    let handle =
        Server::bind(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(&handle, true);
    client.round_trip("search ql=l0 qr=r0 graph=g");
    let snapshot = client.round_trip("metrics");
    assert!(snapshot.starts_with("{\"ok\":true,\"metrics_enabled\":false"), "{snapshot}");
    // Request arrival counters are always on; histograms are gated off.
    assert!(snapshot.contains("\"search\":{\"requests\":1,\"count\":0,"), "{snapshot}");
    assert!(snapshot.contains("\"queue_wait\":{\"count\":0,"), "{snapshot}");
    drop(client);
    handle.shutdown();
    handle.join();
}

/// The `stats` JSON prefix is pinned byte-for-byte through
/// `total_search_time_us`: existing consumers parse positionally-stable
/// keys, and the new observability keys append strictly after.
#[test]
fn stats_json_keeps_historical_prefix_and_appends_new_keys() {
    let svc = service(true);
    let json = svc.stats_json();
    let expected_prefix = "{\"ok\":true,\"requests\":0,\"searches_executed\":0,\
                           \"cache_hits\":0,\"cache_misses\":0,\"cache_evictions\":0,\
                           \"cache_entries\":0,\"timeouts\":0,\"parse_errors\":0,\
                           \"resolve_errors\":0,\"search_errors\":0,\"mutations_staged\":0,\
                           \"commits\":0,\"mutate_errors\":0,\"cache_invalidated\":0,\
                           \"cache_retained\":0,\"workers\":2,\
                           \"connections_accepted\":0,\"connections_rejected\":0,\
                           \"active_sessions\":0,\"admitted\":0,\"rejected_overloaded\":0,\
                           \"admission_timeouts\":0,\"bytes_in\":0,\"bytes_out\":0,\
                           \"graphs\":[\"g\"],\"total_search_time_us\":0";
    assert!(
        json.starts_with(expected_prefix),
        "historical stats prefix changed:\n{json}"
    );
    let tail = &json[expected_prefix.len()..];
    assert!(tail.starts_with(",\"slow_queries\":0,\"requests_by_verb\":{"), "{tail}");
    assert!(tail.contains("\"stats\":1"), "stats_json counts its own verb: {tail}");
    // The per-shard section appends last: one keyed object per shard.
    assert!(tail.contains(",\"shards\":{\"0\":{\"workers\":2,"), "{tail}");
    assert!(tail.ends_with("}}"), "{tail}");
}

/// The per-shard surfaces are populated by real traffic: every executed
/// query lands in exactly one shard's routed/executed/admitted counters in
/// the `stats`/`metrics` JSON, and the Prometheus exposition carries the
/// per-shard families with one labeled sample per shard.
#[test]
fn shard_surfaces_track_real_traffic() {
    let svc = Arc::new(BccService::new(ServiceConfig {
        shards: 2,
        workers: 2,
        cache_capacity: 0,
        metrics: true,
        ..ServiceConfig::default()
    }));
    svc.registry().insert("g".to_string(), butterfly_graph());
    let handle =
        Server::bind(Arc::clone(&svc), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(&handle, false);
    for line in workload() {
        client.round_trip(&line);
    }

    let stats = svc.stats();
    assert_eq!(stats.shards.len(), 2);
    let routed: u64 = stats.shards.iter().map(|s| s.routed).sum();
    let admitted: u64 = stats.shards.iter().map(|s| s.admitted).sum();
    // 5 search + 1 msearch, cache off: all routed, and every dispatch
    // passed its shard's admission gate.
    assert_eq!(routed, 6, "{stats:?}");
    assert_eq!(admitted, 6, "{stats:?}");
    // A worker bumps its pool's `executed` *after* delivering the result,
    // so the last job's tick can trail the response by an instant.
    let executed = |svc: &BccService| -> u64 {
        svc.stats().shards.iter().map(|s| s.executed).sum()
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while executed(&svc) < 6 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(executed(&svc), 6, "{:?}", svc.stats());
    assert_eq!(stats.shards.iter().map(|s| s.rejected).sum::<u64>(), 0);

    let stats_line = client.round_trip("stats");
    assert!(stats_line.contains(",\"shards\":{\"0\":{\"workers\":2,"), "{stats_line}");
    assert!(stats_line.contains("\"1\":{\"workers\":2,"), "{stats_line}");
    let metrics_line = client.round_trip("metrics");
    assert!(metrics_line.contains(",\"shards\":{\"0\":{"), "{metrics_line}");

    let prom = svc.prometheus();
    for family in ["bcc_shard_routed_total", "bcc_shard_executed_total", "bcc_shard_queue_depth"] {
        assert!(prom.contains(&format!("{family}{{shard=\"0\"}}")), "{prom}");
        assert!(prom.contains(&format!("{family}{{shard=\"1\"}}")), "{prom}");
    }

    drop(client);
    handle.shutdown();
    handle.join();
}
