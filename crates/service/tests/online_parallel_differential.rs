//! Tentpole differential for the parallel online search: the
//! `query_threads` knob must be invisible on the wire. The same protocol
//! workload — every search method, msearch, and live
//! `add_edge`/`commit`/`remove_edge`/`commit` cycles interleaved between
//! queries — is replayed through fresh services at query-threads 1, 2, 3,
//! 7, and 0 (all cores), and every transcript must be byte-identical to
//! the sequential reference. A second pass re-runs the comparison with the
//! result cache enabled, pinning that cache hits (and their `cached:true`
//! marker) land identically at every thread count.

use bcc_datasets::{queries, PlantedNetwork, QueryConstraints};
use bcc_graph::LabeledGraph;
use bcc_service::{BccService, ServiceConfig};

/// A planted DBLP small enough for debug-mode CI but big enough that the
/// parallel frontier and peel paths actually engage (multi-hundred-vertex
/// BFS levels and degree buckets).
fn planted() -> PlantedNetwork {
    bcc_datasets::dblp(0.12).build()
}

/// The protocol workload: searches across all three methods, an msearch,
/// and two mutation/commit cycles with searches in between (the patched
/// index and overlaid snapshot must also be thread-count-invariant).
fn workload(net: &PlantedNetwork) -> Vec<String> {
    let qs = queries::random_community_queries(
        net,
        6,
        QueryConstraints { degree_rank: 0, inter_distance: None },
        0xD1FF,
    );
    assert!(qs.len() >= 3, "planted network must yield at least 3 queries");
    let mut lines = Vec::new();
    for (i, q) in qs.iter().enumerate() {
        let method = ["online", "lp", "l2p"][i % 3];
        lines.push(format!(
            "search ql={} qr={} method={method}",
            q.vertices[0].0, q.vertices[1].0
        ));
    }
    lines.push(format!(
        "msearch q={},{} k=2 b=1",
        qs[0].vertices[0].0, qs[0].vertices[1].0
    ));
    // Live-mutation cycle 1: a fresh cross edge, committed, then queried.
    let (u, v) = (qs[1].vertices[0].0, qs[2].vertices[1].0);
    lines.push(format!("add_edge u={u} v={v}"));
    lines.push("commit".into());
    lines.push(format!(
        "search ql={} qr={} method=online",
        qs[1].vertices[0].0, qs[1].vertices[1].0
    ));
    // Cycle 2: take the edge back out and query again.
    lines.push(format!("remove_edge u={u} v={v}"));
    lines.push("commit".into());
    lines.push(format!(
        "search ql={} qr={} method=lp",
        qs[2].vertices[0].0, qs[2].vertices[1].0
    ));
    lines
}

/// Plays `lines` through one session of a fresh service configured with
/// `query_threads` and returns the response lines plus the post-session
/// stats snapshot (cache hits are invisible on the wire by design, so the
/// cache test reads them programmatically).
fn transcript(
    graph: &LabeledGraph,
    lines: &[String],
    query_threads: usize,
    cache_capacity: usize,
) -> (Vec<String>, bcc_service::ServiceStats) {
    let svc = BccService::with_graph(
        ServiceConfig {
            workers: 2,
            cache_capacity,
            query_threads,
            ..ServiceConfig::default()
        },
        graph.clone(),
    );
    let input = format!("{}\n", lines.join("\n"));
    let mut out = Vec::new();
    svc.run_session(std::io::Cursor::new(input.into_bytes()), &mut out)
        .expect("session runs to EOF");
    let responses = String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(str::to_owned)
        .collect();
    (responses, svc.stats())
}

#[test]
fn transcripts_byte_identical_at_every_thread_count() {
    let net = planted();
    let lines = workload(&net);
    let (reference, _) = transcript(&net.graph, &lines, 1, 0);
    assert_eq!(reference.len(), lines.len(), "one response per request");
    // The workload must actually exercise the engine: most lines succeed
    // (a failing search is still a valid differential surface, but a
    // workload of pure errors would prove nothing about the peel).
    let ok = reference.iter().filter(|r| r.contains("\"ok\":true")).count();
    assert!(ok * 2 >= lines.len(), "too few ok responses: {reference:#?}");
    for threads in [2usize, 3, 7, 0] {
        let (run, _) = transcript(&net.graph, &lines, threads, 0);
        assert_eq!(run, reference, "query_threads={threads} changed response bytes");
    }
}

#[test]
fn transcripts_byte_identical_with_cache_and_repeats() {
    let net = planted();
    // Each line twice in a row: the second occurrence must hit the result
    // cache (deterministically, in a sequential session) and serve the
    // byte-identical response at every thread count. The `cached` flag
    // never appears on the wire by design, so hits are asserted through
    // the stats snapshot. Commits invalidate between repeats exactly the
    // same way at every setting.
    let lines: Vec<String> =
        workload(&net).into_iter().flat_map(|l| [l.clone(), l]).collect();
    let (reference, ref_stats) = transcript(&net.graph, &lines, 1, 4096);
    assert!(
        ref_stats.cache.hits > 0,
        "repeats must produce cache hits: {reference:#?}"
    );
    for threads in [2usize, 3, 7, 0] {
        let (run, stats) = transcript(&net.graph, &lines, threads, 4096);
        assert_eq!(run, reference, "query_threads={threads} changed cached response bytes");
        assert_eq!(
            stats.cache.hits, ref_stats.cache.hits,
            "query_threads={threads} changed the cache hit pattern"
        );
    }
}
