//! The immutable CSR-encoded labeled graph.

use crate::labels::{Label, LabelInterner};

/// A vertex identifier: a dense index into the graph's vertex arrays.
///
/// Stored as `u32` to halve the memory traffic of adjacency scans compared
/// with `usize` (the evaluation graphs fit comfortably in `u32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The dense index of this vertex.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The two edge kinds of a labeled graph (Section 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Both endpoints share a label (a within-group collaboration).
    Homogeneous,
    /// Endpoints carry different labels (a cross-group collaboration).
    Heterogeneous,
}

/// An immutable undirected labeled graph `G = (V, E, ℓ)` in CSR form.
///
/// Invariants (upheld by [`crate::GraphBuilder`]):
/// * no self-loops, no parallel edges;
/// * each undirected edge `{u, v}` appears in both adjacency lists;
/// * every adjacency list is sorted ascending.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    labels: Vec<Label>,
    interner: LabelInterner,
    names: Option<Vec<String>>,
    edge_count: usize,
}

impl LabeledGraph {
    /// Assembles a graph from pre-validated CSR parts. Callers outside this
    /// crate should use [`crate::GraphBuilder`].
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        labels: Vec<Label>,
        interner: LabelInterner,
        names: Option<Vec<String>>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        let edge_count = neighbors.len() / 2;
        LabeledGraph {
            offsets,
            neighbors,
            labels,
            interner,
            names,
            edge_count,
        }
    }

    /// CSR internals for same-crate patching (see [`crate::delta`]).
    pub(crate) fn raw_parts(&self) -> (&[usize], &[VertexId]) {
        (&self.offsets, &self.neighbors)
    }

    /// Clones the vertex metadata (labels, interner, names) — the parts of a
    /// snapshot an edge-only patch carries over unchanged.
    pub(crate) fn clone_meta(&self) -> (Vec<Label>, LabelInterner, Option<Vec<String>>) {
        (self.labels.clone(), self.interner.clone(), self.names.clone())
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates all vertex ids `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// The label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// All vertex labels, indexed by vertex.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The label interner (names of labels).
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Number of distinct labels that occur in the graph.
    pub fn label_count(&self) -> usize {
        self.interner.len()
    }

    /// Display name of vertex `v` if the graph carries names, else `v{id}`.
    pub fn vertex_name(&self, v: VertexId) -> String {
        match &self.names {
            Some(names) => names[v.index()].clone(),
            None => format!("v{}", v.0),
        }
    }

    /// Finds a vertex by display name (linear scan; intended for small
    /// case-study graphs and tests).
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        let names = self.names.as_ref()?;
        names
            .iter()
            .position(|n| n == name)
            .map(|i| VertexId(i as u32))
    }

    /// The sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Degree of `v` in the full graph.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree over all vertices (`d_max` of Table 3).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Returns `true` if `{u, v}` is an edge (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (small, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small).binary_search(&target).is_ok()
    }

    /// Classifies `{u, v}` per Section 3.1. The edge need not exist; the
    /// classification is purely label-based.
    #[inline]
    pub fn edge_kind(&self, u: VertexId, v: VertexId) -> EdgeKind {
        if self.label(u) == self.label(v) {
            EdgeKind::Homogeneous
        } else {
            EdgeKind::Heterogeneous
        }
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Neighbors of `v` that share `v`'s label (walk partners inside the
    /// same group).
    pub fn same_label_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let label = self.label(v);
        self.neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.label(u) == label)
    }

    /// Neighbors of `v` with a different label (cross/heterogeneous edges).
    pub fn cross_label_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let label = self.label(v);
        self.neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.label(u) != label)
    }

    /// All vertices carrying `label`.
    pub fn vertices_with_label(&self, label: Label) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.label(v) == label).collect()
    }

    /// Per-label vertex counts, indexed by label id.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; self.label_count()];
        for &label in &self.labels {
            histogram[label.index()] += 1;
        }
        histogram
    }

    /// Degree counts: `histogram[d]` = number of vertices with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; self.max_degree() + 1];
        for v in self.vertices() {
            histogram[self.degree(v)] += 1;
        }
        histogram
    }

    /// Edge density `2|E| / (|V|(|V|−1))`; 0 for graphs with < 2 vertices.
    pub fn density(&self) -> f64 {
        let n = self.vertex_count() as f64;
        if n < 2.0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / (n * (n - 1.0))
    }

    /// Materializes the subgraph induced by `members` as a standalone graph
    /// with dense ids. Returns the new graph plus the mapping from new ids
    /// back to the originals (`mapping[new.index()] = old`). Labels and
    /// names are carried over; duplicate members are deduplicated.
    pub fn induced_subgraph(
        &self,
        members: impl IntoIterator<Item = VertexId>,
    ) -> (LabeledGraph, Vec<VertexId>) {
        let mut mapping: Vec<VertexId> = members.into_iter().collect();
        mapping.sort_unstable();
        mapping.dedup();
        let mut new_id = vec![u32::MAX; self.vertex_count()];
        for (new, &old) in mapping.iter().enumerate() {
            new_id[old.index()] = new as u32;
        }
        let mut builder = crate::builder::GraphBuilder::new();
        let named = self.names.is_some();
        for &old in &mapping {
            let label_name = self
                .interner
                .name(self.label(old))
                .expect("labels of an existing graph are interned");
            if named {
                builder.add_named_vertex(&self.vertex_name(old), label_name);
            } else {
                builder.add_vertex(label_name);
            }
        }
        for &old in &mapping {
            for &neighbor in self.neighbors(old) {
                if neighbor > old && new_id[neighbor.index()] != u32::MAX {
                    builder.add_edge(
                        VertexId(new_id[old.index()]),
                        VertexId(new_id[neighbor.index()]),
                    );
                }
            }
        }
        (builder.build(), mapping)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    /// The running example of Figure 1 boiled down: two labeled triangles
    /// joined by one cross edge.
    fn two_triangles() -> crate::LabeledGraph {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("SE");
        let a1 = b.add_vertex("SE");
        let a2 = b.add_vertex("SE");
        let c0 = b.add_vertex("UI");
        let c1 = b.add_vertex("UI");
        let c2 = b.add_vertex("UI");
        for (u, v) in [(a0, a1), (a1, a2), (a0, a2), (c0, c1), (c1, c2), (c0, c2), (a0, c0)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = two_triangles();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.label_count(), 2);
        assert_eq!(g.degree(crate::VertexId(0)), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_queries() {
        let g = two_triangles();
        let (v0, v3, v5) = (crate::VertexId(0), crate::VertexId(3), crate::VertexId(5));
        assert!(g.has_edge(v0, v3));
        assert!(!g.has_edge(v0, v5));
        assert_eq!(g.edge_kind(v0, v3), crate::EdgeKind::Heterogeneous);
        assert_eq!(g.edge_kind(v0, crate::VertexId(1)), crate::EdgeKind::Homogeneous);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = two_triangles();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        for (u, v) in edges {
            assert!(u < v);
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn label_partitioned_neighbors() {
        let g = two_triangles();
        let v0 = crate::VertexId(0);
        assert_eq!(g.same_label_neighbors(v0).count(), 2);
        assert_eq!(g.cross_label_neighbors(v0).count(), 1);
        let hist = g.label_histogram();
        assert_eq!(hist, vec![3, 3]);
    }

    #[test]
    fn density_and_degree_histogram() {
        let g = two_triangles();
        // 6 vertices, 7 edges: density = 14 / 30.
        assert!((g.density() - 14.0 / 30.0).abs() < 1e-12);
        let hist = g.degree_histogram();
        // Two endpoints of the cross edge have degree 3; the rest degree 2.
        assert_eq!(hist[2], 4);
        assert_eq!(hist[3], 2);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = two_triangles();
        // Take the first triangle plus one vertex of the second.
        let members = [0u32, 1, 2, 3].map(crate::VertexId);
        let (sub, mapping) = g.induced_subgraph(members);
        assert_eq!(sub.vertex_count(), 4);
        assert_eq!(mapping.len(), 4);
        // Triangle edges survive; the cross edge (0, 3) survives too.
        assert_eq!(sub.edge_count(), 4);
        for (new, &old) in mapping.iter().enumerate() {
            assert_eq!(sub.label(crate::VertexId(new as u32)), g.label(old));
        }
    }

    #[test]
    fn induced_subgraph_dedups_members() {
        let g = two_triangles();
        let (sub, mapping) =
            g.induced_subgraph([crate::VertexId(0), crate::VertexId(0), crate::VertexId(1)]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(mapping, vec![crate::VertexId(0), crate::VertexId(1)]);
        assert_eq!(sub.edge_count(), 1);
    }
}
