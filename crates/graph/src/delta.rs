//! Edge-level mutations over an immutable [`LabeledGraph`].
//!
//! [`LabeledGraph`] is a frozen CSR snapshot — the right shape for the
//! read-heavy search algorithms, the wrong shape for a live graph. This
//! module closes the gap without giving up immutability: a [`GraphDelta`]
//! *stages* validated edge inserts/deletes against a base snapshot, and
//! [`GraphDelta::apply`] / [`apply_change`] splice them into a **new**
//! snapshot in one linear merge pass over the CSR arrays (no re-sorting, no
//! re-interning, no per-list dedup — the O(|E| log |E|) [`crate::GraphBuilder`]
//! path is for initial construction only).
//!
//! The vertex set is fixed: deltas mutate edges, not vertices. Staging is
//! sequential and fully validated — a change is accepted only if it is
//! applicable at its position in the staged order (inserting an edge that is
//! absent *after the changes staged so far*, removing one that is present) —
//! so the staged list can be replayed change-by-change, which is exactly
//! what incremental index maintenance needs (each Algorithm 4 cascade /
//! Algorithm 7 delta is derived from one edge flip against the snapshot it
//! applies to).

use rustc_hash::{FxHashMap, FxHashSet};

use crate::graph::{LabeledGraph, VertexId};

/// The direction of one staged edge change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Add the edge `{u, v}`.
    Insert,
    /// Delete the edge `{u, v}`.
    Remove,
}

/// One validated edge flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeChange {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Insert or remove.
    pub op: EdgeOp,
}

impl EdgeChange {
    /// The endpoint pair in canonical `(min, max)` order.
    #[inline]
    pub fn key(&self) -> (u32, u32) {
        (self.u.0.min(self.v.0), self.u.0.max(self.v.0))
    }
}

/// Why a change could not be staged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Both endpoints are the same vertex.
    SelfLoop(VertexId),
    /// An endpoint id is outside the graph's vertex range.
    OutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The graph's vertex count.
        vertex_count: usize,
    },
    /// Insert of an edge that already exists (in the base graph or staged).
    EdgeExists(VertexId, VertexId),
    /// Remove of an edge that does not exist (or was staged away).
    EdgeMissing(VertexId, VertexId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SelfLoop(v) => write!(f, "self-loop on {v} rejected"),
            DeltaError::OutOfRange { vertex, vertex_count } => {
                write!(f, "vertex id {} out of range (graph has {vertex_count} vertices)", vertex.0)
            }
            DeltaError::EdgeExists(u, v) => write!(f, "edge {{{u}, {v}}} already exists"),
            DeltaError::EdgeMissing(u, v) => write!(f, "edge {{{u}, {v}}} does not exist"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A validated, ordered batch of edge changes against one base snapshot.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    changes: Vec<EdgeChange>,
    /// Net presence of every *touched* pair after all staged changes.
    overlay: FxHashMap<(u32, u32), bool>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Number of staged changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The staged changes in order.
    pub fn changes(&self) -> &[EdgeChange] {
        &self.changes
    }

    /// Whether `{u, v}` exists in `graph` *after* the staged changes.
    pub fn has_edge(&self, graph: &LabeledGraph, u: VertexId, v: VertexId) -> bool {
        let key = (u.0.min(v.0), u.0.max(v.0));
        match self.overlay.get(&key) {
            Some(&present) => present,
            None => graph.has_edge(u, v),
        }
    }

    fn validate_endpoints(
        graph: &LabeledGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DeltaError> {
        let n = graph.vertex_count();
        for w in [u, v] {
            if w.index() >= n {
                return Err(DeltaError::OutOfRange { vertex: w, vertex_count: n });
            }
        }
        if u == v {
            return Err(DeltaError::SelfLoop(u));
        }
        Ok(())
    }

    /// Stages the insert of `{u, v}`. Rejects self-loops, out-of-range ids,
    /// and edges already present (in the base or via earlier staged inserts).
    pub fn stage_insert(
        &mut self,
        graph: &LabeledGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DeltaError> {
        Self::validate_endpoints(graph, u, v)?;
        if self.has_edge(graph, u, v) {
            return Err(DeltaError::EdgeExists(u, v));
        }
        self.changes.push(EdgeChange { u, v, op: EdgeOp::Insert });
        self.overlay.insert((u.0.min(v.0), u.0.max(v.0)), true);
        Ok(())
    }

    /// Stages the removal of `{u, v}`. Rejects self-loops, out-of-range ids,
    /// and edges that are absent (in the base or staged away already).
    pub fn stage_remove(
        &mut self,
        graph: &LabeledGraph,
        u: VertexId,
        v: VertexId,
    ) -> Result<(), DeltaError> {
        Self::validate_endpoints(graph, u, v)?;
        if !self.has_edge(graph, u, v) {
            return Err(DeltaError::EdgeMissing(u, v));
        }
        self.changes.push(EdgeChange { u, v, op: EdgeOp::Remove });
        self.overlay.insert((u.0.min(v.0), u.0.max(v.0)), false);
        Ok(())
    }

    /// Applies every staged change in a single CSR merge pass, producing the
    /// patched snapshot. Equivalent to (but much cheaper than) replaying the
    /// changes through a fresh [`crate::GraphBuilder`].
    pub fn apply(&self, graph: &LabeledGraph) -> LabeledGraph {
        // Reduce the overlay to the *net* difference against the base.
        let mut inserts: FxHashMap<u32, Vec<VertexId>> = FxHashMap::default();
        let mut removes: FxHashSet<(u32, u32)> = FxHashSet::default();
        for (&(a, b), &present) in &self.overlay {
            let (u, v) = (VertexId(a), VertexId(b));
            let base = graph.has_edge(u, v);
            if present && !base {
                inserts.entry(a).or_default().push(v);
                inserts.entry(b).or_default().push(u);
            } else if !present && base {
                removes.insert((a, b));
            }
        }
        splice(graph, &mut inserts, &removes)
    }
}

/// Applies one already-validated [`EdgeChange`] to `graph`, producing the
/// patched snapshot. The incremental index-maintenance path replays a
/// [`GraphDelta`] through this one change at a time, so each Algorithm 4 /
/// Algorithm 7 step sees the exact pre/post snapshots it is defined on.
///
/// Debug builds assert applicability (insert of an absent edge, removal of a
/// present one); release builds trust the staging validation.
pub fn apply_change(graph: &LabeledGraph, change: &EdgeChange) -> LabeledGraph {
    let (u, v) = (change.u, change.v);
    let mut inserts: FxHashMap<u32, Vec<VertexId>> = FxHashMap::default();
    let mut removes: FxHashSet<(u32, u32)> = FxHashSet::default();
    match change.op {
        EdgeOp::Insert => {
            debug_assert!(!graph.has_edge(u, v), "insert of existing edge {{{u}, {v}}}");
            inserts.insert(u.0, vec![v]);
            inserts.insert(v.0, vec![u]);
        }
        EdgeOp::Remove => {
            debug_assert!(graph.has_edge(u, v), "removal of missing edge {{{u}, {v}}}");
            removes.insert(change.key());
        }
    }
    splice(graph, &mut inserts, &removes)
}

/// One linear pass over the CSR arrays: per vertex, merge the (sorted) old
/// neighbor slice with its sorted insert list, skipping removed pairs.
fn splice(
    graph: &LabeledGraph,
    inserts: &mut FxHashMap<u32, Vec<VertexId>>,
    removes: &FxHashSet<(u32, u32)>,
) -> LabeledGraph {
    for list in inserts.values_mut() {
        list.sort_unstable();
    }
    let (_, old_neighbors) = graph.raw_parts();
    let net_inserted: usize = inserts.values().map(Vec::len).sum();
    let n = graph.vertex_count();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbors = Vec::with_capacity(old_neighbors.len() + net_inserted);
    offsets.push(0usize);
    let empty: &[VertexId] = &[];
    for v in graph.vertices() {
        let additions: &[VertexId] = inserts.get(&v.0).map_or(empty, Vec::as_slice);
        let mut next = additions.iter().copied().peekable();
        for &w in graph.neighbors(v) {
            if removes.contains(&(v.0.min(w.0), v.0.max(w.0))) {
                continue;
            }
            while let Some(&a) = next.peek() {
                if a < w {
                    neighbors.push(a);
                    next.next();
                } else {
                    break;
                }
            }
            neighbors.push(w);
        }
        neighbors.extend(next);
        offsets.push(neighbors.len());
    }
    let (labels, interner, names) = graph.clone_meta();
    LabeledGraph::from_parts(offsets, neighbors, labels, interner, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two labeled triangles joined by one cross edge (the Figure 1 core).
    fn two_triangles() -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..3).map(|_| b.add_vertex("SE")).collect();
        let c: Vec<_> = (0..3).map(|_| b.add_vertex("UI")).collect();
        for (u, v) in [(a[0], a[1]), (a[1], a[2]), (a[0], a[2])] {
            b.add_edge(u, v);
        }
        for (u, v) in [(c[0], c[1]), (c[1], c[2]), (c[0], c[2])] {
            b.add_edge(u, v);
        }
        b.add_edge(a[0], c[0]);
        b.build()
    }

    /// Rebuilds `graph` with `delta` applied through a fresh `GraphBuilder`
    /// — the slow reference the splice path must match exactly.
    fn rebuild(graph: &LabeledGraph, delta: &GraphDelta) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        for v in graph.vertices() {
            let label = graph.interner().name(graph.label(v)).unwrap();
            b.add_named_vertex(&graph.vertex_name(v), label);
        }
        for (u, v) in graph.edges() {
            if delta.has_edge(graph, u, v) {
                b.add_edge(u, v);
            }
        }
        for (&(a, bb), &present) in &delta.overlay {
            if present && !graph.has_edge(VertexId(a), VertexId(bb)) {
                b.add_edge(VertexId(a), VertexId(bb));
            }
        }
        b.build()
    }

    fn assert_same(lhs: &LabeledGraph, rhs: &LabeledGraph) {
        assert_eq!(lhs.vertex_count(), rhs.vertex_count());
        assert_eq!(lhs.edge_count(), rhs.edge_count());
        for v in lhs.vertices() {
            assert_eq!(lhs.label(v), rhs.label(v), "label of {v}");
            assert_eq!(lhs.neighbors(v), rhs.neighbors(v), "adjacency of {v}");
        }
    }

    #[test]
    fn staging_validates() {
        let g = two_triangles();
        let mut d = GraphDelta::new();
        assert_eq!(
            d.stage_insert(&g, VertexId(0), VertexId(0)),
            Err(DeltaError::SelfLoop(VertexId(0)))
        );
        assert!(matches!(
            d.stage_insert(&g, VertexId(0), VertexId(99)),
            Err(DeltaError::OutOfRange { .. })
        ));
        assert_eq!(
            d.stage_insert(&g, VertexId(0), VertexId(1)),
            Err(DeltaError::EdgeExists(VertexId(0), VertexId(1)))
        );
        assert_eq!(
            d.stage_remove(&g, VertexId(0), VertexId(4)),
            Err(DeltaError::EdgeMissing(VertexId(0), VertexId(4)))
        );
        assert!(d.is_empty());
    }

    #[test]
    fn staging_tracks_the_overlay() {
        let g = two_triangles();
        let mut d = GraphDelta::new();
        d.stage_insert(&g, VertexId(0), VertexId(4)).unwrap();
        // Double-insert of the staged edge is rejected; so is re-removal.
        assert!(d.stage_insert(&g, VertexId(4), VertexId(0)).is_err());
        d.stage_remove(&g, VertexId(4), VertexId(0)).unwrap();
        assert!(d.stage_remove(&g, VertexId(0), VertexId(4)).is_err());
        assert_eq!(d.len(), 2, "cancelled pairs still record both steps");
        // Net effect: nothing changed.
        let patched = d.apply(&g);
        assert_same(&patched, &g);
    }

    #[test]
    fn apply_matches_builder_rebuild() {
        let g = two_triangles();
        let mut d = GraphDelta::new();
        d.stage_insert(&g, VertexId(0), VertexId(4)).unwrap();
        d.stage_insert(&g, VertexId(2), VertexId(5)).unwrap();
        d.stage_remove(&g, VertexId(0), VertexId(1)).unwrap();
        d.stage_remove(&g, VertexId(3), VertexId(4)).unwrap();
        let patched = d.apply(&g);
        assert_same(&patched, &rebuild(&g, &d));
        assert_eq!(patched.edge_count(), 7);
        // The base snapshot is untouched.
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(0), VertexId(4)));
    }

    #[test]
    fn apply_change_steps_equal_batch_apply() {
        let g = two_triangles();
        let mut d = GraphDelta::new();
        d.stage_remove(&g, VertexId(0), VertexId(3)).unwrap();
        d.stage_insert(&g, VertexId(1), VertexId(4)).unwrap();
        d.stage_insert(&g, VertexId(0), VertexId(3)).unwrap();
        let mut stepped = g.clone();
        for change in d.changes() {
            stepped = apply_change(&stepped, change);
        }
        assert_same(&stepped, &d.apply(&g));
    }

    #[test]
    fn patched_snapshot_keeps_names_and_labels() {
        let mut b = GraphBuilder::new();
        let x = b.add_named_vertex("ali\"ce", "L");
        let y = b.add_named_vertex("bob", "R");
        let z = b.add_named_vertex("carol", "R");
        b.add_edge(x, y);
        let g = b.build();
        let mut d = GraphDelta::new();
        d.stage_insert(&g, x, z).unwrap();
        let patched = d.apply(&g);
        assert_eq!(patched.vertex_name(x), "ali\"ce");
        assert_eq!(patched.vertex_by_name("carol"), Some(z));
        assert_eq!(patched.label(y), patched.label(z));
        assert_eq!(patched.label_count(), 2);
        assert_eq!(patched.edge_count(), 2);
    }

    #[test]
    fn empty_delta_is_an_identity_copy() {
        let g = two_triangles();
        let d = GraphDelta::new();
        assert_same(&d.apply(&g), &g);
    }
}
