//! A compact fixed-capacity bitset.
//!
//! Used for alive/dead vertex masks in [`crate::GraphView`] and for visited
//! sets in traversals. We implement our own rather than pulling in a crate:
//! the required surface is tiny and the hot paths (`contains`, `insert`,
//! `remove`) must inline into peeling loops.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a bitset with all indices `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut words = vec![!0u64; capacity.div_ceil(64)];
        // Clear the bits beyond `capacity` in the last word so that
        // `count()` and iteration never see phantom members.
        if !capacity.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (capacity % 64)) - 1;
            }
        }
        BitSet { words, capacity }
    }

    /// Number of indices this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if `idx` is in the set.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity, "index {idx} out of capacity {}", self.capacity);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Inserts `idx`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `idx`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.capacity);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Removes all indices.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of indices currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no index is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// In-place intersection with `other` (same capacity required).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other` (same capacity required).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place difference: removes every index present in `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let empty = BitSet::new(130);
        assert_eq!(empty.count(), 0);
        assert!(empty.is_empty());
        let full = BitSet::full(130);
        assert_eq!(full.count(), 130);
        assert!(full.contains(0));
        assert!(full.contains(129));
    }

    #[test]
    fn full_does_not_overflow_last_word() {
        for cap in [1usize, 63, 64, 65, 127, 128, 129] {
            let full = BitSet::full(cap);
            assert_eq!(full.count(), cap, "cap={cap}");
            assert_eq!(full.iter().count(), cap, "cap={cap}");
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(100);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(!s.contains(7));
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = BitSet::new(300);
        for idx in [250, 3, 64, 65, 128, 0] {
            s.insert(idx);
        }
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![0, 3, 64, 65, 128, 250]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        for i in 0..32 {
            a.insert(i);
        }
        for i in 16..48 {
            b.insert(i);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.count(), 16);
        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.count(), 48);
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(diff.count(), 16);
        assert!(diff.contains(0) && !diff.contains(16));
        a.clear();
        assert!(a.is_empty());
    }
}
