//! Labeled-graph substrate for butterfly-core community search.
//!
//! This crate provides the storage and traversal layer that every other crate
//! in the workspace builds on:
//!
//! * [`LabeledGraph`] — an immutable, CSR-encoded undirected graph whose
//!   vertices carry interned labels (and optional display names).
//! * [`GraphBuilder`] — incremental construction with edge deduplication.
//! * [`GraphView`] — a mutable overlay over a [`LabeledGraph`] supporting O(1)
//!   vertex deletion with live degree counters, the workhorse of every
//!   peeling algorithm in the paper.
//! * [`GraphDelta`] — staged, validated edge inserts/deletes against a
//!   snapshot, spliced into a new snapshot in one CSR merge pass (the
//!   substrate of incremental index maintenance and live serving).
//! * [`OverlayGraph`] / [`GraphRead`] — a mutable adjacency overlay that
//!   answers reads for a batch of staged edge flips in O(1) per flip, plus
//!   the read trait that lets the maintenance algorithms run unchanged over
//!   CSR snapshots, overlays, and views.
//! * [`traversal`] — BFS distances, query distance (Definition 5 of the
//!   paper), connectivity, connected components, and diameter computation.
//! * [`BitSet`] / [`UnionFind`] — small utility structures used across the
//!   workspace (union-find implements the cross-group connectivity check of
//!   Section 7).
//! * [`WedgeScratch`] — the dense epoch-stamped counter/marker scratch the
//!   butterfly wedge kernels run on (O(1) logical clear, no hashing).
//! * [`io`] — a plain-text edge-list + label-file format for persisting
//!   datasets and loading them from the CLI.
//!
//! The graph model follows Section 3.1 of the paper: an undirected labeled
//! graph `G = (V, E, ℓ)` where an edge between equal-labeled endpoints is
//! *homogeneous* and an edge between differently-labeled endpoints is
//! *heterogeneous* (cross).
//!
//! ```
//! use bcc_graph::{GraphBuilder, GraphView, bfs_distances};
//!
//! let mut b = GraphBuilder::new();
//! let se = b.add_vertex("SE");
//! let ui = b.add_vertex("UI");
//! let pm = b.add_vertex("PM");
//! b.add_edge(se, ui);
//! b.add_edge(ui, pm);
//! let g = b.build();
//!
//! let mut view = GraphView::new(&g);
//! assert_eq!(view.cross_degree(ui), 2);
//! view.remove_vertex(pm);
//! assert_eq!(bfs_distances(&view, se)[ui.index()], 1);
//! ```

pub mod bitset;
pub mod builder;
pub mod delta;
pub mod graph;
pub mod io;
pub mod json;
pub mod labels;
pub mod overlay;
pub mod scratch;
pub mod traversal;
pub mod unionfind;
pub mod view;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use delta::{apply_change, DeltaError, EdgeChange, EdgeOp, GraphDelta};
pub use graph::{EdgeKind, LabeledGraph, VertexId};
pub use labels::{Label, LabelInterner};
pub use overlay::{GraphRead, OverlayGraph};
pub use scratch::WedgeScratch;
pub use traversal::{bfs_distances, query_distance, QueryDistances, INF_DIST};
pub use unionfind::UnionFind;
pub use view::GraphView;
