//! Vertex labels and a string interner for them.
//!
//! The paper's label function `ℓ : V → A` maps vertices to labels such as
//! roles ("SE", "UI", "PM"), countries, or research fields. We intern label
//! strings to dense `u32` ids so the hot paths compare integers.

use rustc_hash::FxHashMap;

/// An interned vertex label. Dense ids starting at 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The dense index of this label.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Bidirectional mapping between label strings and dense [`Label`] ids.
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: FxHashMap<String, Label>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its label (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&label) = self.ids.get(name) {
            return label;
        }
        let label = Label(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), label);
        label
    }

    /// Looks up an already-interned label by name.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.ids.get(name).copied()
    }

    /// The display name of `label`, if it was interned here.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = LabelInterner::new();
        let se = interner.intern("SE");
        let ui = interner.intern("UI");
        assert_ne!(se, ui);
        assert_eq!(interner.intern("SE"), se);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut interner = LabelInterner::new();
        let pm = interner.intern("PM");
        assert_eq!(interner.get("PM"), Some(pm));
        assert_eq!(interner.get("nope"), None);
        assert_eq!(interner.name(pm), Some("PM"));
        assert_eq!(interner.name(Label(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut interner = LabelInterner::new();
        interner.intern("a");
        interner.intern("b");
        interner.intern("c");
        let names: Vec<_> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
