//! Plain-text persistence for labeled graphs.
//!
//! Format (one file):
//!
//! ```text
//! # comment lines start with '#'
//! v <id> <label> [name]      — vertex declaration
//! e <id> <id>                — undirected edge
//! ```
//!
//! Vertex ids must be dense `0..n` but may appear in any order; every edge
//! endpoint must be declared. The writer emits vertices in id order followed
//! by each edge once (`u < v`), so files round-trip byte-identically.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::{LabeledGraph, VertexId};

/// Errors produced while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file, with line number (1-based).
    Malformed { line: usize, message: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "malformed graph file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a labeled graph from the text format described in the module docs.
pub fn read_graph<R: Read>(reader: R) -> Result<LabeledGraph, ParseError> {
    let reader = BufReader::new(reader);
    let mut vertices: Vec<Option<(String, Option<String>)>> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut any_named = false;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let tag = parts.next().unwrap();
        let malformed = |message: &str| ParseError::Malformed {
            line: line_no,
            message: message.to_owned(),
        };
        match tag {
            "v" => {
                let id: usize = parts
                    .next()
                    .ok_or_else(|| malformed("vertex line missing id"))?
                    .parse()
                    .map_err(|_| malformed("vertex id is not an integer"))?;
                let label = parts
                    .next()
                    .ok_or_else(|| malformed("vertex line missing label"))?
                    .to_owned();
                let rest: Vec<&str> = parts.collect();
                let name = if rest.is_empty() {
                    None
                } else {
                    any_named = true;
                    Some(rest.join(" "))
                };
                if id >= vertices.len() {
                    vertices.resize(id + 1, None);
                }
                if vertices[id].is_some() {
                    return Err(malformed(&format!("duplicate vertex id {id}")));
                }
                vertices[id] = Some((label, name));
            }
            "e" => {
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| malformed("edge line missing first endpoint"))?
                    .parse()
                    .map_err(|_| malformed("edge endpoint is not an integer"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| malformed("edge line missing second endpoint"))?
                    .parse()
                    .map_err(|_| malformed("edge endpoint is not an integer"))?;
                edges.push((u, v));
            }
            other => {
                return Err(malformed(&format!("unknown record tag `{other}`")));
            }
        }
    }

    let mut builder = GraphBuilder::new();
    for (id, slot) in vertices.iter().enumerate() {
        match slot {
            Some((label, name)) => {
                let v = if any_named {
                    builder.add_named_vertex(name.as_deref().unwrap_or(""), label)
                } else {
                    builder.add_vertex(label)
                };
                debug_assert_eq!(v.index(), id);
            }
            None => {
                return Err(ParseError::Malformed {
                    line: 0,
                    message: format!("vertex id {id} never declared (ids must be dense)"),
                });
            }
        }
    }
    let n = vertices.len() as u32;
    for (u, v) in edges {
        if u >= n || v >= n {
            return Err(ParseError::Malformed {
                line: 0,
                message: format!("edge ({u}, {v}) references undeclared vertex"),
            });
        }
        builder.add_edge(VertexId(u), VertexId(v));
    }
    Ok(builder.build())
}

/// Writes `graph` in the text format (vertices in id order, then each edge
/// once with `u < v`).
pub fn write_graph<W: Write>(graph: &LabeledGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    let mut line = String::new();
    for v in graph.vertices() {
        line.clear();
        let label_name = graph
            .interner()
            .name(graph.label(v))
            .expect("graph label must be interned");
        let _ = write!(line, "v {} {}", v.0, label_name);
        let name = graph.vertex_name(v);
        if name != format!("v{}", v.0) {
            let _ = write!(line, " {name}");
        }
        writeln!(out, "{line}")?;
    }
    for (u, v) in graph.edges() {
        writeln!(out, "e {} {}", u.0, v.0)?;
    }
    out.flush()
}

/// Reads a SNAP-style edge list (`u v` per line, `#` comments) plus a
/// separate label assignment (`vertex label` per line). Vertices appearing
/// in the edge list without a label line get the fallback label `"_"`.
/// Vertex ids need not be dense — they are remapped to dense ids in first
/// appearance order; the returned vector maps dense id → original id.
pub fn read_snap<R1: Read, R2: Read>(
    edges: R1,
    labels: R2,
) -> Result<(LabeledGraph, Vec<u64>), ParseError> {
    use rustc_hash::FxHashMap;
    let mut label_of: FxHashMap<u64, String> = FxHashMap::default();
    for (line_no, line) in BufReader::new(labels).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let id: u64 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|_| ParseError::Malformed {
                line: line_no + 1,
                message: "label line must start with a vertex id".into(),
            })?;
        let label = parts.next().ok_or_else(|| ParseError::Malformed {
            line: line_no + 1,
            message: "label line missing the label".into(),
        })?;
        label_of.insert(id, label.to_owned());
    }

    let mut builder = GraphBuilder::new();
    let mut dense: FxHashMap<u64, VertexId> = FxHashMap::default();
    let mut original: Vec<u64> = Vec::new();
    let intern = |builder: &mut GraphBuilder,
                      dense: &mut FxHashMap<u64, VertexId>,
                      original: &mut Vec<u64>,
                      id: u64|
     -> VertexId {
        *dense.entry(id).or_insert_with(|| {
            let label = label_of.get(&id).map(String::as_str).unwrap_or("_");
            original.push(id);
            builder.add_vertex(label)
        })
    };
    for (line_no, line) in BufReader::new(edges).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |token: Option<&str>| -> Result<u64, ParseError> {
            token
                .ok_or_else(|| ParseError::Malformed {
                    line: line_no + 1,
                    message: "edge line needs two endpoints".into(),
                })?
                .parse()
                .map_err(|_| ParseError::Malformed {
                    line: line_no + 1,
                    message: "edge endpoint is not an integer".into(),
                })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        let ud = intern(&mut builder, &mut dense, &mut original, u);
        let vd = intern(&mut builder, &mut dense, &mut original, v);
        builder.add_edge(ud, vd);
    }
    Ok((builder.build(), original))
}

/// Reads a graph from a file path.
pub fn read_graph_file(path: impl AsRef<Path>) -> Result<LabeledGraph, ParseError> {
    read_graph(std::fs::File::open(path)?)
}

/// Writes a graph to a file path.
pub fn write_graph_file(graph: &LabeledGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_graph(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn roundtrip_named() {
        let mut b = GraphBuilder::new();
        let t = b.add_named_vertex("Toronto", "Canada");
        let f = b.add_named_vertex("Frankfurt", "Germany");
        let m = b.add_named_vertex("Munich", "Germany");
        b.add_edge(t, f);
        b.add_edge(f, m);
        let g = b.build();

        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), 3);
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.vertex_by_name("Munich"), Some(m));
        assert_eq!(
            g2.interner().name(g2.label(f)),
            Some("Germany")
        );
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a graph\n\nv 0 A\nv 1 B\n\ne 0 1\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_missing_vertex() {
        let text = "v 0 A\nv 2 B\ne 0 2\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn rejects_duplicate_vertex() {
        let text = "v 0 A\nv 0 B\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_dangling_edge() {
        let text = "v 0 A\ne 0 7\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_garbage_tag() {
        let text = "x 0 A\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn snap_two_file_format() {
        let edges = "# comment\n10 20\n20 30\n10 30\n";
        let labels = "10 SE\n20 UI\n# 30 has no label\n";
        let (g, original) = read_snap(edges.as_bytes(), labels.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(original, vec![10, 20, 30]);
        assert_eq!(g.interner().name(g.label(VertexId(0))), Some("SE"));
        assert_eq!(g.interner().name(g.label(VertexId(2))), Some("_"), "fallback label");
    }

    #[test]
    fn snap_rejects_malformed_lines() {
        assert!(read_snap("1\n".as_bytes(), "".as_bytes()).is_err());
        assert!(read_snap("a b\n".as_bytes(), "".as_bytes()).is_err());
        assert!(read_snap("".as_bytes(), "1\n".as_bytes()).is_err());
    }

    #[test]
    fn snap_non_dense_ids_are_remapped() {
        let edges = "1000000 5\n5 42\n";
        let (g, original) = read_snap(edges.as_bytes(), "".as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(original, vec![1000000, 5, 42]);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn names_with_spaces_roundtrip() {
        let mut b = GraphBuilder::new();
        let v = b.add_named_vertex("Ron Weasley", "justice");
        let u = b.add_named_vertex("Draco Malfoy", "evil");
        b.add_edge(v, u);
        let g = b.build();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.vertex_by_name("Ron Weasley"), Some(v));
    }
}
