//! BFS-based traversal primitives: distances, query distance (Definition 5),
//! connected components, and diameter computation.

use std::collections::VecDeque;

use crate::graph::{LabeledGraph, VertexId};
use crate::overlay::GraphRead;
use crate::view::GraphView;

/// Sentinel distance for unreachable vertices. Per Section 3.1,
/// `dist_H(u, v) = ∞` when `u` and `v` are disconnected.
pub const INF_DIST: u32 = u32::MAX;

/// Single-source BFS over a view. Returns per-vertex hop distances, with
/// [`INF_DIST`] for dead or unreachable vertices.
pub fn bfs_distances<G: GraphRead>(view: &GraphView<'_, G>, source: VertexId) -> Vec<u32> {
    let n = view.graph().vertex_count();
    let mut dist = vec![INF_DIST; n];
    if !view.is_alive(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let next = dist[v.index()] + 1;
        for u in view.neighbors(v) {
            if dist[u.index()] == INF_DIST {
                dist[u.index()] = next;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// BFS from a set of equally-distant sources (`dist = start_dist` for each
/// source). Only vertices in `unsettled` may be assigned a distance; all
/// other vertices act as already-visited walls. This is the kernel of the
/// fast query-distance update of Algorithm 5.
pub fn bfs_from_frontier<G: GraphRead>(
    view: &GraphView<'_, G>,
    frontier: &[(VertexId, u32)],
    dist: &mut [u32],
    may_update: impl Fn(VertexId) -> bool,
) {
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for &(v, d) in frontier {
        debug_assert!(view.is_alive(v));
        debug_assert!(dist[v.index()] == d);
        queue.push_back(v);
    }
    while let Some(v) = queue.pop_front() {
        let next = dist[v.index()].saturating_add(1);
        for u in view.neighbors(v) {
            if may_update(u) && next < dist[u.index()] {
                dist[u.index()] = next;
                queue.push_back(u);
            }
        }
    }
}

/// Per-query BFS distances for a query set, plus the combined per-vertex
/// query distance of Definition 5:
/// `dist(v, Q) = max_{q ∈ Q} dist(v, q)`.
#[derive(Clone, Debug)]
pub struct QueryDistances {
    /// `per_query[i][v]` = hop distance from query `i` to vertex `v`.
    pub per_query: Vec<Vec<u32>>,
    /// The query vertices, in the same order as `per_query`.
    pub queries: Vec<VertexId>,
}

impl QueryDistances {
    /// Runs one BFS per query vertex over `view`.
    pub fn compute<G: GraphRead>(view: &GraphView<'_, G>, queries: &[VertexId]) -> Self {
        QueryDistances {
            per_query: queries.iter().map(|&q| bfs_distances(view, q)).collect(),
            queries: queries.to_vec(),
        }
    }

    /// `dist(v, Q)` — the maximum distance from `v` to any query vertex
    /// (Definition 5); [`INF_DIST`] if any query cannot reach `v`.
    #[inline]
    pub fn vertex_query_distance(&self, v: VertexId) -> u32 {
        self.per_query
            .iter()
            .map(|d| d[v.index()])
            .max()
            .unwrap_or(INF_DIST)
    }

    /// `dist(X, Q)` for the whole alive set of `view`: the maximum vertex
    /// query distance (Definition 5 applied to `X = V(view)`).
    pub fn graph_query_distance<G: GraphRead>(&self, view: &GraphView<'_, G>) -> u32 {
        view.alive_vertices()
            .map(|v| self.vertex_query_distance(v))
            .max()
            .unwrap_or(0)
    }

    /// All alive vertices attaining the maximum query distance, together
    /// with that distance. Vertices unreachable from some query vertex
    /// (distance ∞) always dominate.
    pub fn farthest_vertices<G: GraphRead>(&self, view: &GraphView<'_, G>) -> (Vec<VertexId>, u32) {
        let mut best = 0u32;
        let mut out = Vec::new();
        for v in view.alive_vertices() {
            let d = self.vertex_query_distance(v);
            match d.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = d;
                    out.clear();
                    out.push(v);
                }
                std::cmp::Ordering::Equal => out.push(v),
                std::cmp::Ordering::Less => {}
            }
        }
        (out, best)
    }
}

/// `dist(v, Q)` computed from scratch (convenience wrapper).
pub fn query_distance<G: GraphRead>(view: &GraphView<'_, G>, queries: &[VertexId], v: VertexId) -> u32 {
    QueryDistances::compute(view, queries).vertex_query_distance(v)
}

/// Connected components of the alive subgraph; returns per-vertex component
/// id (`u32::MAX` for dead vertices) and the component count.
pub fn connected_components<G: GraphRead>(view: &GraphView<'_, G>) -> (Vec<u32>, usize) {
    let n = view.graph().vertex_count();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in view.alive_vertices() {
        if comp[start.index()] != u32::MAX {
            continue;
        }
        comp[start.index()] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for u in view.neighbors(v) {
                if comp[u.index()] == u32::MAX {
                    comp[u.index()] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Exact diameter of the alive subgraph by running BFS from every alive
/// vertex. Disconnected views return the maximum eccentricity *within*
/// components (∞ distances are skipped), matching how the paper reports
/// diameters of discovered communities. O(|V|·|E|) — fine for communities
/// and test graphs; use [`diameter_double_sweep`] for large graphs.
pub fn diameter_exact<G: GraphRead>(view: &GraphView<'_, G>) -> u32 {
    let mut diameter = 0;
    for v in view.alive_vertices() {
        let dist = bfs_distances(view, v);
        for u in view.alive_vertices() {
            let d = dist[u.index()];
            if d != INF_DIST && d > diameter {
                diameter = d;
            }
        }
    }
    diameter
}

/// Double-sweep lower bound on the diameter: BFS from `seed` to find the
/// farthest vertex `a`, then BFS from `a`; the largest finite distance found
/// is a lower bound that is exact on trees and very tight in practice.
/// Used for the `d_max` column of Table 3 on the larger networks.
pub fn diameter_double_sweep<G: GraphRead>(view: &GraphView<'_, G>, seed: VertexId) -> u32 {
    if !view.is_alive(seed) {
        return 0;
    }
    let first = bfs_distances(view, seed);
    let a = view
        .alive_vertices()
        .filter(|v| first[v.index()] != INF_DIST)
        .max_by_key(|v| first[v.index()])
        .unwrap_or(seed);
    let second = bfs_distances(view, a);
    view.alive_vertices()
        .map(|v| second[v.index()])
        .filter(|&d| d != INF_DIST)
        .max()
        .unwrap_or(0)
}

/// Exact diameter via the iFUB (iterative Fringe Upper Bound) strategy:
/// run BFS from a central root, then probe vertices from the outermost BFS
/// level inward, maintaining a lower bound `lb` (max eccentricity seen) and
/// the upper bound `2·level`; stop as soon as `lb ≥ 2·(level − 1)`. Exact,
/// and on small-world graphs it typically probes a handful of vertices
/// instead of all `|V|` (used for the case-study diameter reports).
pub fn diameter_ifub<G: GraphRead>(view: &GraphView<'_, G>, seed: VertexId) -> u32 {
    if !view.is_alive(seed) {
        return 0;
    }
    // Double sweep to land on a reasonably central root: farthest vertex
    // from the seed, then the midpoint of that far path is approximated by
    // the far vertex itself (a common simplification; correctness does not
    // depend on root quality, only speed does).
    let first = bfs_distances(view, seed);
    let far = view
        .alive_vertices()
        .filter(|v| first[v.index()] != INF_DIST)
        .max_by_key(|v| first[v.index()])
        .unwrap_or(seed);
    let root_dist = bfs_distances(view, far);
    // Group vertices by BFS level from the root.
    let max_level = view
        .alive_vertices()
        .map(|v| root_dist[v.index()])
        .filter(|&d| d != INF_DIST)
        .max()
        .unwrap_or(0);
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max_level as usize + 1];
    for v in view.alive_vertices() {
        let d = root_dist[v.index()];
        if d != INF_DIST {
            levels[d as usize].push(v);
        }
    }
    let mut lower_bound = max_level; // ecc(root) itself
    for level in (1..=max_level).rev() {
        if lower_bound >= 2 * level {
            break; // no deeper vertex can improve the bound
        }
        for &v in &levels[level as usize] {
            lower_bound = lower_bound.max(eccentricity(view, v));
        }
    }
    lower_bound
}

/// Exact eccentricity of `v` within its component (largest finite BFS
/// distance).
pub fn eccentricity<G: GraphRead>(view: &GraphView<'_, G>, v: VertexId) -> u32 {
    let dist = bfs_distances(view, v);
    view.alive_vertices()
        .map(|u| dist[u.index()])
        .filter(|&d| d != INF_DIST)
        .max()
        .unwrap_or(0)
}

/// Hop distance between two vertices in the *full* graph (fresh view).
pub fn graph_distance(graph: &LabeledGraph, u: VertexId, v: VertexId) -> u32 {
    let view = GraphView::new(graph);
    bfs_distances(&view, u)[v.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn cycle(n: usize) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex("A")).collect();
        for i in 0..n {
            b.add_edge(vs[i], vs[(i + 1) % n]);
        }
        b.build()
    }

    #[test]
    fn bfs_on_cycle() {
        let g = cycle(6);
        let view = GraphView::new(&g);
        let dist = bfs_distances(&view, VertexId(0));
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_from_dead_source_is_all_inf() {
        let g = cycle(4);
        let mut view = GraphView::new(&g);
        view.remove_vertex(VertexId(0));
        let dist = bfs_distances(&view, VertexId(0));
        assert!(dist.iter().all(|&d| d == INF_DIST));
    }

    #[test]
    fn query_distance_is_max_over_queries() {
        let g = cycle(6);
        let view = GraphView::new(&g);
        let qd = QueryDistances::compute(&view, &[VertexId(0), VertexId(3)]);
        // v1: dist to q0 = 1, to q3 = 2 → query distance 2.
        assert_eq!(qd.vertex_query_distance(VertexId(1)), 2);
        assert_eq!(qd.graph_query_distance(&view), 3, "each query is 3 away from the other");
        let (far, d) = qd.farthest_vertices(&view);
        assert_eq!(d, 3);
        // The queries themselves are the farthest (dist 3 to the opposite query).
        assert_eq!(far, vec![VertexId(0), VertexId(3)]);
    }

    #[test]
    fn unreachable_dominates_farthest() {
        let g = cycle(6);
        let mut view = GraphView::new(&g);
        // Cut vertex 2 and 4: vertex 3 becomes unreachable from 0.
        view.remove_vertex(VertexId(2));
        view.remove_vertex(VertexId(4));
        let qd = QueryDistances::compute(&view, &[VertexId(0)]);
        let (far, d) = qd.farthest_vertices(&view);
        assert_eq!(d, INF_DIST);
        assert_eq!(far, vec![VertexId(3)]);
    }

    #[test]
    fn components_and_diameter() {
        let g = cycle(8);
        let mut view = GraphView::new(&g);
        assert_eq!(diameter_exact(&view), 4);
        assert_eq!(connected_components(&view).1, 1);
        view.remove_vertex(VertexId(0));
        view.remove_vertex(VertexId(4));
        let (comp, count) = connected_components(&view);
        assert_eq!(count, 2);
        assert_eq!(comp[1], comp[3]);
        assert_ne!(comp[1], comp[5]);
        // Each side is a path of 3 vertices → diameter 2 within components.
        assert_eq!(diameter_exact(&view), 2);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..10).map(|_| b.add_vertex("A")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        assert_eq!(diameter_double_sweep(&view, VertexId(5)), 9);
        assert_eq!(eccentricity(&view, VertexId(0)), 9);
        assert_eq!(eccentricity(&view, VertexId(5)), 5);
    }

    #[test]
    fn graph_distance_helper() {
        let g = cycle(10);
        assert_eq!(graph_distance(&g, VertexId(0), VertexId(5)), 5);
    }

    #[test]
    fn ifub_matches_exact_on_fixtures() {
        for n in [4usize, 7, 12, 15] {
            let g = cycle(n);
            let view = GraphView::new(&g);
            assert_eq!(
                diameter_ifub(&view, VertexId(0)),
                diameter_exact(&view),
                "cycle of {n}"
            );
        }
        // Path graph.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..9).map(|_| b.add_vertex("A")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let g = b.build();
        let view = GraphView::new(&g);
        assert_eq!(diameter_ifub(&view, VertexId(4)), 8);
    }

    #[test]
    fn ifub_matches_exact_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        for trial in 0..10 {
            let n = rng.gen_range(8..30usize);
            let mut b = GraphBuilder::new();
            let vs: Vec<_> = (0..n).map(|_| b.add_vertex("A")).collect();
            // Spanning path keeps it connected; random chords vary shape.
            for w in vs.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            for _ in 0..n {
                let u = vs[rng.gen_range(0..n)];
                let v = vs[rng.gen_range(0..n)];
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build();
            let view = GraphView::new(&g);
            assert_eq!(
                diameter_ifub(&view, VertexId(0)),
                diameter_exact(&view),
                "trial {trial}"
            );
        }
    }
}
