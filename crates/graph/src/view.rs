//! Mutable subgraph views with O(1) vertex deletion.
//!
//! Every search algorithm in the paper (Algorithms 1, 4, 8, 9 and both
//! baselines) repeatedly deletes vertices from a candidate subgraph. Copying
//! the graph per deletion would be quadratic, so we overlay the immutable CSR
//! with:
//!
//! * an *alive* bitset,
//! * per-vertex live degree counters, and
//! * per-vertex live *intra-label* degree counters (the k-core conditions of
//!   Definition 4 constrain the label-induced subgraphs, not the full graph).
//!
//! Deleting a vertex is O(deg) (to decrement its neighbors' counters);
//! neighbor iteration filters dead endpoints on the fly.
//!
//! The view is generic over any [`GraphRead`] source, defaulting to
//! [`LabeledGraph`]: the incremental-maintenance cascades run the same
//! peeling code over an [`crate::OverlayGraph`] mid-batch without ever
//! materializing the intermediate snapshots.

use crate::bitset::BitSet;
use crate::graph::{LabeledGraph, VertexId};
use crate::labels::Label;
use crate::overlay::GraphRead;

/// A deletable overlay over any [`GraphRead`] source (a [`LabeledGraph`]
/// CSR by default, or an [`crate::OverlayGraph`] mid-commit).
#[derive(Debug)]
pub struct GraphView<'g, G: GraphRead = LabeledGraph> {
    graph: &'g G,
    alive: BitSet,
    degree: Vec<u32>,
    intra_degree: Vec<u32>,
    alive_count: usize,
}

// Manual impl: `&'g G` is always cloneable, no `G: Clone` bound needed.
impl<G: GraphRead> Clone for GraphView<'_, G> {
    fn clone(&self) -> Self {
        GraphView {
            graph: self.graph,
            alive: self.alive.clone(),
            degree: self.degree.clone(),
            intra_degree: self.intra_degree.clone(),
            alive_count: self.alive_count,
        }
    }
}

impl<'g, G: GraphRead> GraphView<'g, G> {
    /// A view containing every vertex of `graph`.
    pub fn new(graph: &'g G) -> Self {
        let n = graph.vertex_count();
        let mut degree = vec![0u32; n];
        let mut intra_degree = vec![0u32; n];
        for v in graph.vertices() {
            degree[v.index()] = graph.degree(v) as u32;
            intra_degree[v.index()] = graph.same_label_neighbors_iter(v).count() as u32;
        }
        GraphView {
            graph,
            alive: BitSet::full(n),
            degree,
            intra_degree,
            alive_count: n,
        }
    }

    /// A view containing exactly the vertices in `members`.
    pub fn from_vertices(graph: &'g G, members: impl IntoIterator<Item = VertexId>) -> Self {
        let n = graph.vertex_count();
        let mut alive = BitSet::new(n);
        for v in members {
            alive.insert(v.index());
        }
        Self::from_alive(graph, alive)
    }

    /// A view from a pre-built alive set.
    pub fn from_alive(graph: &'g G, alive: BitSet) -> Self {
        assert_eq!(alive.capacity(), graph.vertex_count(), "alive set capacity mismatch");
        let n = graph.vertex_count();
        let mut degree = vec![0u32; n];
        let mut intra_degree = vec![0u32; n];
        let mut alive_count = 0;
        for vi in alive.iter() {
            alive_count += 1;
            let v = VertexId(vi as u32);
            let label = graph.label(v);
            let mut deg = 0;
            let mut intra = 0;
            for u in graph.neighbors_iter(v) {
                if alive.contains(u.index()) {
                    deg += 1;
                    if graph.label(u) == label {
                        intra += 1;
                    }
                }
            }
            degree[vi] = deg;
            intra_degree[vi] = intra;
        }
        GraphView {
            graph,
            alive,
            degree,
            intra_degree,
            alive_count,
        }
    }

    /// The underlying immutable graph.
    #[inline]
    pub fn graph(&self) -> &'g G {
        self.graph
    }

    /// Returns `true` if `v` is still in the view.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive.contains(v.index())
    }

    /// Number of alive vertices.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The alive set as a bitset (e.g. for snapshotting).
    pub fn alive_set(&self) -> &BitSet {
        &self.alive
    }

    /// Live degree of `v` (count of alive neighbors). Zero if `v` is dead.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degree[v.index()] as usize
    }

    /// Live same-label degree of `v` — its degree in the induced subgraph of
    /// its own label group (the quantity the k-core conditions of Def. 4
    /// constrain).
    #[inline]
    pub fn intra_degree(&self, v: VertexId) -> usize {
        self.intra_degree[v.index()] as usize
    }

    /// Live cross-label degree of `v`.
    #[inline]
    pub fn cross_degree(&self, v: VertexId) -> usize {
        (self.degree[v.index()] - self.intra_degree[v.index()]) as usize
    }

    /// Iterates the alive vertices in ascending id order.
    pub fn alive_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive.iter().map(|i| VertexId(i as u32))
    }

    /// Iterates the alive neighbors of `v`. (Callers guard aliveness of `v`
    /// itself; use [`GraphRead::neighbors_iter`] for the dead-safe variant.)
    pub fn neighbors<'a>(&'a self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        self.graph
            .neighbors_iter(v)
            .filter(move |&u| self.alive.contains(u.index()))
    }

    /// Iterates the alive neighbors of `v` sharing `v`'s label.
    pub fn same_label_neighbors<'a>(&'a self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        let label = self.graph.label(v);
        self.neighbors(v).filter(move |&u| self.graph.label(u) == label)
    }

    /// Iterates the alive neighbors of `v` with a different label.
    pub fn cross_label_neighbors<'a>(&'a self, v: VertexId) -> impl Iterator<Item = VertexId> + 'a {
        let label = self.graph.label(v);
        self.neighbors(v).filter(move |&u| self.graph.label(u) != label)
    }

    /// Removes `v` from the view, updating neighbor degree counters.
    /// Returns `false` if `v` was already dead.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if !self.alive.remove(v.index()) {
            return false;
        }
        self.alive_count -= 1;
        let label = self.graph.label(v);
        for u in self.graph.neighbors_iter(v) {
            if self.alive.contains(u.index()) {
                self.degree[u.index()] -= 1;
                if self.graph.label(u) == label {
                    self.intra_degree[u.index()] -= 1;
                }
            }
        }
        self.degree[v.index()] = 0;
        self.intra_degree[v.index()] = 0;
        true
    }

    /// Number of alive edges (both endpoints alive). O(alive degrees).
    pub fn edge_count(&self) -> usize {
        let total: usize = self.alive.iter().map(|i| self.degree[i] as usize).sum();
        total / 2
    }

    /// Collects the alive vertices into a `Vec`.
    pub fn collect_vertices(&self) -> Vec<VertexId> {
        self.alive_vertices().collect()
    }

    /// The connected component of `start` within the view (empty if dead).
    pub fn component_of(&self, start: VertexId) -> BitSet {
        let mut comp = BitSet::new(self.graph.vertex_count());
        if !self.is_alive(start) {
            return comp;
        }
        let mut queue = std::collections::VecDeque::new();
        comp.insert(start.index());
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if comp.insert(u.index()) {
                    queue.push_back(u);
                }
            }
        }
        comp
    }

    /// Restricts the view to the vertices in `keep` (intersection), fixing
    /// up all counters.
    pub fn restrict_to(&mut self, keep: &BitSet) {
        let to_remove: Vec<VertexId> = self
            .alive_vertices()
            .filter(|v| !keep.contains(v.index()))
            .collect();
        for v in to_remove {
            self.remove_vertex(v);
        }
    }

    /// Returns `true` if `u` and `v` are both alive and connected in the view.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        if !self.is_alive(u) || !self.is_alive(v) {
            return false;
        }
        if u == v {
            return true;
        }
        self.component_of(u).contains(v.index())
    }
}

/// A view is itself a readable graph: the live subgraph it represents.
/// `vertex_count` still sizes the full id space (dead ids included) so
/// per-vertex arrays stay index-compatible with the base graph.
impl<G: GraphRead> GraphRead for GraphView<'_, G> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    fn edge_count(&self) -> usize {
        GraphView::edge_count(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.graph.label(v)
    }

    #[inline]
    fn label_count(&self) -> usize {
        self.graph.label_count()
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive_vertices()
    }

    fn neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        // Dead-safe: a dead vertex has no live neighbors (and its base
        // adjacency is never scanned).
        let take = if self.is_alive(v) { usize::MAX } else { 0 };
        self.neighbors(v).take(take)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        GraphView::degree(self, v)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.is_alive(u) && self.is_alive(v) && self.graph.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::OverlayGraph;
    use crate::{EdgeChange, EdgeOp, GraphBuilder};

    fn path_graph(n: usize) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| b.add_vertex(if i % 2 == 0 { "A" } else { "B" }))
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    #[test]
    fn full_view_mirrors_graph() {
        let g = path_graph(5);
        let view = GraphView::new(&g);
        assert_eq!(view.alive_count(), 5);
        assert_eq!(view.edge_count(), 4);
        assert_eq!(view.degree(VertexId(2)), 2);
        // Path alternates labels, so no same-label neighbors exist.
        assert_eq!(view.intra_degree(VertexId(2)), 0);
        assert_eq!(view.cross_degree(VertexId(2)), 2);
    }

    #[test]
    fn removal_updates_counters() {
        let g = path_graph(5);
        let mut view = GraphView::new(&g);
        assert!(view.remove_vertex(VertexId(2)));
        assert!(!view.remove_vertex(VertexId(2)));
        assert_eq!(view.alive_count(), 4);
        assert_eq!(view.degree(VertexId(1)), 1);
        assert_eq!(view.degree(VertexId(3)), 1);
        assert_eq!(view.edge_count(), 2);
        assert!(!view.connected(VertexId(0), VertexId(4)));
        assert!(view.connected(VertexId(0), VertexId(1)));
    }

    #[test]
    fn from_vertices_restricts() {
        let g = path_graph(6);
        let view = GraphView::from_vertices(&g, (0..3).map(VertexId));
        assert_eq!(view.alive_count(), 3);
        assert_eq!(view.degree(VertexId(2)), 1, "edge to dead v3 not counted");
        assert_eq!(view.neighbors(VertexId(2)).count(), 1);
    }

    #[test]
    fn component_and_restrict() {
        let g = path_graph(6);
        let mut view = GraphView::new(&g);
        view.remove_vertex(VertexId(3));
        let comp = view.component_of(VertexId(0));
        assert_eq!(comp.count(), 3);
        view.restrict_to(&comp);
        assert_eq!(view.alive_count(), 3);
        assert!(!view.is_alive(VertexId(5)));
    }

    #[test]
    fn intra_degree_tracks_same_label_only() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let b0 = b.add_vertex("B");
        b.add_edge(a0, a1);
        b.add_edge(a0, b0);
        let g = b.build();
        let mut view = GraphView::new(&g);
        assert_eq!(view.intra_degree(a0), 1);
        assert_eq!(view.cross_degree(a0), 1);
        view.remove_vertex(a1);
        assert_eq!(view.intra_degree(a0), 0);
        assert_eq!(view.cross_degree(a0), 1);
    }

    #[test]
    fn view_over_an_overlay_tracks_staged_flips() {
        // The same peeling machinery runs over an OverlayGraph mid-commit:
        // counters must reflect the staged (not the base) adjacency.
        let g = path_graph(4); // 0-1-2-3, labels A B A B
        let mut overlay = OverlayGraph::new(&g);
        overlay.flip(&EdgeChange { u: VertexId(0), v: VertexId(2), op: EdgeOp::Insert });
        overlay.flip(&EdgeChange { u: VertexId(2), v: VertexId(3), op: EdgeOp::Remove });
        let mut view = GraphView::new(&overlay);
        assert_eq!(view.alive_count(), 4);
        assert_eq!(view.edge_count(), 3);
        assert_eq!(view.intra_degree(VertexId(0)), 1, "staged homogeneous edge {{0, 2}}");
        assert_eq!(view.degree(VertexId(3)), 0, "staged removal of {{2, 3}}");
        view.remove_vertex(VertexId(2));
        assert_eq!(view.degree(VertexId(0)), 1);
        assert_eq!(view.intra_degree(VertexId(0)), 0);
        assert!(view.connected(VertexId(0), VertexId(1)));
    }

    #[test]
    fn graph_read_on_views_is_dead_safe() {
        let g = path_graph(4);
        let mut view = GraphView::new(&g);
        view.remove_vertex(VertexId(1));
        assert_eq!(GraphRead::neighbors_iter(&view, VertexId(1)).count(), 0);
        assert_eq!(GraphRead::vertices(&view).count(), 3);
        assert!(!GraphRead::has_edge(&view, VertexId(0), VertexId(1)));
        assert!(GraphRead::has_edge(&view, VertexId(2), VertexId(3)));
        assert_eq!(GraphRead::vertex_count(&view), 4, "id space keeps dead ids");
    }
}
