//! The mutable adjacency overlay: O(1)-per-edge graph mutation without
//! materializing a CSR snapshot.
//!
//! [`crate::apply_change`] splices a **complete new CSR** per edge flip —
//! O(|V| + |E|) each — which makes replaying a B-edge batch O(B·(|V|+|E|)).
//! Incremental index maintenance only ever *reads* the intermediate
//! snapshots (neighbor lists, degrees, labels, edge membership), so this
//! module replaces them with a read view:
//!
//! * [`GraphRead`] — the read-only adjacency abstraction every maintenance
//!   routine is written against. Implemented by [`LabeledGraph`] (the frozen
//!   CSR), by [`OverlayGraph`] (CSR + staged flips), and by
//!   [`crate::GraphView`] (CSR + deleted vertices), so one generic algorithm
//!   serves all three.
//! * [`OverlayGraph`] — a base CSR plus copy-on-write adjacency lists: the
//!   first flip touching a vertex copies its (typically short) neighbor
//!   slice, subsequent flips binary-insert/remove into the copy, and every
//!   read serves a plain sorted slice — overlay reads cost the same as CSR
//!   reads, so the cascades run at full speed mid-batch. After a whole
//!   batch of flips, [`OverlayGraph::materialize`] emits the final snapshot
//!   in **one** linear pass.
//!
//! The contract, pinned by the differential suites: any read through
//! [`GraphRead`] on an overlay equals the same read on the snapshot
//! [`crate::apply_change`] would have produced.

use rustc_hash::FxHashMap;

use crate::delta::{EdgeChange, EdgeOp};
use crate::graph::{LabeledGraph, VertexId};
use crate::labels::Label;

/// Read-only access to a labeled graph: the id space, labels, and live
/// adjacency. The *live* graph an implementor represents may be smaller
/// than its id space (a [`crate::GraphView`] with deleted vertices);
/// [`GraphRead::vertex_count`] always sizes the dense id space so callers
/// can allocate per-vertex arrays, while [`GraphRead::vertices`] yields
/// only the live ids.
pub trait GraphRead {
    /// Size of the dense vertex-id space (including any dead ids).
    fn vertex_count(&self) -> usize;

    /// Number of live undirected edges.
    fn edge_count(&self) -> usize;

    /// The label of `v`.
    fn label(&self, v: VertexId) -> Label;

    /// Number of distinct labels in the underlying graph.
    fn label_count(&self) -> usize;

    /// Live vertices in ascending id order.
    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_;

    /// Live neighbors of `v` in ascending id order. Empty when `v` itself
    /// is not live.
    fn neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_;

    /// Live degree of `v` (length of [`GraphRead::neighbors_iter`]).
    fn degree(&self, v: VertexId) -> usize;

    /// Whether the live graph contains the edge `{u, v}`.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Live neighbors of `v` sharing `v`'s label.
    fn same_label_neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let label = self.label(v);
        self.neighbors_iter(v).filter(move |&u| self.label(u) == label)
    }

    /// Live neighbors of `v` with a different label.
    fn cross_label_neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let label = self.label(v);
        self.neighbors_iter(v).filter(move |&u| self.label(u) != label)
    }
}

impl GraphRead for LabeledGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        LabeledGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        LabeledGraph::edge_count(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        LabeledGraph::label(self, v)
    }

    #[inline]
    fn label_count(&self) -> usize {
        LabeledGraph::label_count(self)
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        LabeledGraph::vertices(self)
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors(v).iter().copied()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        LabeledGraph::degree(self, v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        LabeledGraph::has_edge(self, u, v)
    }
}

/// A [`LabeledGraph`] with staged edge flips layered on top — the mutable
/// adjacency view multi-edge commits run their index maintenance against.
///
/// Vertices, labels, and names are fixed; only edges move. Adjacency is
/// copy-on-write per vertex: a flip touching `v` for the first time copies
/// `v`'s neighbor slice (O(deg)), later flips edit the copy in place
/// (O(deg) worst case, O(1) amortized for sparse vertices) — never the
/// O(|V| + |E|) CSR splice of [`crate::apply_change`]. Reads are plain
/// sorted slices either way, so traversal over an overlay costs the same
/// as over the base CSR.
#[derive(Clone, Debug)]
pub struct OverlayGraph<'g> {
    base: &'g LabeledGraph,
    /// Copy-on-write full adjacency lists of the touched vertices, each
    /// sorted ascending.
    adj: FxHashMap<u32, Vec<VertexId>>,
    edge_count: usize,
}

impl<'g> OverlayGraph<'g> {
    /// An overlay with no staged flips: reads are exactly `base`.
    pub fn new(base: &'g LabeledGraph) -> Self {
        OverlayGraph { base, adj: FxHashMap::default(), edge_count: base.edge_count() }
    }

    /// An overlay with `changes` already applied, in order.
    pub fn from_changes(base: &'g LabeledGraph, changes: &[EdgeChange]) -> Self {
        let mut overlay = OverlayGraph::new(base);
        for change in changes {
            overlay.flip(change);
        }
        overlay
    }

    /// The base snapshot the overlay patches.
    #[inline]
    pub fn base(&self) -> &'g LabeledGraph {
        self.base
    }

    /// Number of vertices whose adjacency has been copied out of the base
    /// (an upper bound on how far the overlay has diverged).
    pub fn touched_vertices(&self) -> usize {
        self.adj.len()
    }

    /// The current sorted neighbor list of `v` (copy-on-write list if `v`
    /// was touched, the base CSR slice otherwise).
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        match self.adj.get(&v.0) {
            Some(list) => list,
            None => self.base.neighbors(v),
        }
    }

    /// Applies one already-validated edge flip. Debug builds assert
    /// applicability (insert of an absent edge, removal of a present one);
    /// release builds trust the staging validation, exactly like
    /// [`crate::apply_change`].
    pub fn flip(&mut self, change: &EdgeChange) {
        let (u, v) = (change.u, change.v);
        let insert = match change.op {
            EdgeOp::Insert => {
                debug_assert!(
                    !GraphRead::has_edge(self, u, v),
                    "insert of existing edge {{{u}, {v}}}"
                );
                self.edge_count += 1;
                true
            }
            EdgeOp::Remove => {
                debug_assert!(
                    GraphRead::has_edge(self, u, v),
                    "removal of missing edge {{{u}, {v}}}"
                );
                self.edge_count -= 1;
                false
            }
        };
        self.patch_one(u, v, insert);
        self.patch_one(v, u, insert);
    }

    /// Adds or drops `b` in `a`'s copy-on-write list, copying the base
    /// slice on first touch.
    fn patch_one(&mut self, a: VertexId, b: VertexId, insert: bool) {
        let base = self.base;
        let list = self.adj.entry(a.0).or_insert_with(|| base.neighbors(a).to_vec());
        match list.binary_search(&b) {
            Ok(pos) if !insert => {
                list.remove(pos);
            }
            Err(pos) if insert => {
                list.insert(pos, b);
            }
            // Already in the target state: only reachable on invalid input,
            // which `flip`'s debug assertions reject.
            _ => {}
        }
    }

    /// Materializes the patched graph as a standalone snapshot in one
    /// linear pass over the (overlaid) adjacency lists — the single CSR
    /// materialization a batched commit pays.
    pub fn materialize(&self) -> LabeledGraph {
        let n = self.base.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.edge_count);
        offsets.push(0usize);
        for v in self.base.vertices() {
            neighbors.extend_from_slice(self.neighbor_slice(v));
            offsets.push(neighbors.len());
        }
        let (labels, interner, names) = self.base.clone_meta();
        LabeledGraph::from_parts(offsets, neighbors, labels, interner, names)
    }
}

impl GraphRead for OverlayGraph<'_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.base.vertex_count()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        self.base.label(v)
    }

    #[inline]
    fn label_count(&self) -> usize {
        self.base.label_count()
    }

    fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.base.vertices()
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbor_slice(v).iter().copied()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.neighbor_slice(v).len()
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search the endpoint with the shorter current list.
        let (su, sv) = (self.neighbor_slice(u), self.neighbor_slice(v));
        if su.len() <= sv.len() {
            su.binary_search(&v).is_ok()
        } else {
            sv.binary_search(&u).is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::apply_change;
    use crate::GraphBuilder;
    use rand::{Rng, SeedableRng};

    fn random_labeled(rng: &mut impl Rng, n: usize, labels: usize, p: f64) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<VertexId> =
            (0..n).map(|i| b.add_vertex(&format!("G{}", i % labels))).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    b.add_edge(vs[i], vs[j]);
                }
            }
        }
        b.build()
    }

    fn assert_reads_match(overlay: &OverlayGraph<'_>, snapshot: &LabeledGraph, context: &str) {
        assert_eq!(GraphRead::edge_count(overlay), snapshot.edge_count(), "|E| {context}");
        for v in snapshot.vertices() {
            assert_eq!(
                overlay.neighbors_iter(v).collect::<Vec<_>>(),
                snapshot.neighbors(v),
                "adjacency of {v} {context}"
            );
            assert_eq!(GraphRead::degree(overlay, v), snapshot.degree(v), "degree of {v} {context}");
            for u in snapshot.vertices() {
                if u != v {
                    assert_eq!(
                        GraphRead::has_edge(overlay, v, u),
                        snapshot.has_edge(v, u),
                        "has_edge({v}, {u}) {context}"
                    );
                }
            }
        }
    }

    #[test]
    fn fresh_overlay_mirrors_base() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let g = random_labeled(&mut rng, 9, 2, 0.4);
        let overlay = OverlayGraph::new(&g);
        assert_reads_match(&overlay, &g, "(fresh)");
        assert_eq!(overlay.touched_vertices(), 0);
        assert_eq!(GraphRead::label_count(&overlay), 2);
    }

    #[test]
    fn random_flip_sequences_match_spliced_snapshots() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..10 {
            let g = random_labeled(&mut rng, 10, 3, 0.35);
            let mut overlay = OverlayGraph::new(&g);
            let mut snapshot = g.clone();
            for step in 0..30 {
                let u = VertexId(rng.gen_range(0..10));
                let v = VertexId(rng.gen_range(0..10));
                if u == v {
                    continue;
                }
                let op = if snapshot.has_edge(u, v) { EdgeOp::Remove } else { EdgeOp::Insert };
                let change = EdgeChange { u, v, op };
                overlay.flip(&change);
                snapshot = apply_change(&snapshot, &change);
                assert_reads_match(&overlay, &snapshot, &format!("(trial {trial}, step {step})"));
            }
            // One linear pass produces the final snapshot bit-identically.
            let materialized = overlay.materialize();
            assert_reads_match(&overlay, &materialized, &format!("(trial {trial}, materialized)"));
            assert_eq!(materialized.vertex_count(), snapshot.vertex_count());
        }
    }

    #[test]
    fn cancelled_flips_restore_base_reads() {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("A");
        let y = b.add_vertex("A");
        let z = b.add_vertex("B");
        b.add_edge(x, y);
        let g = b.build();
        let mut overlay = OverlayGraph::new(&g);
        overlay.flip(&EdgeChange { u: x, v: z, op: EdgeOp::Insert });
        overlay.flip(&EdgeChange { u: z, v: x, op: EdgeOp::Remove });
        overlay.flip(&EdgeChange { u: x, v: y, op: EdgeOp::Remove });
        overlay.flip(&EdgeChange { u: y, v: x, op: EdgeOp::Insert });
        assert_reads_match(&overlay, &g, "(cancelled)");
        assert!(overlay.touched_vertices() > 0, "COW lists persist, reads still match");
    }

    #[test]
    fn label_partitioned_iteration() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c0 = b.add_vertex("B");
        b.add_edge(a0, c0);
        let g = b.build();
        let mut overlay = OverlayGraph::new(&g);
        overlay.flip(&EdgeChange { u: a0, v: a1, op: EdgeOp::Insert });
        assert_eq!(overlay.same_label_neighbors_iter(a0).collect::<Vec<_>>(), vec![a1]);
        assert_eq!(overlay.cross_label_neighbors_iter(a0).collect::<Vec<_>>(), vec![c0]);
    }
}
