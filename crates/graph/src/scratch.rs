//! Dense epoch-stamped scratch for wedge counting and neighborhood marking.
//!
//! Every butterfly kernel in the workspace has the same inner shape: walk
//! the 2-hop neighborhood of a vertex and count, per endpoint `w`, how many
//! paths arrived there (or merely remember that `w` was seen). The seed
//! implementation kept those counters in an `FxHashMap<u32, u32>` — one
//! hash + probe per wedge, a clear per start vertex, and allocator traffic
//! proportional to the neighborhood. [`WedgeScratch`] replaces the map with
//! flat arrays indexed by [`VertexId`]:
//!
//! * `count[v]` — the counter, valid only while `stamp[v]` equals the
//!   current epoch, so *logical* clearing is one integer increment
//!   ([`WedgeScratch::reset_for`]) with no pass over the arrays;
//! * `touched` — the distinct vertices stamped this epoch, for kernels that
//!   need a second pass over the non-zero counters.
//!
//! One scratch is reused across every start vertex of a traversal (and, via
//! [`WedgeScratch::with_thread_local`], across calls that cannot thread a
//! `&mut` through their signature). Cache behavior is the point: the hot
//! loop is two dependent loads and a store into dense arrays — no hashing,
//! no probing, no per-vertex allocation.
//!
//! ## Counter width
//!
//! Counters stay `u32`, matching the seed's hash-map values: a counter for
//! `w` counts 2-hop paths from one start vertex, which is bounded by
//! `|N(v) ∩ N(w)| ≤ n − 1 < 2³²` on any simple graph addressed by `u32`
//! vertex ids — the width cannot overflow in the butterfly kernels. The
//! policy for other callers is **saturate at `u32::MAX`** in release builds
//! and panic via `debug_assert` in debug builds (see
//! [`WedgeScratch::bump`]), pinned by the boundary tests below.

use crate::graph::VertexId;

/// Reusable dense wedge-counting scratch (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct WedgeScratch {
    /// Current epoch; `count[v]` is live iff `stamp[v] == epoch`.
    epoch: u32,
    stamp: Vec<u32>,
    count: Vec<u32>,
    /// Distinct vertex ids stamped this epoch.
    touched: Vec<u32>,
}

impl WedgeScratch {
    /// A scratch sized for vertex ids `< capacity`.
    pub fn new(capacity: usize) -> Self {
        WedgeScratch {
            epoch: 1,
            stamp: vec![0; capacity],
            count: vec![0; capacity],
            touched: Vec::new(),
        }
    }

    /// Allocated capacities above `max(SHRINK_FLOOR, SHRINK_FACTOR ×
    /// requested)` are released by [`WedgeScratch::reset_for`]. The floor
    /// keeps small-graph churn free (a few KiB is noise); the factor gives
    /// hysteresis so alternating between similar sizes never reallocates.
    /// The policy exists for long-lived pool workers: their thread-local
    /// scratch used to stay sized for the **largest graph ever touched**,
    /// pinning O(max |V|) per worker across unrelated graphs forever.
    const SHRINK_FLOOR: usize = 4096;
    const SHRINK_FACTOR: usize = 4;

    /// The largest allocation [`WedgeScratch::reset_for`] retains for a
    /// request of `capacity` (the bound the shrink test pins).
    pub fn retained_bound(capacity: usize) -> usize {
        Self::SHRINK_FLOOR.max(capacity.saturating_mul(Self::SHRINK_FACTOR))
    }

    /// The currently allocated capacity (vertex ids the scratch can hold
    /// without growing).
    pub fn allocated(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a fresh epoch (all counters logically zero, O(1)) and grows
    /// the arrays to cover vertex ids `< capacity` if needed. Oversized
    /// arrays — beyond [`WedgeScratch::retained_bound`] — are shrunk back
    /// to `capacity` and their memory returned to the allocator.
    pub fn reset_for(&mut self, capacity: usize) {
        if self.stamp.len() < capacity {
            self.stamp.resize(capacity, 0);
            self.count.resize(capacity, 0);
        } else if self.stamp.len() > Self::retained_bound(capacity) {
            // Fresh zeroed arrays, not truncate-in-place: `shrink_to_fit`
            // on a truncated Vec may copy the retained prefix, and zeroed
            // stamps can never equal a live epoch (epochs start at 1).
            self.stamp = vec![0; capacity];
            self.count = vec![0; capacity];
        }
        self.touched.clear();
        // On (astronomically unlikely) epoch wrap, physically clear the
        // stamps once so stale epoch-0 stamps can never read as live.
        match self.epoch.checked_add(1) {
            Some(next) => self.epoch = next,
            None => {
                self.stamp.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// The live counter slot for `v`, stamping it (and recording it in
    /// `touched`) on first access this epoch.
    #[inline]
    fn slot(&mut self, v: VertexId) -> &mut u32 {
        let i = v.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.count[i] = 0;
            self.touched.push(v.0);
        }
        &mut self.count[i]
    }

    /// Increments `v`'s counter and returns the new value. Saturates at
    /// `u32::MAX` (debug builds assert the boundary is never reached; the
    /// butterfly kernels cannot reach it — see the module docs).
    #[inline]
    pub fn bump(&mut self, v: VertexId) -> u32 {
        let c = self.slot(v);
        debug_assert!(*c < u32::MAX, "wedge counter overflow at {v}");
        *c = c.saturating_add(1);
        *c
    }

    /// Marks `v` as a member of this epoch's set without counting.
    #[inline]
    pub fn mark(&mut self, v: VertexId) {
        let _ = self.slot(v);
    }

    /// Whether `v` was bumped or marked this epoch.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    /// `v`'s counter this epoch (0 if untouched).
    #[inline]
    pub fn count(&self, v: VertexId) -> u32 {
        if self.contains(v) {
            self.count[v.index()]
        } else {
            0
        }
    }

    /// The distinct vertices bumped or marked this epoch, in first-touch
    /// order.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Runs `f` with a thread-local scratch, for call sites that cannot
    /// thread a `&mut WedgeScratch` through their signature (e.g. the
    /// single-shot convenience wrappers around the butterfly kernels).
    /// Non-reentrant: `f` must not call back into `with_thread_local`.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut WedgeScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<WedgeScratch> =
                std::cell::RefCell::new(WedgeScratch::default());
        }
        SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut s = WedgeScratch::new(4);
        s.reset_for(4);
        assert_eq!(s.bump(VertexId(2)), 1);
        assert_eq!(s.bump(VertexId(2)), 2);
        assert_eq!(s.bump(VertexId(0)), 1);
        assert_eq!(s.count(VertexId(2)), 2);
        assert_eq!(s.count(VertexId(1)), 0);
        assert!(s.contains(VertexId(0)));
        assert_eq!(s.touched(), &[2, 0]);
        s.reset_for(4);
        assert_eq!(s.count(VertexId(2)), 0, "reset is a logical clear");
        assert!(!s.contains(VertexId(0)));
        assert!(s.touched().is_empty());
    }

    #[test]
    fn mark_is_membership_only() {
        let mut s = WedgeScratch::new(3);
        s.reset_for(3);
        s.mark(VertexId(1));
        assert!(s.contains(VertexId(1)));
        assert_eq!(s.count(VertexId(1)), 0);
        assert_eq!(s.bump(VertexId(1)), 1, "bump after mark starts from 0");
        assert_eq!(s.touched(), &[1]);
    }

    #[test]
    fn reset_for_grows_capacity() {
        let mut s = WedgeScratch::new(2);
        s.reset_for(2);
        s.bump(VertexId(1));
        s.reset_for(8);
        assert_eq!(s.bump(VertexId(7)), 1);
        assert_eq!(s.count(VertexId(1)), 0);
    }

    /// The high-water fix: a worker that once touched a huge graph must not
    /// keep that allocation across later small-graph work. The retained
    /// bound is `max(4096, 4 × capacity)` — within it nothing reallocates
    /// (hysteresis), beyond it the arrays drop to the requested size.
    #[test]
    fn reset_for_shrinks_past_the_retained_bound() {
        let mut s = WedgeScratch::new(0);
        s.reset_for(1 << 20); // a million-vertex graph passes through
        s.bump(VertexId(999_999));
        assert_eq!(s.allocated(), 1 << 20);

        // Back to a small graph: the oversized arrays must go.
        s.reset_for(100);
        assert_eq!(s.allocated(), 100);
        assert!(s.allocated() <= WedgeScratch::retained_bound(100));
        assert!(!s.contains(VertexId(99)), "shrunk scratch starts an empty epoch");
        assert_eq!(s.bump(VertexId(99)), 1, "and stays fully usable");

        // Hysteresis: capacities within the bound never reallocate…
        s.reset_for(4096);
        assert_eq!(s.allocated(), 4096);
        s.reset_for(1100);
        assert_eq!(s.allocated(), 4096, "within 4×1100 ≥ 4096: retained");
        // …and the floor keeps tiny graphs from churning at all.
        s.reset_for(1);
        assert_eq!(s.allocated(), 4096, "at the floor: retained");
        s.reset_for(4097);
        assert_eq!(s.allocated(), 4097);
        s.reset_for(1);
        assert_eq!(s.allocated(), 1, "just past the floor: shrunk to the request");
    }

    #[test]
    fn epoch_wrap_clears_stale_stamps() {
        let mut s = WedgeScratch::new(2);
        s.reset_for(2);
        s.bump(VertexId(0));
        s.epoch = u32::MAX; // fast-forward to the wrap boundary
        s.stamp[1] = 1; // a stale stamp that must not read as live post-wrap
        s.reset_for(2);
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(VertexId(0)));
        assert!(!s.contains(VertexId(1)));
        assert_eq!(s.bump(VertexId(1)), 1);
    }

    /// The counter-width policy at its boundary: the step *to* `u32::MAX`
    /// is legal in every build profile.
    #[test]
    fn bump_reaches_u32_max() {
        let mut s = WedgeScratch::new(1);
        s.reset_for(1);
        s.stamp[0] = s.epoch;
        s.count[0] = u32::MAX - 1;
        s.touched.push(0);
        assert_eq!(s.bump(VertexId(0)), u32::MAX);
    }

    /// Past the boundary, debug builds panic…
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "wedge counter overflow")]
    fn bump_past_u32_max_panics_in_debug() {
        let mut s = WedgeScratch::new(1);
        s.reset_for(1);
        s.stamp[0] = s.epoch;
        s.count[0] = u32::MAX;
        s.touched.push(0);
        s.bump(VertexId(0));
    }

    /// …and release builds saturate (runs under `cargo test --release`).
    #[cfg(not(debug_assertions))]
    #[test]
    fn bump_past_u32_max_saturates_in_release() {
        let mut s = WedgeScratch::new(1);
        s.reset_for(1);
        s.stamp[0] = s.epoch;
        s.count[0] = u32::MAX;
        s.touched.push(0);
        assert_eq!(s.bump(VertexId(0)), u32::MAX);
    }

    #[test]
    fn thread_local_scratch_is_reusable() {
        let a = WedgeScratch::with_thread_local(|s| {
            s.reset_for(4);
            s.bump(VertexId(3));
            s.bump(VertexId(3))
        });
        assert_eq!(a, 2);
        let b = WedgeScratch::with_thread_local(|s| {
            s.reset_for(4);
            s.count(VertexId(3))
        });
        assert_eq!(b, 0, "each use starts a fresh epoch");
    }
}
