//! The one JSON string-escaping helper for the whole workspace.
//!
//! The workspace builds without serde (see `vendor/README.md`), so every
//! JSON emitter — the service's one-line responses, the experiment tables —
//! is hand-rolled. Strings are the only part of that with sharp edges:
//! vertex and graph names come straight from user input (the line protocol
//! splits on whitespace only, so `ali"ce` is a legal vertex name) and must
//! not corrupt the surrounding document. Escaping lives here, once, in the
//! crate everything already depends on.

/// Renders `s` as a JSON string literal (including the surrounding quotes)
/// with the escapes required by RFC 8259: `"`, `\`, and all control
/// characters below U+0020 (`\n`/`\r`/`\t` short forms, `\u00XX` for the
/// rest).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

/// Appends the JSON string literal form of `s` (quotes included) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(json_string("alice"), "\"alice\"");
        assert_eq!(json_string(""), "\"\"");
        assert_eq!(json_string("héllo ✓"), "\"héllo ✓\"");
    }

    #[test]
    fn hostile_names_escape() {
        assert_eq!(json_string("ali\"ce"), "\"ali\\\"ce\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("a\nb\rc\td"), "\"a\\nb\\rc\\td\"");
        assert_eq!(json_string("nul\u{0}bell\u{7}"), "\"nul\\u0000bell\\u0007\"");
    }

    #[test]
    fn every_control_character_is_escaped() {
        for c in (0u32..0x20).filter_map(char::from_u32) {
            let rendered = json_string(&c.to_string());
            assert!(
                rendered.starts_with("\"\\"),
                "control {:#x} must be escaped, got {rendered}",
                c as u32
            );
        }
    }
}
