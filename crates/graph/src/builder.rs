//! Incremental construction of [`LabeledGraph`]s.

use crate::graph::{LabeledGraph, VertexId};
use crate::labels::{Label, LabelInterner};

/// Builds a [`LabeledGraph`] incrementally, deduplicating edges and
/// rejecting self-loops.
#[derive(Default)]
pub struct GraphBuilder {
    interner: LabelInterner,
    labels: Vec<Label>,
    names: Vec<String>,
    any_named: bool,
    adjacency: Vec<Vec<VertexId>>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an unnamed vertex with label `label_name`, returning its id.
    pub fn add_vertex(&mut self, label_name: &str) -> VertexId {
        self.push_vertex(label_name, None)
    }

    /// Adds a named vertex (case-study graphs use display names).
    pub fn add_named_vertex(&mut self, name: &str, label_name: &str) -> VertexId {
        self.push_vertex(label_name, Some(name))
    }

    /// Adds a vertex with an already-interned label.
    pub fn add_vertex_with_label(&mut self, label: Label) -> VertexId {
        assert!(
            label.index() < self.interner.len(),
            "label {label} was not interned via this builder"
        );
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.names.push(String::new());
        self.adjacency.push(Vec::new());
        id
    }

    fn push_vertex(&mut self, label_name: &str, name: Option<&str>) -> VertexId {
        let label = self.interner.intern(label_name);
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        match name {
            Some(n) => {
                self.any_named = true;
                self.names.push(n.to_owned());
            }
            None => self.names.push(String::new()),
        }
        self.adjacency.push(id_placeholder());
        id
    }

    /// Interns a label without adding a vertex (useful to fix label ids
    /// before bulk vertex insertion).
    pub fn intern_label(&mut self, label_name: &str) -> Label {
        self.interner.intern(label_name)
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored; duplicate
    /// edges are deduplicated at [`build`](Self::build) time. Returns `true`
    /// unless the edge was a self-loop.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(
            u.index() < self.labels.len() && v.index() < self.labels.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return false;
        }
        self.adjacency[u.index()].push(v);
        self.adjacency[v.index()].push(u);
        true
    }

    /// Finalizes into a CSR [`LabeledGraph`]: sorts adjacency lists,
    /// removes duplicates, and freezes the label interner.
    pub fn build(mut self) -> LabeledGraph {
        let n = self.labels.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for list in &mut self.adjacency {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        let names = if self.any_named {
            Some(
                self.names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| {
                        if n.is_empty() {
                            format!("v{i}")
                        } else {
                            n.clone()
                        }
                    })
                    .collect(),
            )
        } else {
            None
        };
        LabeledGraph::from_parts(offsets, neighbors, self.labels, self.interner, names)
    }
}

fn id_placeholder() -> Vec<VertexId> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges_and_ignores_self_loops() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("A");
        let v = b.add_vertex("B");
        assert!(b.add_edge(u, v));
        assert!(b.add_edge(v, u));
        assert!(!b.add_edge(u, u));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(u), 1);
    }

    #[test]
    fn named_vertices_resolve() {
        let mut b = GraphBuilder::new();
        let toronto = b.add_named_vertex("Toronto", "Canada");
        let frankfurt = b.add_named_vertex("Frankfurt", "Germany");
        b.add_edge(toronto, frankfurt);
        let g = b.build();
        assert_eq!(g.vertex_by_name("Toronto"), Some(toronto));
        assert_eq!(g.vertex_name(frankfurt), "Frankfurt");
        assert_eq!(g.vertex_by_name("Berlin"), None);
    }

    #[test]
    fn unnamed_graph_falls_back_to_ids() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("A");
        let g = b.build();
        assert_eq!(g.vertex_name(v), "v0");
        assert_eq!(g.vertex_by_name("v0"), None, "unnamed graphs have no name table");
    }

    #[test]
    fn adjacency_lists_sorted() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex("A")).collect();
        b.add_edge(vs[0], vs[4]);
        b.add_edge(vs[0], vs[2]);
        b.add_edge(vs[0], vs[1]);
        b.add_edge(vs[0], vs[3]);
        let g = b.build();
        let ns: Vec<u32> = g.neighbors(vs[0]).iter().map(|v| v.0).collect();
        assert_eq!(ns, vec![1, 2, 3, 4]);
    }

    #[test]
    fn interned_label_bulk_insertion() {
        let mut b = GraphBuilder::new();
        let a = b.intern_label("A");
        let v0 = b.add_vertex_with_label(a);
        let v1 = b.add_vertex_with_label(a);
        b.add_edge(v0, v1);
        let g = b.build();
        assert_eq!(g.label(v0), g.label(v1));
        assert_eq!(g.label_count(), 1);
    }
}
