//! Disjoint-set (union-find) with path halving and union by size.
//!
//! Section 7 of the paper notes that the cross-group connectivity check of
//! the multi-labeled BCC model "can be further optimized in O(m) time using
//! the union-find algorithm"; this is that structure. It is also used by the
//! dataset generators to guarantee connected planted communities.

/// Disjoint-set forest over `0..len` with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`, halving the path on the way.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let root = self.find(x);
        self.size[root as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(3), 1);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.set_size(2), 3);
    }

    #[test]
    fn chain_unions_collapse_to_one_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n as u32 - 1));
        assert_eq!(uf.set_size(50), n);
    }
}
