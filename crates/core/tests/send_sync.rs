//! Thread-safety audit for the serving layer (`bcc-service`).
//!
//! The worker pool shares one immutable snapshot — `LabeledGraph` +
//! `BccIndex` behind `Arc` — across threads and moves searchers, queries,
//! and results between them. Everything it touches must therefore be
//! `Send + Sync` (the searchers are `Copy` configuration structs and the
//! graph/index are plain owned buffers; this test pins that down so an
//! `Rc`/`Cell` can never silently regress it).

use bcc_core::{
    BccIndex, BccParams, BccQuery, BccResult, L2pBcc, LpBcc, MbccParams, MbccQuery,
    MultiLabelBcc, OnlineBcc, SearchError, SearchStats,
};
use bcc_graph::{GraphBuilder, LabeledGraph};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_snapshot_types_are_send_sync() {
    assert_send_sync::<LabeledGraph>();
    assert_send_sync::<BccIndex>();
}

#[test]
fn searcher_and_model_types_are_send_sync() {
    assert_send_sync::<OnlineBcc>();
    assert_send_sync::<LpBcc>();
    assert_send_sync::<L2pBcc>();
    assert_send_sync::<MultiLabelBcc>();
    assert_send_sync::<BccQuery>();
    assert_send_sync::<BccParams>();
    assert_send_sync::<MbccQuery>();
    assert_send_sync::<MbccParams>();
    assert_send_sync::<BccResult>();
    assert_send_sync::<SearchStats>();
    assert_send_sync::<SearchError>();
}

/// The sharing pattern the pool relies on, in miniature: one graph + index
/// behind `Arc`, many threads searching concurrently, results sent back.
#[test]
fn concurrent_searches_on_one_snapshot_agree() {
    let mut b = GraphBuilder::new();
    let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
    let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
    for grp in [&l, &r] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(grp[i], grp[j]);
            }
        }
    }
    for &x in &l[..2] {
        for &y in &r[..2] {
            b.add_edge(x, y);
        }
    }
    let graph = b.build();
    let index = BccIndex::build(&graph);
    let snapshot = std::sync::Arc::new((graph, index));

    let query = BccQuery::pair(l[0], r[0]);
    let params = BccParams::new(3, 3, 1);
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let snapshot = std::sync::Arc::clone(&snapshot);
            std::thread::spawn(move || {
                let (graph, index) = &*snapshot;
                let result = if i % 2 == 0 {
                    LpBcc::default().search(graph, &query, &params).unwrap()
                } else {
                    L2pBcc::default().search(graph, index, &query, &params).unwrap()
                };
                result.community
            })
        })
        .collect();
    let communities: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        communities.windows(2).all(|w| w[0] == w[1]),
        "every thread sees the same snapshot and computes the same answer"
    );
}
