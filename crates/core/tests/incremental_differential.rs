//! Differential correctness of incremental BCindex maintenance: after any
//! randomized sequence of edge inserts/deletes, the patched index must be
//! bit-identical to `BccIndex::build` on the final snapshot — and at every
//! intermediate snapshot along the way.

use bcc_core::{patch_index_edge, BccIndex};
use bcc_graph::{apply_change, EdgeChange, EdgeOp, GraphBuilder, GraphDelta, LabeledGraph, VertexId};
use rand::{Rng, SeedableRng};

fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
    assert_eq!(patched.label_coreness, rebuilt.label_coreness, "δ diverged {context}");
    assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree, "χ diverged {context}");
    assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max diverged {context}");
    assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max diverged {context}");
}

/// A random labeled graph: `n` vertices over `labels` groups, each pair an
/// edge with probability `p`.
fn random_graph(rng: &mut impl Rng, n: usize, labels: usize, p: f64) -> LabeledGraph {
    let names: Vec<String> = (0..labels).map(|i| format!("G{i}")).collect();
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|_| b.add_vertex(&names[rng.gen_range(0..labels)]))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }
    b.build()
}

/// Picks a random valid flip for `graph`: a present edge to remove or an
/// absent pair to insert.
fn random_flip(rng: &mut impl Rng, graph: &LabeledGraph) -> Option<EdgeChange> {
    let n = graph.vertex_count() as u32;
    if n < 2 {
        return None;
    }
    for _ in 0..64 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        let op = if graph.has_edge(u, v) { EdgeOp::Remove } else { EdgeOp::Insert };
        return Some(EdgeChange { u, v, op });
    }
    None
}

/// The core differential: walk a random flip sequence, patching one index
/// and rebuilding a reference at every step.
fn run_sequence(seed: u64, n: usize, labels: usize, p: f64, steps: usize) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut graph = random_graph(&mut rng, n, labels, p);
    let mut index = BccIndex::build(&graph);
    for step in 0..steps {
        let Some(change) = random_flip(&mut rng, &graph) else { break };
        let after = apply_change(&graph, &change);
        patch_index_edge(&mut index, &graph, &after, &change);
        assert_index_eq(
            &index,
            &BccIndex::build(&after),
            &format!(
                "(seed {seed}, step {step}, {:?} {}-{})",
                change.op, change.u, change.v
            ),
        );
        graph = after;
    }
}

#[test]
fn two_label_random_sequences() {
    for seed in 0..12 {
        run_sequence(seed, 14, 2, 0.25, 20);
    }
}

#[test]
fn three_label_random_sequences() {
    for seed in 100..110 {
        run_sequence(seed, 12, 3, 0.3, 16);
    }
}

#[test]
fn dense_two_label_sequences() {
    // Dense graphs stress the cascades: high coreness, deep peeling.
    for seed in 200..206 {
        run_sequence(seed, 10, 2, 0.6, 24);
    }
}

#[test]
fn sparse_four_label_sequences() {
    for seed in 300..306 {
        run_sequence(seed, 16, 4, 0.15, 16);
    }
}

#[test]
fn staged_delta_replay_matches_batch_apply_and_rebuild() {
    // The registry's commit path: stage a batch, replay it change by change
    // against the patched index, and also apply it in one splice. All three
    // views of the final state must agree.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD1FF);
    for trial in 0..8 {
        let base = random_graph(&mut rng, 12, 2 + (trial % 2), 0.3);
        let mut delta = GraphDelta::new();
        let mut stepped = base.clone();
        let mut index = BccIndex::build(&base);
        for _ in 0..10 {
            let Some(change) = random_flip(&mut rng, &stepped) else { break };
            let staged = match change.op {
                EdgeOp::Insert => delta.stage_insert(&base, change.u, change.v),
                EdgeOp::Remove => delta.stage_remove(&base, change.u, change.v),
            };
            // Staging validates against base+overlay, which equals `stepped`.
            staged.expect("flip chosen valid for the stepped snapshot");
            let after = apply_change(&stepped, &change);
            patch_index_edge(&mut index, &stepped, &after, &change);
            stepped = after;
        }
        let batch = delta.apply(&base);
        assert_eq!(batch.edge_count(), stepped.edge_count(), "trial {trial}");
        for v in batch.vertices() {
            assert_eq!(batch.neighbors(v), stepped.neighbors(v), "trial {trial}, {v}");
        }
        assert_index_eq(&index, &BccIndex::build(&batch), &format!("(trial {trial} final)"));
    }
}
