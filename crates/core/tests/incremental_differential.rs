//! Differential correctness of incremental BCindex maintenance: after any
//! randomized sequence of edge inserts/deletes, the patched index must be
//! bit-identical to `BccIndex::build` on the final snapshot — and at every
//! intermediate snapshot along the way. The batched overlay path
//! (`patch_index_batch`) is additionally pinned against the per-edge replay
//! it replaces, at batch sizes 1 / 16 / 256 / 4096: identical index bits
//! *and* identical dirty sets.

use bcc_core::{affected_neighborhood, patch_index_batch, patch_index_edge, BccIndex};
use bcc_graph::{
    apply_change, EdgeChange, EdgeOp, GraphBuilder, GraphDelta, LabeledGraph, OverlayGraph,
    VertexId,
};
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

fn assert_index_eq(patched: &BccIndex, rebuilt: &BccIndex, context: &str) {
    assert_eq!(patched.label_coreness, rebuilt.label_coreness, "δ diverged {context}");
    assert_eq!(patched.butterfly_degree, rebuilt.butterfly_degree, "χ diverged {context}");
    assert_eq!(patched.delta_max, rebuilt.delta_max, "δ_max diverged {context}");
    assert_eq!(patched.chi_max, rebuilt.chi_max, "χ_max diverged {context}");
}

/// A random labeled graph: `n` vertices over `labels` groups, each pair an
/// edge with probability `p`.
fn random_graph(rng: &mut impl Rng, n: usize, labels: usize, p: f64) -> LabeledGraph {
    let names: Vec<String> = (0..labels).map(|i| format!("G{i}")).collect();
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..n)
        .map(|_| b.add_vertex(&names[rng.gen_range(0..labels)]))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }
    b.build()
}

/// Picks a random valid flip for `graph`: a present edge to remove or an
/// absent pair to insert.
fn random_flip(rng: &mut impl Rng, graph: &LabeledGraph) -> Option<EdgeChange> {
    let n = graph.vertex_count() as u32;
    if n < 2 {
        return None;
    }
    for _ in 0..64 {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        let op = if graph.has_edge(u, v) { EdgeOp::Remove } else { EdgeOp::Insert };
        return Some(EdgeChange { u, v, op });
    }
    None
}

/// The core differential: walk a random flip sequence, patching one index
/// and rebuilding a reference at every step.
fn run_sequence(seed: u64, n: usize, labels: usize, p: f64, steps: usize) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut graph = random_graph(&mut rng, n, labels, p);
    let mut index = BccIndex::build(&graph);
    for step in 0..steps {
        let Some(change) = random_flip(&mut rng, &graph) else { break };
        let after = apply_change(&graph, &change);
        patch_index_edge(&mut index, &graph, &after, &change);
        assert_index_eq(
            &index,
            &BccIndex::build(&after),
            &format!(
                "(seed {seed}, step {step}, {:?} {}-{})",
                change.op, change.u, change.v
            ),
        );
        graph = after;
    }
}

#[test]
fn two_label_random_sequences() {
    for seed in 0..12 {
        run_sequence(seed, 14, 2, 0.25, 20);
    }
}

#[test]
fn three_label_random_sequences() {
    for seed in 100..110 {
        run_sequence(seed, 12, 3, 0.3, 16);
    }
}

#[test]
fn dense_two_label_sequences() {
    // Dense graphs stress the cascades: high coreness, deep peeling.
    for seed in 200..206 {
        run_sequence(seed, 10, 2, 0.6, 24);
    }
}

#[test]
fn sparse_four_label_sequences() {
    for seed in 300..306 {
        run_sequence(seed, 16, 4, 0.15, 16);
    }
}

/// Stages exactly `size` sequentially-valid random flips against `base`.
fn random_batch(rng: &mut impl Rng, base: &LabeledGraph, size: usize) -> GraphDelta {
    let n = base.vertex_count() as u32;
    assert!(n >= 2, "batch generation needs at least two vertices");
    let mut delta = GraphDelta::new();
    while delta.len() < size {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        if delta.has_edge(base, u, v) {
            delta.stage_remove(base, u, v).expect("staged-present edge removes cleanly");
        } else {
            delta.stage_insert(base, u, v).expect("staged-absent edge inserts cleanly");
        }
    }
    delta
}

/// The batched-commit differential: one `patch_index_batch` over the overlay
/// versus the per-edge splice-and-patch replay it replaces versus a cold
/// rebuild. Indices must be bit-identical and the batch dirty set must equal
/// the union of the per-edge affected neighborhoods and entry moves.
fn run_batched(seed: u64, n: usize, labels: usize, p: f64, batch: usize) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let base = random_graph(&mut rng, n, labels, p);
    let delta = random_batch(&mut rng, &base, batch);

    // Per-edge replay twin: B CSR splices, B index patches, dirty union.
    let mut per_edge = BccIndex::build(&base);
    let mut dirty_ref: FxHashSet<u32> = FxHashSet::default();
    let mut stepped = base.clone();
    for change in delta.changes() {
        let next = apply_change(&stepped, change);
        for w in affected_neighborhood(&stepped, &next, change) {
            dirty_ref.insert(w.0);
        }
        let report = patch_index_edge(&mut per_edge, &stepped, &next, change);
        for w in report.coreness_changed.iter().chain(&report.chi_changed) {
            dirty_ref.insert(w.0);
        }
        stepped = next;
    }

    // Batched path: zero intermediate snapshots, one patch call.
    let mut batched = BccIndex::build(&base);
    let report = patch_index_batch(&mut batched, &base, delta.changes());
    assert_eq!(report.applied, batch, "(seed {seed}, B={batch})");
    assert_eq!(report.dirty, dirty_ref, "dirty set diverged (seed {seed}, B={batch})");

    let context = format!("(seed {seed}, B={batch})");
    assert_index_eq(&batched, &per_edge, &format!("batch vs per-edge {context}"));

    // One materialization per commit: the delta merge pass and the overlay
    // merge pass agree with the per-edge stepped snapshot exactly.
    let final_graph = delta.apply(&base);
    let overlay_graph = OverlayGraph::from_changes(&base, delta.changes()).materialize();
    assert_eq!(final_graph.edge_count(), stepped.edge_count(), "{context}");
    for v in final_graph.vertices() {
        assert_eq!(final_graph.neighbors(v), stepped.neighbors(v), "{context} {v}");
        assert_eq!(overlay_graph.neighbors(v), stepped.neighbors(v), "{context} {v}");
    }
    assert_index_eq(&batched, &BccIndex::build(&final_graph), &format!("batch vs rebuild {context}"));
}

#[test]
fn batched_patching_matches_per_edge_replay_small_batches() {
    for (seed, batch) in [(40u64, 1usize), (41, 16), (42, 16)] {
        run_batched(seed, 14, 2, 0.3, batch);
        run_batched(seed ^ 0xA5, 12, 3, 0.25, batch);
    }
}

#[test]
fn batched_patching_matches_per_edge_replay_256() {
    // 256-edge batches need room: toggling pairs of a 48-vertex graph.
    run_batched(50, 48, 2, 0.15, 256);
    run_batched(51, 48, 3, 0.12, 256);
}

/// Every prefix of a batch, patched through `patch_index_batch` (flat
/// scratch kernels over the mid-batch overlay), reproduces the **seed**
/// implementation — `BccIndex::build_reference`, the retained hash-kernel
/// build — bit for bit on the materialized prefix snapshot. This pins the
/// whole rewritten offline path (flat wedge kernels + overlay reads) to the
/// seed semantics at every intermediate state, not just batch ends.
#[test]
fn batch_prefixes_match_the_seed_reference_at_every_step() {
    for (seed, n, labels, p, batch) in
        [(70u64, 14usize, 2usize, 0.3, 12usize), (71, 12, 3, 0.3, 12), (72, 16, 4, 0.2, 10)]
    {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let base = random_graph(&mut rng, n, labels, p);
        let delta = random_batch(&mut rng, &base, batch);
        let changes = delta.changes();
        let built = BccIndex::build(&base);
        assert_index_eq(&built, &BccIndex::build_reference(&base), "flat vs seed build");
        for k in 0..=changes.len() {
            let mut patched = built.clone();
            patch_index_batch(&mut patched, &base, &changes[..k]);
            let snapshot = OverlayGraph::from_changes(&base, &changes[..k]).materialize();
            assert_index_eq(
                &patched,
                &BccIndex::build_reference(&snapshot),
                &format!("(seed {seed}, prefix {k}/{batch})"),
            );
        }
    }
}

#[test]
fn batched_patching_matches_per_edge_replay_4096() {
    // A sparse 1024-vertex graph keeps per-vertex degrees (and the O(d²)
    // χ work) small while offering >500k togglable pairs, so the per-edge
    // twin's 4096 CSR splices stay affordable in debug builds.
    run_batched(60, 1024, 2, 0.004, 4096);
}

#[test]
fn staged_delta_replay_matches_batch_apply_and_rebuild() {
    // The registry's commit path: stage a batch, replay it change by change
    // against the patched index, and also apply it in one splice. All three
    // views of the final state must agree.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD1FF);
    for trial in 0..8 {
        let base = random_graph(&mut rng, 12, 2 + (trial % 2), 0.3);
        let mut delta = GraphDelta::new();
        let mut stepped = base.clone();
        let mut index = BccIndex::build(&base);
        for _ in 0..10 {
            let Some(change) = random_flip(&mut rng, &stepped) else { break };
            let staged = match change.op {
                EdgeOp::Insert => delta.stage_insert(&base, change.u, change.v),
                EdgeOp::Remove => delta.stage_remove(&base, change.u, change.v),
            };
            // Staging validates against base+overlay, which equals `stepped`.
            staged.expect("flip chosen valid for the stepped snapshot");
            let after = apply_change(&stepped, &change);
            patch_index_edge(&mut index, &stepped, &after, &change);
            stepped = after;
        }
        let batch = delta.apply(&base);
        assert_eq!(batch.edge_count(), stepped.edge_count(), "trial {trial}");
        for v in batch.vertices() {
            assert_eq!(batch.neighbors(v), stepped.neighbors(v), "trial {trial}, {v}");
        }
        assert_index_eq(&index, &BccIndex::build(&batch), &format!("(trial {trial} final)"));
    }
}
