//! Algorithm 5 — fast query-distance computation.
//!
//! After a deletion round removes `D_i` from `G_i`, only vertices whose old
//! distance exceeded `d_min = min_{v ∈ D_i} dist(v, q)` can change distance
//! (any shorter path ran exclusively through vertices closer than `d_min`,
//! all of which survived). Algorithm 5 therefore resets just that suffix
//! (`S_u`) and re-runs a BFS from the still-settled ring at exactly `d_min`
//! (`S_s`), instead of a full BFS from the query.
//!
//! To make the update touch only `|S_s| + |S_u|` vertices (and not scan the
//! whole graph to *find* them), we bucket vertices by distance level with
//! lazy invalidation: a bucket entry is live iff the vertex's current
//! distance still equals the bucket level. The common case the paper points
//! out — the query whose own farthest shell was deleted has `S_u = ∅` —
//! then costs O(|D_i|).

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use bcc_graph::{GraphView, VertexId, INF_DIST};

use crate::stats::{timed, SearchStats};

/// Frontier sizes below this expand on the calling thread even when the
/// parallel path is enabled: the `thread::scope` spawn cost (~tens of µs)
/// dwarfs the relaxation work, and the first/last BFS levels are tiny on
/// every real graph.
const PARALLEL_FRONTIER_MIN: usize = 256;

/// Per-query BFS distance arrays maintained incrementally across deletions.
#[derive(Clone, Debug)]
pub struct IncrementalDistances {
    /// The query vertices, aligned with `dist`.
    pub queries: Vec<VertexId>,
    /// `dist[i][v]` = hop distance from query `i` to vertex `v`
    /// ([`INF_DIST`] for dead/unreachable vertices).
    pub dist: Vec<Vec<u32>>,
    /// `buckets[i][d]` = vertices that were assigned distance `d` from
    /// query `i` (lazy: entries whose current distance differs are stale).
    buckets: Vec<Vec<Vec<VertexId>>>,
}

impl IncrementalDistances {
    /// Full BFS from every query (the expensive baseline that Algorithm 5
    /// avoids repeating).
    pub fn compute(view: &GraphView<'_>, queries: &[VertexId], stats: &mut SearchStats) -> Self {
        let (dist, buckets) = timed(&mut stats.time_query_distance, || {
            let mut dist = Vec::with_capacity(queries.len());
            let mut buckets = Vec::with_capacity(queries.len());
            for &q in queries {
                let d = bcc_graph::bfs_distances(view, q);
                let max = view
                    .alive_vertices()
                    .map(|v| d[v.index()])
                    .filter(|&x| x != INF_DIST)
                    .max()
                    .unwrap_or(0);
                let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max as usize + 1];
                for v in view.alive_vertices() {
                    let dv = d[v.index()];
                    if dv != INF_DIST {
                        levels[dv as usize].push(v);
                    }
                }
                dist.push(d);
                buckets.push(levels);
            }
            (dist, buckets)
        });
        stats.full_bfs_runs += queries.len() as u64;
        IncrementalDistances {
            queries: queries.to_vec(),
            dist,
            buckets,
        }
    }

    /// [`IncrementalDistances::compute`] with the chunked frontier-parallel
    /// BFS across up to `threads` workers (`0` = all cores, `≤ 1` = the
    /// sequential reference path). Hop distances are unique, and the
    /// level-synchronous expansion assigns exactly them, so the resulting
    /// arrays — and everything derived from them — are bit-identical to the
    /// sequential path at any thread count (pinned by tests and the service
    /// differential suite). Expansion and merge wall time land in the
    /// `time_dist_expand` / `time_dist_merge` sub-phase slots.
    pub fn compute_with_threads(
        view: &GraphView<'_>,
        queries: &[VertexId],
        threads: usize,
        stats: &mut SearchStats,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        if threads <= 1 {
            return Self::compute(view, queries, stats);
        }
        let SearchStats {
            time_query_distance, time_dist_expand, time_dist_merge, ..
        } = stats;
        let (dist, buckets) = timed(time_query_distance, || {
            let mut dist = Vec::with_capacity(queries.len());
            let mut buckets = Vec::with_capacity(queries.len());
            for &q in queries {
                let d =
                    bfs_distances_parallel(view, q, threads, time_dist_expand, time_dist_merge);
                let max = view
                    .alive_vertices()
                    .map(|v| d[v.index()])
                    .filter(|&x| x != INF_DIST)
                    .max()
                    .unwrap_or(0);
                let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max as usize + 1];
                for v in view.alive_vertices() {
                    let dv = d[v.index()];
                    if dv != INF_DIST {
                        levels[dv as usize].push(v);
                    }
                }
                dist.push(d);
                buckets.push(levels);
            }
            (dist, buckets)
        });
        stats.full_bfs_runs += queries.len() as u64;
        IncrementalDistances {
            queries: queries.to_vec(),
            dist,
            buckets,
        }
    }

    /// Algorithm 5: refreshes the distance arrays after `removed` vertices
    /// were deleted from `view` (call *after* the deletion).
    pub fn update_after_removal(
        &mut self,
        view: &GraphView<'_>,
        removed: &[VertexId],
        stats: &mut SearchStats,
    ) {
        timed(&mut stats.time_query_distance, || {
            for qi in 0..self.queries.len() {
                self.update_one(view, qi, removed);
            }
        });
        stats.incremental_dist_updates += 1;
    }

    fn update_one(&mut self, view: &GraphView<'_>, qi: usize, removed: &[VertexId]) {
        let q = self.queries[qi];
        let dist = &mut self.dist[qi];
        let buckets = &mut self.buckets[qi];
        if !view.is_alive(q) {
            dist.fill(INF_DIST);
            buckets.clear();
            return;
        }
        // d_min over the deleted set (line 2).
        let d_min = removed
            .iter()
            .map(|v| dist[v.index()])
            .min()
            .unwrap_or(INF_DIST);
        for v in removed {
            dist[v.index()] = INF_DIST;
        }
        if d_min == INF_DIST {
            // Only unreachable vertices died: S_u = ∅, nothing to update.
            return;
        }
        let d_min = d_min as usize;
        // S_u (line 4): every alive vertex farther than d_min — exactly the
        // live entries of the buckets above d_min. Reset them to ∞. A
        // vertex may also appear as a *stale* entry at a level above its
        // current distance (BFS improvements leave the old entry behind);
        // the level check skips those so settled distances survive.
        for (level_idx, level) in buckets.iter_mut().enumerate().skip(d_min + 1) {
            for &v in level.iter() {
                if view.is_alive(v) && dist[v.index()] == level_idx as u32 {
                    dist[v.index()] = INF_DIST;
                }
            }
            level.clear();
        }
        // S_s (line 3): the settled ring at exactly d_min.
        buckets[d_min].retain(|&v| view.is_alive(v) && dist[v.index()] == d_min as u32);
        let mut queue: std::collections::VecDeque<VertexId> = buckets[d_min].iter().copied().collect();
        // BFS restart (line 5). Settled vertices have dist ≤ d_min < any
        // proposed distance, so the `next < dist` check leaves them alone.
        while let Some(v) = queue.pop_front() {
            let next = dist[v.index()] + 1;
            for u in view.neighbors(v) {
                if next < dist[u.index()] {
                    dist[u.index()] = next;
                    if buckets.len() <= next as usize {
                        buckets.resize(next as usize + 1, Vec::new());
                    }
                    buckets[next as usize].push(u);
                    queue.push_back(u);
                }
            }
        }
    }

    /// `dist(v, Q)` of Definition 5 (maximum over queries).
    #[inline]
    pub fn vertex_query_distance(&self, v: VertexId) -> u32 {
        self.dist
            .iter()
            .map(|d| d[v.index()])
            .max()
            .unwrap_or(INF_DIST)
    }

    /// The candidate's query distance `dist(G, Q)`.
    pub fn graph_query_distance(&self, view: &GraphView<'_>) -> u32 {
        view.alive_vertices()
            .map(|v| self.vertex_query_distance(v))
            .max()
            .unwrap_or(0)
    }

    /// All alive vertices at the maximum query distance, and that distance.
    pub fn farthest_vertices(&self, view: &GraphView<'_>) -> (Vec<VertexId>, u32) {
        let mut best = 0u32;
        let mut out = Vec::new();
        for v in view.alive_vertices() {
            let d = self.vertex_query_distance(v);
            match d.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = d;
                    out.clear();
                    out.push(v);
                }
                std::cmp::Ordering::Equal => out.push(v),
                std::cmp::Ordering::Less => {}
            }
        }
        (out, best)
    }

    /// Returns `true` if every query can reach every other query.
    pub fn queries_connected(&self) -> bool {
        let first = &self.dist[0];
        self.queries.iter().all(|q| first[q.index()] != INF_DIST)
    }
}

/// Chunked frontier-parallel single-source BFS: the level-synchronous
/// counterpart of [`bcc_graph::bfs_distances`], and bit-identical to it —
/// hop distances are unique, and every vertex is claimed for its exact
/// level by a `compare_exchange` from [`INF_DIST`].
///
/// Each level's frontier is split into contiguous chunks, one per worker;
/// workers relax their chunk's neighbors into private discovery buffers,
/// which are then concatenated in chunk order, so even the internal frontier
/// order is a pure function of the input. Levels smaller than
/// [`PARALLEL_FRONTIER_MIN`] are expanded on the calling thread through the
/// same claim loop. `expand` / `merge` accumulate the two sub-spans the
/// observability layer reports as `query_dist_expand` / `query_dist_merge`.
pub fn bfs_distances_parallel(
    view: &GraphView<'_>,
    source: VertexId,
    threads: usize,
    expand: &mut Duration,
    merge: &mut Duration,
) -> Vec<u32> {
    let n = view.graph().vertex_count();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF_DIST)).collect();
    if view.is_alive(source) {
        dist[source.index()].store(0, Ordering::Relaxed);
        let mut frontier = vec![source];
        let mut level = 0u32;
        while !frontier.is_empty() {
            let next_level = level + 1;
            let workers = if frontier.len() < PARALLEL_FRONTIER_MIN { 1 } else { threads };
            if workers <= 1 {
                let mut next = Vec::new();
                timed(expand, || {
                    relax_chunk(view, &frontier, &dist, next_level, &mut next)
                });
                frontier = next;
            } else {
                let chunk = frontier.len().div_ceil(workers);
                let parts: Vec<Vec<VertexId>> = timed(expand, || {
                    std::thread::scope(|s| {
                        let handles: Vec<_> = frontier
                            .chunks(chunk)
                            .map(|slice| {
                                let dist = &dist;
                                s.spawn(move || {
                                    let mut out = Vec::new();
                                    relax_chunk(view, slice, dist, next_level, &mut out);
                                    out
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("bfs worker")).collect()
                    })
                });
                timed(merge, || {
                    frontier.clear();
                    for part in parts {
                        frontier.extend(part);
                    }
                });
            }
            level = next_level;
        }
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

/// One worker's share of a BFS level: claim every still-unvisited neighbor
/// of `slice` for `next_level`. The winning `compare_exchange` also hands
/// the claimer the enqueue, so each vertex enters exactly one buffer.
fn relax_chunk(
    view: &GraphView<'_>,
    slice: &[VertexId],
    dist: &[AtomicU32],
    next_level: u32,
    out: &mut Vec<VertexId>,
) {
    for &v in slice {
        for u in view.neighbors(v) {
            if dist[u.index()]
                .compare_exchange(INF_DIST, next_level, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                out.push(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};
    use rand::{Rng, SeedableRng};

    fn grid(w: usize, h: usize) -> LabeledGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<Vec<VertexId>> = (0..h)
            .map(|_| (0..w).map(|_| b.add_vertex("A")).collect())
            .collect();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.add_edge(vs[y][x], vs[y][x + 1]);
                }
                if y + 1 < h {
                    b.add_edge(vs[y][x], vs[y + 1][x]);
                }
            }
        }
        b.build()
    }

    fn assert_matches_fresh(view: &GraphView<'_>, inc: &IncrementalDistances) {
        for (qi, &q) in inc.queries.iter().enumerate() {
            let fresh = bcc_graph::bfs_distances(view, q);
            assert_eq!(inc.dist[qi], fresh, "query {q} distances diverged");
        }
    }

    #[test]
    fn parallel_bfs_is_bit_identical_to_sequential() {
        let g = grid(12, 12);
        let mut view = GraphView::new(&g);
        // Punch deterministic holes so detours and an unreachable pocket exist.
        for i in [13u32, 14, 25, 26, 37, 110, 121, 132] {
            view.remove_vertex(VertexId(i));
        }
        for source in [VertexId(0), VertexId(143), VertexId(70), VertexId(13)] {
            let reference = bcc_graph::bfs_distances(&view, source);
            for threads in [1usize, 2, 3, 7, 0] {
                let mut expand = Duration::ZERO;
                let mut merge = Duration::ZERO;
                assert_eq!(
                    bfs_distances_parallel(&view, source, threads, &mut expand, &mut merge),
                    reference,
                    "source {source}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn compute_with_threads_matches_sequential_compute() {
        let g = grid(10, 10);
        let view = GraphView::new(&g);
        let queries = [VertexId(0), VertexId(99)];
        let mut seq_stats = SearchStats::default();
        let seq = IncrementalDistances::compute(&view, &queries, &mut seq_stats);
        for threads in [1usize, 2, 3, 7, 0] {
            let mut stats = SearchStats::default();
            let par =
                IncrementalDistances::compute_with_threads(&view, &queries, threads, &mut stats);
            assert_eq!(par.dist, seq.dist, "threads {threads}");
            assert_eq!(par.buckets, seq.buckets, "threads {threads}");
            assert_eq!(stats.full_bfs_runs, 2);
        }
        // Sequential path never touches the sub-phase slots.
        assert!(seq_stats.time_dist_expand.is_zero() && seq_stats.time_dist_merge.is_zero());
    }

    #[test]
    fn incremental_matches_full_on_grid() {
        let g = grid(5, 5);
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let queries = [VertexId(0), VertexId(24)];
        let mut inc = IncrementalDistances::compute(&view, &queries, &mut stats);
        assert_eq!(stats.full_bfs_runs, 2);
        // Delete the grid center, forcing detours.
        let center = VertexId(12);
        view.remove_vertex(center);
        inc.update_after_removal(&view, &[center], &mut stats);
        assert_matches_fresh(&view, &inc);
        assert_eq!(stats.incremental_dist_updates, 1);
    }

    #[test]
    fn randomized_deletion_equivalence() {
        let g = grid(6, 6);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let queries = [VertexId(0), VertexId(35)];
        let mut inc = IncrementalDistances::compute(&view, &queries, &mut stats);
        for _round in 0..12 {
            // Remove a random batch of 1–3 alive non-query vertices.
            let alive: Vec<VertexId> = view
                .alive_vertices()
                .filter(|v| !queries.contains(v))
                .collect();
            if alive.len() <= 2 {
                break;
            }
            let k = rng.gen_range(1..=3.min(alive.len()));
            let mut batch = Vec::new();
            for _ in 0..k {
                let v = alive[rng.gen_range(0..alive.len())];
                if view.is_alive(v) {
                    view.remove_vertex(v);
                    batch.push(v);
                }
            }
            inc.update_after_removal(&view, &batch, &mut stats);
            assert_matches_fresh(&view, &inc);
        }
    }

    #[test]
    fn unreachable_deletion_is_noop() {
        // Two disconnected edges; deleting a vertex of the far component
        // leaves the query's distances untouched (d_min = ∞ path).
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let c0 = b.add_vertex("A");
        let c1 = b.add_vertex("A");
        b.add_edge(a0, a1);
        b.add_edge(c0, c1);
        let g = b.build();
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let mut inc = IncrementalDistances::compute(&view, &[a0], &mut stats);
        view.remove_vertex(c0);
        inc.update_after_removal(&view, &[c0], &mut stats);
        assert_eq!(inc.dist[0][a1.index()], 1);
        assert_eq!(inc.dist[0][c0.index()], INF_DIST);
        assert_matches_fresh(&view, &inc);
    }

    #[test]
    fn dead_query_blanks_distances() {
        let g = grid(3, 3);
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let q = VertexId(0);
        let mut inc = IncrementalDistances::compute(&view, &[q], &mut stats);
        view.remove_vertex(q);
        inc.update_after_removal(&view, &[q], &mut stats);
        assert!(inc.dist[0].iter().all(|&d| d == INF_DIST));
        assert!(!inc.queries_connected());
    }

    #[test]
    fn distances_can_grow_across_repeated_updates() {
        // A ring: deleting vertices forces ever-longer detours, exercising
        // the bucket resize path (new levels beyond the initial maximum).
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..12).map(|_| b.add_vertex("A")).collect();
        for i in 0..12 {
            b.add_edge(vs[i], vs[(i + 1) % 12]);
        }
        let g = b.build();
        let mut view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let mut inc = IncrementalDistances::compute(&view, &[vs[0]], &mut stats);
        // Cut the short arc step by step: distances to the far side grow.
        for &cut in &[vs[1], vs[2], vs[3]] {
            view.remove_vertex(cut);
            inc.update_after_removal(&view, &[cut], &mut stats);
            assert_matches_fresh(&view, &inc);
        }
        assert_eq!(inc.dist[0][vs[4].index()], 8, "forced the long way round");
    }

    #[test]
    fn farthest_and_query_distance_agree_with_fresh() {
        let g = grid(4, 4);
        let view = GraphView::new(&g);
        let mut stats = SearchStats::default();
        let queries = [VertexId(0), VertexId(5)];
        let inc = IncrementalDistances::compute(&view, &queries, &mut stats);
        let fresh = bcc_graph::traversal::QueryDistances::compute(&view, &queries);
        assert_eq!(
            inc.graph_query_distance(&view),
            fresh.graph_query_distance(&view)
        );
        let (fi, di) = inc.farthest_vertices(&view);
        let (ff, df) = fresh.farthest_vertices(&view);
        assert_eq!((fi, di), (ff, df));
    }
}
