//! The offline BCindex of Section 6.3.
//!
//! Two components per vertex, both O(1) to read at query time:
//!
//! * **coreness** δ(v) inside v's own label group (the k-core of the
//!   label-induced subgraph — the quantity conditions 2–3 of Definition 4
//!   constrain);
//! * **butterfly degree** χ(v) in the bipartite graph between v's label
//!   group and all differently-labeled vertices. On a two-label graph this
//!   is exactly the paper's per-vertex butterfly index; with more labels it
//!   is the natural aggregate (and is used only as a search prior for the
//!   butterfly-core path weight, never for validity checks).

use bcc_graph::{GraphRead, GraphView, LabeledGraph, VertexId};
use rustc_hash::FxHashMap;

/// The offline index: label coreness + heterogeneous butterfly degree.
#[derive(Clone, Debug)]
pub struct BccIndex {
    /// δ(v): coreness of v within its label group.
    pub label_coreness: Vec<u32>,
    /// χ(v): butterfly degree of v against all other labels.
    pub butterfly_degree: Vec<u64>,
    /// max δ over the graph (`δ_max` of Definition 6).
    pub delta_max: u32,
    /// max χ over the graph (`χ_max` of Definition 6).
    pub chi_max: u64,
}

impl BccIndex {
    /// Builds the index for `graph` (run once offline, reused across
    /// queries).
    pub fn build(graph: &LabeledGraph) -> Self {
        let view = GraphView::new(graph);
        let label_coreness = bcc_cohesion::label_core_decomposition(&view);
        let butterfly_degree = hetero_butterfly_degrees(&view);
        let delta_max = label_coreness.iter().copied().max().unwrap_or(0);
        let chi_max = butterfly_degree.iter().copied().max().unwrap_or(0);
        BccIndex {
            label_coreness,
            butterfly_degree,
            delta_max,
            chi_max,
        }
    }

    /// δ(v).
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.label_coreness[v.index()]
    }

    /// χ(v).
    #[inline]
    pub fn chi(&self, v: VertexId) -> u64 {
        self.butterfly_degree[v.index()]
    }
}

/// Butterfly degrees where the "opposite side" of a vertex is *any* other
/// label: wedges v → u → w with `ℓ(u) ≠ ℓ(v)` and `ℓ(w) = ℓ(v)`. Reduces to
/// Algorithm 3 on two-label graphs.
fn hetero_butterfly_degrees(view: &GraphView<'_>) -> Vec<u64> {
    let mut chi = vec![0u64; view.graph().vertex_count()];
    let mut paths: FxHashMap<u32, u32> = FxHashMap::default();
    for v in view.alive_vertices() {
        chi[v.index()] = hetero_chi_into(view, v, &mut paths);
    }
    chi
}

/// χ(v) alone — the per-vertex wedge count the full decomposition loops
/// over, exposed for incremental maintenance (see [`crate::incremental`]):
/// an edge flip can only change χ inside the flipped edge's closed
/// neighborhood, so patching recomputes exactly those entries. Generic over
/// any [`GraphRead`] source — the batched commit path evaluates it on the
/// mid-batch [`bcc_graph::OverlayGraph`] without materializing a snapshot.
pub fn hetero_butterfly_degree_of<G: GraphRead>(g: &G, v: VertexId) -> u64 {
    hetero_chi_into(g, v, &mut FxHashMap::default())
}

fn hetero_chi_into<G: GraphRead>(
    g: &G,
    v: VertexId,
    paths: &mut FxHashMap<u32, u32>,
) -> u64 {
    let label = g.label(v);
    paths.clear();
    for u in g.cross_label_neighbors_iter(v) {
        for w in g.neighbors_iter(u) {
            if w != v && g.label(w) == label {
                *paths.entry(w.0).or_insert(0) += 1;
            }
        }
    }
    paths
        .values()
        .map(|&c| (c as u64) * (c as u64).saturating_sub(1) / 2)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_butterfly::{butterfly_degrees, BipartiteCross};
    use bcc_graph::GraphBuilder;

    #[test]
    fn two_label_index_matches_algorithm3() {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(l[i], l[j]);
            }
        }
        for &x in &l[..3] {
            for &y in &r[..3] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let index = BccIndex::build(&g);
        let view = GraphView::new(&g);
        let direct = butterfly_degrees(&view, BipartiteCross::new(g.label(l[0]), g.label(r[0])));
        assert_eq!(index.butterfly_degree, direct);
        assert_eq!(index.coreness(l[0]), 3, "left 4-clique");
        assert_eq!(index.coreness(r[0]), 0, "right side has no homogeneous edges");
        assert_eq!(index.delta_max, 3);
        assert!(index.chi_max > 0);
    }

    #[test]
    fn index_on_empty_graph() {
        let g = GraphBuilder::new().build();
        let index = BccIndex::build(&g);
        assert_eq!(index.delta_max, 0);
        assert_eq!(index.chi_max, 0);
    }

    #[test]
    fn multi_label_chi_aggregates() {
        // v sits in one butterfly with label B and one with label C.
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let b0 = b.add_vertex("B");
        let b1 = b.add_vertex("B");
        let c0 = b.add_vertex("C");
        let c1 = b.add_vertex("C");
        for (x, y) in [(a0, b0), (a0, b1), (a1, b0), (a1, b1)] {
            b.add_edge(x, y);
        }
        for (x, y) in [(a0, c0), (a0, c1), (a1, c0), (a1, c1)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let index = BccIndex::build(&g);
        // a0 participates in the AB butterfly and the AC butterfly — but the
        // aggregate also counts the mixed wedge combinations through a1:
        // common "cross" neighbors of a0 and a1 are {b0, b1, c0, c1}, so the
        // aggregate χ(a0) = C(4,2) = 6 (2 pure + 4 mixed).
        assert_eq!(index.chi(a0), 6);
        assert_eq!(index.chi(b0), 1, "B vertices only see the AB butterflies");
    }
}
