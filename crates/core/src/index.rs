//! The offline BCindex of Section 6.3.
//!
//! Two components per vertex, both O(1) to read at query time:
//!
//! * **coreness** δ(v) inside v's own label group (the k-core of the
//!   label-induced subgraph — the quantity conditions 2–3 of Definition 4
//!   constrain);
//! * **butterfly degree** χ(v) in the bipartite graph between v's label
//!   group and all differently-labeled vertices. On a two-label graph this
//!   is exactly the paper's per-vertex butterfly index; with more labels it
//!   is the natural aggregate (and is used only as a search prior for the
//!   butterfly-core path weight, never for validity checks).
//!
//! The build is the offline cost every `register` and every cold L2P query
//! pays. Its χ half runs on the flat epoch-stamped wedge scratch
//! ([`bcc_graph::WedgeScratch`] — no hashing, no per-vertex allocation) and
//! parallelizes over vertex chunks ([`BccIndex::build_with_threads`]);
//! every configuration is bit-identical to the retained seed implementation
//! ([`BccIndex::build_reference`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bcc_graph::{GraphRead, GraphView, LabeledGraph, VertexId, WedgeScratch};
use rustc_hash::FxHashMap;

/// Vertices handed to one parallel χ worker per claim of the atomic
/// cursor — small enough that skewed wedge costs still balance across
/// workers, large enough that the cursor is not contended.
const CHI_CHUNK: usize = 256;

/// The offline index: label coreness + heterogeneous butterfly degree.
#[derive(Clone, Debug)]
pub struct BccIndex {
    /// δ(v): coreness of v within its label group.
    pub label_coreness: Vec<u32>,
    /// χ(v): butterfly degree of v against all other labels.
    pub butterfly_degree: Vec<u64>,
    /// max δ over the graph (`δ_max` of Definition 6).
    pub delta_max: u32,
    /// max χ over the graph (`χ_max` of Definition 6).
    pub chi_max: u64,
}

impl BccIndex {
    /// Builds the index for `graph` (run once offline, reused across
    /// queries) on the calling thread, with the flat wedge kernel.
    /// Equivalent to [`BccIndex::build_with_threads`] at 1 thread.
    pub fn build(graph: &LabeledGraph) -> Self {
        Self::build_with_threads(graph, 1)
    }

    /// Builds the index with up to `threads` worker threads (0 ⇒ one per
    /// available core). The build has two halves — the δ peeling pass and
    /// the per-vertex χ wedge counts — and the parallel path runs them as
    /// two internally-parallel phases: first the bucketed level-synchronous
    /// δ decomposition (`bcc_cohesion::label_core_decomposition_parallel`)
    /// across all workers, then the χ chunks drained through an atomic
    /// cursor by `std::thread::scope` workers, each with its own
    /// [`WedgeScratch`]. (The earlier design ran δ as a single task in the
    /// χ pool, which made it the build's sequential critical path at high
    /// thread counts — the straggler PR 5 recorded.) δ is order-independent
    /// and per-vertex χ is an independent exact computation, so any thread
    /// count produces a **bit-identical** index (pinned by the test suite
    /// and the `index_build` benchmark).
    ///
    /// This is hand-rolled `std::thread` parallelism on purpose: the
    /// workspace builds offline, so its `rayon` is the sequential shim
    /// under `vendor/` — routing the build through `par_iter()` would
    /// silently run on one core.
    pub fn build_with_threads(graph: &LabeledGraph, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        let n = graph.vertex_count();
        let (label_coreness, butterfly_degree) = if threads <= 1 || n <= CHI_CHUNK {
            (
                bcc_cohesion::label_core_decomposition_direct(graph),
                hetero_butterfly_degrees(graph),
            )
        } else {
            build_halves_parallel(graph, threads)
        };
        let delta_max = label_coreness.iter().copied().max().unwrap_or(0);
        let chi_max = butterfly_degree.iter().copied().max().unwrap_or(0);
        BccIndex {
            label_coreness,
            butterfly_degree,
            delta_max,
            chi_max,
        }
    }

    /// The seed implementation — hash-map wedge accumulators, one thread —
    /// retained verbatim as the differential oracle: tests and the
    /// `index_build` benchmark require every [`BccIndex::build_with_threads`]
    /// configuration to reproduce this index bit for bit (and the flat
    /// kernel to beat it).
    pub fn build_reference(graph: &LabeledGraph) -> Self {
        let view = GraphView::new(graph);
        let label_coreness = bcc_cohesion::label_core_decomposition(&view);
        let butterfly_degree = hetero_butterfly_degrees_hash(&view);
        let delta_max = label_coreness.iter().copied().max().unwrap_or(0);
        let chi_max = butterfly_degree.iter().copied().max().unwrap_or(0);
        BccIndex {
            label_coreness,
            butterfly_degree,
            delta_max,
            chi_max,
        }
    }

    /// δ(v).
    #[inline]
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.label_coreness[v.index()]
    }

    /// χ(v).
    #[inline]
    pub fn chi(&self, v: VertexId) -> u64 {
        self.butterfly_degree[v.index()]
    }
}

/// The parallel build body: phase 1 peels δ with the bucketed
/// level-synchronous engine across all `threads` workers; phase 2 drains χ
/// chunks of [`CHI_CHUNK`] vertices through an atomic cursor claimed by
/// scoped workers — the calling thread is one of them.
fn build_halves_parallel(graph: &LabeledGraph, threads: usize) -> (Vec<u32>, Vec<u64>) {
    // Phase 1 — δ across the whole pool. The PR 5 design handed δ to a
    // single worker in the χ task pool, so at high thread counts the build
    // took max(δ, χ/T) with δ fixed: the sequential critical path the
    // `index_build` benchmark records. The bucketed decomposition peels
    // level-synchronously, bit-identically to the sequential peel.
    let label_coreness = bcc_cohesion::label_core_decomposition_parallel(graph, threads);

    // Phase 2 — χ chunks. Each chunk slot is claimed by exactly one worker
    // (the cursor never hands an index out twice), the Mutex<Option<..>>
    // just makes that ownership transfer safe to express.
    let n = graph.vertex_count();
    let mut chi = vec![0u64; n];
    let chunks: Vec<Mutex<Option<&mut [u64]>>> =
        chi.chunks_mut(CHI_CHUNK).map(|c| Mutex::new(Some(c))).collect();
    let cursor = AtomicUsize::new(0);
    let tasks = chunks.len();
    // A worker beyond the task count would only pay its spawn + scratch
    // allocation to observe an exhausted cursor.
    let threads = threads.min(tasks);
    let worker = || {
        let mut scratch = WedgeScratch::new(n);
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= tasks {
                break;
            }
            let slice = chunks[idx].lock().unwrap().take().expect("chunk claimed exactly once");
            let start = idx * CHI_CHUNK;
            for (off, out) in slice.iter_mut().enumerate() {
                *out = hetero_butterfly_degree_of_with(
                    graph,
                    VertexId((start + off) as u32),
                    &mut scratch,
                );
            }
        }
    };
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(worker);
        }
        worker();
    });
    drop(chunks);
    (label_coreness, chi)
}

/// Butterfly degrees where the "opposite side" of a vertex is *any* other
/// label: wedges v → u → w with `ℓ(u) ≠ ℓ(v)` and `ℓ(w) = ℓ(v)`. Reduces to
/// Algorithm 3 on two-label graphs. One flat [`WedgeScratch`] serves the
/// whole pass. Public for the `index_build` benchmark, which times this χ
/// pass against [`hetero_butterfly_degrees_hash`].
pub fn hetero_butterfly_degrees<G: GraphRead>(g: &G) -> Vec<u64> {
    let n = g.vertex_count();
    let mut chi = vec![0u64; n];
    let mut scratch = WedgeScratch::new(n);
    for v in g.vertices() {
        chi[v.index()] = hetero_butterfly_degree_of_with(g, v, &mut scratch);
    }
    chi
}

/// χ(v) alone — the per-vertex wedge count the full decomposition loops
/// over, exposed for incremental maintenance (see [`crate::incremental`]):
/// an edge flip can only change χ inside the flipped edge's closed
/// neighborhood, so patching recomputes exactly those entries. Generic over
/// any [`GraphRead`] source — the batched commit path evaluates it on the
/// mid-batch [`bcc_graph::OverlayGraph`] without materializing a snapshot.
/// Borrows a thread-local scratch; loops should pass their own via
/// [`hetero_butterfly_degree_of_with`].
pub fn hetero_butterfly_degree_of<G: GraphRead>(g: &G, v: VertexId) -> u64 {
    WedgeScratch::with_thread_local(|scratch| hetero_butterfly_degree_of_with(g, v, scratch))
}

/// [`hetero_butterfly_degree_of`] on a caller-provided scratch — the flat
/// Algorithm 3 kernel every maintenance loop and build worker reuses.
pub fn hetero_butterfly_degree_of_with<G: GraphRead>(
    g: &G,
    v: VertexId,
    scratch: &mut WedgeScratch,
) -> u64 {
    let label = g.label(v);
    scratch.reset_for(g.vertex_count());
    let mut chi = 0u64;
    for u in g.cross_label_neighbors_iter(v) {
        for w in g.neighbors_iter(u) {
            if w != v && g.label(w) == label {
                chi += (scratch.bump(w) - 1) as u64;
            }
        }
    }
    chi
}

/// The seed's hash-map χ pass, retained for [`BccIndex::build_reference`]
/// and as the timing baseline of the `index_build` benchmark.
pub fn hetero_butterfly_degrees_hash(view: &GraphView<'_>) -> Vec<u64> {
    let mut chi = vec![0u64; view.graph().vertex_count()];
    let mut paths: FxHashMap<u32, u32> = FxHashMap::default();
    for v in view.alive_vertices() {
        let label = view.graph().label(v);
        paths.clear();
        for u in view.cross_label_neighbors_iter(v) {
            for w in view.neighbors_iter(u) {
                if w != v && view.graph().label(w) == label {
                    *paths.entry(w.0).or_insert(0) += 1;
                }
            }
        }
        chi[v.index()] = paths
            .values()
            .map(|&c| (c as u64) * (c as u64).saturating_sub(1) / 2)
            .sum();
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_butterfly::{butterfly_degrees, BipartiteCross};
    use bcc_graph::GraphBuilder;

    #[test]
    fn two_label_index_matches_algorithm3() {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(l[i], l[j]);
            }
        }
        for &x in &l[..3] {
            for &y in &r[..3] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let index = BccIndex::build(&g);
        let view = GraphView::new(&g);
        let direct = butterfly_degrees(&view, BipartiteCross::new(g.label(l[0]), g.label(r[0])));
        assert_eq!(index.butterfly_degree, direct);
        assert_eq!(index.coreness(l[0]), 3, "left 4-clique");
        assert_eq!(index.coreness(r[0]), 0, "right side has no homogeneous edges");
        assert_eq!(index.delta_max, 3);
        assert!(index.chi_max > 0);
    }

    #[test]
    fn index_on_empty_graph() {
        let g = GraphBuilder::new().build();
        let index = BccIndex::build(&g);
        assert_eq!(index.delta_max, 0);
        assert_eq!(index.chi_max, 0);
    }

    #[test]
    fn every_thread_count_is_bit_identical_to_the_seed_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x1D3);
        // Sizes straddle the CHI_CHUNK threshold so both the sequential
        // shortcut and the real chunked parallel path are exercised.
        for (n, labels, p) in [(60usize, 2usize, 0.2), (320, 3, 0.03), (700, 4, 0.015)] {
            let names: Vec<String> = (0..labels).map(|i| format!("G{i}")).collect();
            let mut b = GraphBuilder::new();
            let vs: Vec<_> =
                (0..n).map(|_| b.add_vertex(&names[rng.gen_range(0..labels)])).collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(p) {
                        b.add_edge(vs[i], vs[j]);
                    }
                }
            }
            let g = b.build();
            let reference = BccIndex::build_reference(&g);
            for threads in [1usize, 2, 3, 7, 0] {
                let built = BccIndex::build_with_threads(&g, threads);
                assert_eq!(
                    built.label_coreness, reference.label_coreness,
                    "δ (n={n}, threads={threads})"
                );
                assert_eq!(
                    built.butterfly_degree, reference.butterfly_degree,
                    "χ (n={n}, threads={threads})"
                );
                assert_eq!(built.delta_max, reference.delta_max);
                assert_eq!(built.chi_max, reference.chi_max);
            }
        }
    }

    #[test]
    fn multi_label_chi_aggregates() {
        // v sits in one butterfly with label B and one with label C.
        let mut b = GraphBuilder::new();
        let a0 = b.add_vertex("A");
        let a1 = b.add_vertex("A");
        let b0 = b.add_vertex("B");
        let b1 = b.add_vertex("B");
        let c0 = b.add_vertex("C");
        let c1 = b.add_vertex("C");
        for (x, y) in [(a0, b0), (a0, b1), (a1, b0), (a1, b1)] {
            b.add_edge(x, y);
        }
        for (x, y) in [(a0, c0), (a0, c1), (a1, c0), (a1, c1)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let index = BccIndex::build(&g);
        // a0 participates in the AB butterfly and the AC butterfly — but the
        // aggregate also counts the mixed wedge combinations through a1:
        // common "cross" neighbors of a0 and a1 are {b0, b1, c0, c1}, so the
        // aggregate χ(a0) = C(4,2) = 6 (2 pure + 4 mixed).
        assert_eq!(index.chi(a0), 6);
        assert_eq!(index.chi(b0), 1, "B vertices only see the AB butterflies");
    }
}
