//! # bcc-core — the Butterfly-Core Community model and search algorithms
//!
//! Implements the primary contribution of *Butterfly-Core Community Search
//! over Labeled Graphs* (PVLDB 14(1), 2021):
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Definition 4 (BCC model) | [`BccParams`], [`is_valid_bcc`] |
//! | Problem 1 (BCC search) | [`OnlineBcc::search`] et al. |
//! | Algorithm 1 (online greedy, 2-approx) | [`OnlineBcc`], [`engine`] |
//! | Algorithm 2 (finding G₀) | [`candidate::Candidate::find_g0`] |
//! | Algorithm 4 (BCC maintenance) | [`candidate::Candidate::remove_batch_with`] + engine recounts |
//! | Algorithm 5 (fast query distance) | [`fast_dist::IncrementalDistances`] |
//! | Algorithms 6–7 (leader pairs) | [`LpBcc`] (via `bcc-butterfly`) |
//! | Section 6.3 (BCindex + local search, Algorithm 8) | [`BccIndex`], [`L2pBcc`] |
//! | Section 7 (mBCC, Algorithm 9) | [`MultiLabelBcc`] |
//!
//! The three public searchers mirror the paper's evaluated methods:
//! **Online-BCC**, **LP-BCC**, **L2P-BCC**; [`MultiLabelBcc`] provides their
//! multi-label extensions.
//!
//! ```
//! use bcc_graph::GraphBuilder;
//! use bcc_core::{BccParams, BccQuery, OnlineBcc};
//!
//! // Two labeled 4-cliques bridged by a butterfly.
//! let mut b = GraphBuilder::new();
//! let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
//! let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
//! for grp in [&l, &r] {
//!     for i in 0..4 {
//!         for j in (i + 1)..4 {
//!             b.add_edge(grp[i], grp[j]);
//!         }
//!     }
//! }
//! for &x in &l[..2] {
//!     for &y in &r[..2] {
//!         b.add_edge(x, y);
//!     }
//! }
//! let g = b.build();
//!
//! let result = OnlineBcc::default()
//!     .search(&g, &BccQuery::pair(l[0], r[0]), &BccParams::new(3, 3, 1))
//!     .unwrap();
//! assert_eq!(result.community.len(), 8);
//! assert!(result.leaders.iter().all(|v| result.contains(v)));
//! ```

pub mod candidate;
pub mod engine;
pub mod fast_dist;
pub mod incremental;
pub mod index;
pub mod local;
pub mod model;
pub mod multi;
pub mod online;
pub mod stats;

pub use engine::EngineConfig;
pub use fast_dist::IncrementalDistances;
pub use incremental::{
    affected_neighborhood, patch_index_batch, patch_index_edge, BatchPatchReport, PatchReport,
};
pub use index::{
    hetero_butterfly_degree_of, hetero_butterfly_degree_of_with, hetero_butterfly_degrees,
    hetero_butterfly_degrees_hash, BccIndex,
};
pub use local::{butterfly_core_path, expand_candidate, PathWeights};
pub use model::{
    is_valid_bcc, is_valid_mbcc, BccParams, BccQuery, BccResult, MbccParams, MbccQuery,
    SearchError,
};
pub use multi::{MultiLabelBcc, MultiStrategy};
pub use online::{L2pBcc, LpBcc, OnlineBcc};
pub use stats::SearchStats;
