//! Index-based local exploration (Algorithm 8, Section 6.3).
//!
//! Instead of peeling the whole graph, L2P-BCC seeds a small candidate
//! around the queries:
//!
//! 1. find a path connecting the queries that prefers high-coreness,
//!    high-butterfly vertices — minimizing the *butterfly-core path weight*
//!    of Definition 6:
//!    `w(P) = len(P) + γ1·(δ_max − min_{v∈P} δ(v)) + γ2·(χ_max − min_{v∈P} χ(v))`;
//! 2. expand the path in BFS order, admitting only vertices whose indexed
//!    coreness reaches the path's per-label floor, until the candidate
//!    exceeds η vertices;
//! 3. extract the connected `(k1, k2, b)`-BCC inside that candidate and
//!    bulk-peel it with the LP strategies.
//!
//! The path weight is monotone under path extension but not
//! vertex-separable, so we run a multi-criteria Dijkstra over states
//! `(len, min δ, min χ)` with Pareto-dominance pruning and a small
//! per-vertex label cap — exact on small graphs, a high-quality heuristic on
//! large ones (the paper does not specify its own path algorithm).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bcc_graph::{GraphView, Label, VertexId};

use crate::index::BccIndex;

/// Weights of Definition 6; the paper's experiments use γ1 = γ2 = 0.5.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathWeights {
    /// Penalty factor for the coreness shortfall.
    pub gamma1: f64,
    /// Penalty factor for the butterfly-degree shortfall.
    pub gamma2: f64,
}

impl Default for PathWeights {
    fn default() -> Self {
        PathWeights {
            gamma1: 0.5,
            gamma2: 0.5,
        }
    }
}

/// Maximum Pareto labels kept per vertex; small caps keep the search linear
/// in practice while rarely discarding the optimum.
const LABEL_CAP: usize = 8;

#[derive(Clone, Copy, Debug)]
struct PathState {
    weight: f64,
    vertex: VertexId,
    len: u32,
    min_delta: u32,
    min_chi: u64,
    /// This state's arena slot; the arena stores the predecessor chain for
    /// path reconstruction.
    slot: usize,
}

impl PartialEq for PathState {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight
    }
}
impl Eq for PathState {}
impl PartialOrd for PathState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PathState {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on weight; tie-break on length.
        other
            .weight
            .partial_cmp(&self.weight)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.len.cmp(&self.len))
    }
}

/// Definition 6 evaluated for a state.
fn state_weight(index: &BccIndex, weights: PathWeights, len: u32, min_delta: u32, min_chi: u64) -> f64 {
    len as f64
        + weights.gamma1 * (index.delta_max - min_delta) as f64
        + weights.gamma2 * (index.chi_max - min_chi) as f64
}

/// Minimum butterfly-core-weight path from `s` to `t` over the alive
/// vertices of `view` whose labels appear in `allowed`. Returns the path's
/// vertices (s first, t last), or `None` if no such path exists.
pub fn butterfly_core_path(
    view: &GraphView<'_>,
    index: &BccIndex,
    weights: PathWeights,
    s: VertexId,
    t: VertexId,
    allowed: &[Label],
) -> Option<Vec<VertexId>> {
    let graph = view.graph();
    let admissible =
        |v: VertexId| view.is_alive(v) && allowed.contains(&graph.label(v));
    if !admissible(s) || !admissible(t) {
        return None;
    }
    let n = graph.vertex_count();
    // Pareto label sets per vertex: (len, min_delta, min_chi).
    let mut labels: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); n];
    let mut arena: Vec<(VertexId, usize)> = Vec::new();
    let mut heap: BinaryHeap<PathState> = BinaryHeap::new();

    let push = |heap: &mut BinaryHeap<PathState>,
                arena: &mut Vec<(VertexId, usize)>,
                labels: &mut Vec<Vec<(u32, u32, u64)>>,
                vertex: VertexId,
                len: u32,
                min_delta: u32,
                min_chi: u64,
                parent: usize|
     -> bool {
        let entry = (len, min_delta, min_chi);
        let set = &mut labels[vertex.index()];
        // Dominated by an existing label? (shorter-or-equal, stronger-or-equal)
        if set
            .iter()
            .any(|&(l, d, c)| l <= len && d >= min_delta && c >= min_chi)
        {
            return false;
        }
        set.retain(|&(l, d, c)| !(len <= l && min_delta >= d && min_chi >= c));
        if set.len() >= LABEL_CAP {
            return false;
        }
        set.push(entry);
        let slot = arena.len();
        arena.push((vertex, parent));
        heap.push(PathState {
            weight: state_weight(index, weights, len, min_delta, min_chi),
            vertex,
            len,
            min_delta,
            min_chi,
            slot,
        });
        true
    };

    push(
        &mut heap,
        &mut arena,
        &mut labels,
        s,
        0,
        index.coreness(s),
        index.chi(s),
        usize::MAX,
    );

    while let Some(state) = heap.pop() {
        if state.vertex == t {
            // Reconstruct via the arena.
            let mut path = Vec::new();
            let mut slot = state.slot;
            while slot != usize::MAX {
                let (v, parent) = arena[slot];
                path.push(v);
                slot = parent;
            }
            path.reverse();
            return Some(path);
        }
        for u in view.neighbors(state.vertex) {
            if !allowed.contains(&graph.label(u)) {
                continue;
            }
            push(
                &mut heap,
                &mut arena,
                &mut labels,
                u,
                state.len + 1,
                state.min_delta.min(index.coreness(u)),
                state.min_chi.min(index.chi(u)),
                state.slot,
            );
        }
    }
    None
}

/// Algorithm 8 lines 2–3: expands seed vertices into a candidate of at most
/// ~η vertices, admitting a vertex only when its indexed coreness reaches
/// its label's floor (the minimum coreness seen on the seed path for that
/// label). Returns the selected vertices.
pub fn expand_candidate(
    view: &GraphView<'_>,
    index: &BccIndex,
    seeds: &[VertexId],
    floors: &[(Label, u32)],
    eta: usize,
) -> Vec<VertexId> {
    let graph = view.graph();
    let floor_of = |v: VertexId| -> Option<u32> {
        floors
            .iter()
            .find(|(l, _)| *l == graph.label(v))
            .map(|&(_, k)| k)
    };
    let mut selected = bcc_graph::BitSet::new(graph.vertex_count());
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    for &s in seeds {
        if view.is_alive(s) && selected.insert(s.index()) {
            queue.push_back(s);
            out.push(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        if out.len() > eta {
            break;
        }
        for u in view.neighbors(v) {
            if selected.contains(u.index()) {
                continue;
            }
            let Some(floor) = floor_of(u) else { continue };
            if index.coreness(u) >= floor {
                selected.insert(u.index());
                out.push(u);
                queue.push_back(u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{GraphBuilder, LabeledGraph};

    /// Two equal-length routes from s to t: one through a low-coreness
    /// bridge vertex w, one through a dense clique member. The weight of
    /// Definition 6 must prefer the dense route once γ1 > 0 (path-minimum
    /// penalties from the shared endpoints are identical for both routes, so
    /// only the intermediates differentiate).
    fn two_route_graph() -> (LabeledGraph, VertexId, VertexId, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let s = b.add_vertex("L");
        let t = b.add_vertex("R");
        // Weak route: s - w - t (w has coreness 1).
        let w = b.add_vertex("L");
        b.add_edge(s, w);
        b.add_edge(w, t);
        // Dense route: s - c0 - t through an L 4-clique; s joins the clique
        // so δ(s) = 3.
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(c[i], c[j]);
            }
        }
        for &x in &c[..3] {
            b.add_edge(s, x);
        }
        // R side: a triangle so δ(t) = 2.
        let r1 = b.add_vertex("R");
        let r2 = b.add_vertex("R");
        b.add_edge(t, r1);
        b.add_edge(t, r2);
        b.add_edge(r1, r2);
        // Butterfly c0, c1 × t, r1 (also provides the c0–t route edge).
        for &x in &c[..2] {
            b.add_edge(x, t);
            b.add_edge(x, r1);
        }
        let g = b.build();
        (g, s, t, c)
    }

    #[test]
    fn hop_count_wins_with_zero_gammas() {
        let (g, s, t, _) = two_route_graph();
        let view = GraphView::new(&g);
        let index = BccIndex::build(&g);
        let path = butterfly_core_path(
            &view,
            &index,
            PathWeights { gamma1: 0.0, gamma2: 0.0 },
            s,
            t,
            &[g.label(s), g.label(t)],
        )
        .unwrap();
        assert_eq!(path.len(), 3, "pure shortest path s-w-t: {path:?}");
    }

    #[test]
    fn dense_route_wins_with_penalties() {
        let (g, s, t, c) = two_route_graph();
        let view = GraphView::new(&g);
        let index = BccIndex::build(&g);
        let path = butterfly_core_path(
            &view,
            &index,
            PathWeights { gamma1: 1.0, gamma2: 1.0 },
            s,
            t,
            &[g.label(s), g.label(t)],
        )
        .unwrap();
        // The weak route passes w with coreness 0 and χ 0; the dense route
        // keeps min coreness higher, so the penalty terms favor it.
        assert!(path.contains(&c[0]) || path.contains(&c[1]), "{path:?}");
    }

    #[test]
    fn path_respects_allowed_labels() {
        let mut b = GraphBuilder::new();
        let s = b.add_vertex("L");
        let z = b.add_vertex("Z");
        let t = b.add_vertex("R");
        b.add_edge(s, z);
        b.add_edge(z, t);
        let g = b.build();
        let view = GraphView::new(&g);
        let index = BccIndex::build(&g);
        let path = butterfly_core_path(
            &view,
            &index,
            PathWeights::default(),
            s,
            t,
            &[g.label(s), g.label(t)],
        );
        assert!(path.is_none(), "the only route runs through a forbidden label");
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        let s = b.add_vertex("L");
        let t = b.add_vertex("R");
        let g = b.build();
        let view = GraphView::new(&g);
        let index = BccIndex::build(&g);
        assert!(butterfly_core_path(&view, &index, PathWeights::default(), s, t, &[g.label(s), g.label(t)]).is_none());
    }

    #[test]
    fn expansion_respects_floors_and_eta() {
        let (g, s, t, c) = two_route_graph();
        let view = GraphView::new(&g);
        let index = BccIndex::build(&g);
        // Floor L at coreness 3 (the clique), R at 0.
        let floors = vec![(g.label(s), 3u32), (g.label(t), 0u32)];
        let grown = expand_candidate(&view, &index, &[c[0], t], &floors, 100);
        assert!(grown.contains(&c[2]), "clique members pass the floor");
        assert!(grown.contains(&s), "s joined the clique, so δ(s) = 3");
        let w = VertexId(2);
        assert!(!grown.contains(&w), "the bridge vertex has coreness 1 < 3");
        // Tiny η stops growth early.
        let small = expand_candidate(&view, &index, &[c[0]], &floors, 1);
        assert!(small.len() <= 1 + view.degree(c[0]) + 1);
    }
}
