//! The BCC model: parameters, queries, results, and errors.
//!
//! A `(k1, k2, b)`-butterfly-core community (Definition 4) over two labels
//! `A_l`, `A_r` is a subgraph `H` whose vertex set splits into `V_L` (all
//! labeled `A_l`) and `V_R` (labeled `A_r`) such that
//!
//! 1. `V_L ∪ V_R = V_H` and the two groups are disjoint;
//! 2. the subgraph induced by `V_L` is a `k1`-core;
//! 3. the subgraph induced by `V_R` is a `k2`-core;
//! 4. each side contains a vertex with butterfly degree ≥ `b` in the
//!    bipartite cross-graph (a *leader pair*).
//!
//! The BCC-Problem (Problem 1) asks for a connected BCC containing both
//! query vertices with the smallest diameter; Section 7 generalizes to `m`
//! labels (Definition 8), replacing condition 4 with cross-group
//! *connectivity* over the label groups.

use bcc_cohesion::LabelCoreThresholds;
use bcc_graph::{GraphView, LabeledGraph, VertexId};

use crate::stats::SearchStats;

/// The `(k1, k2, b)` parameters of a two-label BCC query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BccParams {
    /// Minimum intra-group degree of the left (first query's) group.
    pub k1: u32,
    /// Minimum intra-group degree of the right (second query's) group.
    pub k2: u32,
    /// Butterfly-degree threshold each side's leader must reach.
    pub b: u64,
}

impl BccParams {
    /// Creates `(k1, k2, b)` parameters.
    pub fn new(k1: u32, k2: u32, b: u64) -> Self {
        BccParams { k1, k2, b }
    }

    /// The paper's default parameterization (Section 8, "Queries and
    /// parameters"): `k1`, `k2` are set to the coreness of the query
    /// vertices inside their label groups, and `b = 1`.
    pub fn auto(graph: &LabeledGraph, query: &BccQuery) -> Self {
        let view = GraphView::new(graph);
        let coreness = bcc_cohesion::label_core_decomposition(&view);
        BccParams {
            k1: coreness[query.ql.index()],
            k2: coreness[query.qr.index()],
            b: 1,
        }
    }
}

/// A two-label BCC query `{q_l, q_r}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BccQuery {
    /// The left query vertex.
    pub ql: VertexId,
    /// The right query vertex.
    pub qr: VertexId,
}

impl BccQuery {
    /// Creates the query pair.
    pub fn pair(ql: VertexId, qr: VertexId) -> Self {
        BccQuery { ql, qr }
    }

    /// The queries as a slice-friendly vector.
    pub fn as_vec(&self) -> Vec<VertexId> {
        vec![self.ql, self.qr]
    }
}

/// A multi-label BCC query `{q_1, …, q_m}` (Section 7); each query vertex
/// must carry a distinct label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbccQuery {
    /// The query vertices, one per label group.
    pub queries: Vec<VertexId>,
}

impl MbccQuery {
    /// Creates an m-label query.
    pub fn new(queries: Vec<VertexId>) -> Self {
        MbccQuery { queries }
    }

    /// Number of query vertices (the `m` of Definition 8).
    pub fn m(&self) -> usize {
        self.queries.len()
    }
}

/// Per-label core parameters for an mBCC query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbccParams {
    /// `k_i` for the i-th query's label group, aligned with
    /// [`MbccQuery::queries`].
    pub ks: Vec<u32>,
    /// Butterfly-degree threshold for cross-group interactions.
    pub b: u64,
}

impl MbccParams {
    /// Creates per-label parameters.
    pub fn new(ks: Vec<u32>, b: u64) -> Self {
        MbccParams { ks, b }
    }

    /// Uniform `k` for all labels.
    pub fn uniform(m: usize, k: u32, b: u64) -> Self {
        MbccParams { ks: vec![k; m], b }
    }

    /// Coreness-of-query defaults, mirroring [`BccParams::auto`].
    pub fn auto(graph: &LabeledGraph, query: &MbccQuery) -> Self {
        let view = GraphView::new(graph);
        let coreness = bcc_cohesion::label_core_decomposition(&view);
        MbccParams {
            ks: query.queries.iter().map(|q| coreness[q.index()]).collect(),
            b: 1,
        }
    }
}

/// Why a search produced no community.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// A query vertex id exceeds the graph's vertex range.
    QueryOutOfRange(VertexId),
    /// Two query vertices share a label (the BCC model needs one query per
    /// label group).
    DuplicateLabels,
    /// Fewer than two query vertices were supplied.
    TooFewQueries,
    /// No `(k1, k2, b)`-BCC containing the queries exists (Algorithm 2
    /// returned ∅, or a query vertex was peeled away).
    NoCandidate,
    /// The query vertices are not connected inside the maximal candidate.
    Disconnected,
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::QueryOutOfRange(v) => write!(f, "query vertex {v} is out of range"),
            SearchError::DuplicateLabels => {
                write!(f, "query vertices must carry pairwise distinct labels")
            }
            SearchError::TooFewQueries => write!(f, "a BCC query needs at least two vertices"),
            SearchError::NoCandidate => {
                write!(f, "no butterfly-core community satisfies the parameters")
            }
            SearchError::Disconnected => {
                write!(f, "the query vertices are not connected in the candidate community")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// A discovered community plus search metadata.
#[derive(Clone, Debug)]
pub struct BccResult {
    /// The community's vertices, sorted ascending.
    pub community: Vec<VertexId>,
    /// The community's query distance `dist(H, Q)` (Definition 5).
    pub query_distance: u32,
    /// Peeling iterations the search performed.
    pub iterations: usize,
    /// The certified leader vertices: for each label group, the member with
    /// the maximum butterfly degree toward the other group(s) — the
    /// "leaders or liaisons" of Section 3.3 (one entry per query label, in
    /// query order).
    pub leaders: Vec<VertexId>,
    /// Instrumentation collected during the search.
    pub stats: SearchStats,
}

impl BccResult {
    /// Returns `true` if `v` is in the community (binary search).
    pub fn contains(&self, v: &VertexId) -> bool {
        self.community.binary_search(v).is_ok()
    }

    /// Number of community members.
    pub fn len(&self) -> usize {
        self.community.len()
    }

    /// Returns `true` for an empty community (never produced by a
    /// successful search).
    pub fn is_empty(&self) -> bool {
        self.community.is_empty()
    }

    /// Exact diameter of the community's induced subgraph.
    pub fn diameter(&self, graph: &LabeledGraph) -> u32 {
        let view = GraphView::from_vertices(graph, self.community.iter().copied());
        bcc_graph::traversal::diameter_exact(&view)
    }
}

/// Checks whether the alive subgraph of `view` is a valid connected BCC
/// containing the queries: used by tests and debug assertions, not by the
/// search hot path.
pub fn is_valid_bcc(
    view: &GraphView<'_>,
    query: &BccQuery,
    params: &BccParams,
) -> bool {
    let graph = view.graph();
    let (ll, lr) = (graph.label(query.ql), graph.label(query.qr));
    if ll == lr || !view.is_alive(query.ql) || !view.is_alive(query.qr) {
        return false;
    }
    // Exactly two labels.
    if view
        .alive_vertices()
        .any(|v| graph.label(v) != ll && graph.label(v) != lr)
    {
        return false;
    }
    // Connectivity of the whole community.
    let comp = view.component_of(query.ql);
    if comp.count() != view.alive_count() || !comp.contains(query.qr.index()) {
        return false;
    }
    // Core conditions.
    let mut thresholds = LabelCoreThresholds::new(graph.label_count());
    thresholds.require(ll, params.k1);
    thresholds.require(lr, params.k2);
    let satisfied = view.alive_vertices().all(|v| match thresholds.get(graph.label(v)) {
        Some(k) => view.intra_degree(v) as u32 >= k,
        None => false,
    });
    if !satisfied {
        return false;
    }
    // Leader-pair condition.
    let cross = bcc_butterfly::BipartiteCross::new(ll, lr);
    let counts = bcc_butterfly::ButterflyCounts::compute(view, cross);
    counts.satisfies_leader_condition(params.b)
}

/// Checks whether the alive subgraph of `view` is a valid connected mBCC
/// containing all queries (Definition 8). Test/debug helper.
pub fn is_valid_mbcc(
    view: &GraphView<'_>,
    query: &MbccQuery,
    params: &MbccParams,
) -> bool {
    let graph = view.graph();
    let labels: Vec<_> = query.queries.iter().map(|&q| graph.label(q)).collect();
    let m = labels.len();
    if m < 2 {
        return false;
    }
    for i in 0..m {
        for j in (i + 1)..m {
            if labels[i] == labels[j] {
                return false;
            }
        }
    }
    if query.queries.iter().any(|&q| !view.is_alive(q)) {
        return false;
    }
    // Exactly the m labels (condition 1).
    if view
        .alive_vertices()
        .any(|v| !labels.contains(&graph.label(v)))
    {
        return false;
    }
    // Connectivity of the whole community.
    let comp = view.component_of(query.queries[0]);
    if comp.count() != view.alive_count()
        || query.queries.iter().any(|&q| !comp.contains(q.index()))
    {
        return false;
    }
    // Core conditions (condition 2).
    let mut thresholds = LabelCoreThresholds::new(graph.label_count());
    for (label, &k) in labels.iter().zip(&params.ks) {
        thresholds.require(*label, k);
    }
    let cores_ok = view.alive_vertices().all(|v| match thresholds.get(graph.label(v)) {
        Some(k) => view.intra_degree(v) as u32 >= k,
        None => false,
    });
    if !cores_ok {
        return false;
    }
    // Cross-group connectivity (condition 3, Definition 7): union-find over
    // label pairs with certified leader pairs.
    let mut uf = bcc_graph::UnionFind::new(m);
    for i in 0..m {
        for j in (i + 1)..m {
            let cross = bcc_butterfly::BipartiteCross::new(labels[i], labels[j]);
            let counts = bcc_butterfly::ButterflyCounts::compute(view, cross);
            if counts.satisfies_leader_condition(params.b) {
                uf.union(i as u32, j as u32);
            }
        }
    }
    uf.component_count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Two 4-cliques joined by a butterfly: a (3, 3, 1)-BCC.
    fn bcc_graph() -> (LabeledGraph, BccQuery) {
        let mut b = GraphBuilder::new();
        let l: Vec<_> = (0..4).map(|_| b.add_vertex("L")).collect();
        let r: Vec<_> = (0..4).map(|_| b.add_vertex("R")).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(l[i], l[j]);
                b.add_edge(r[i], r[j]);
            }
        }
        for &x in &l[..2] {
            for &y in &r[..2] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        (g, BccQuery::pair(l[0], r[0]))
    }

    #[test]
    fn valid_bcc_passes_checker() {
        let (g, q) = bcc_graph();
        let view = GraphView::new(&g);
        assert!(is_valid_bcc(&view, &q, &BccParams::new(3, 3, 1)));
        assert!(!is_valid_bcc(&view, &q, &BccParams::new(4, 3, 1)), "k1 too large");
        assert!(!is_valid_bcc(&view, &q, &BccParams::new(3, 3, 2)), "b too large");
    }

    #[test]
    fn checker_rejects_third_label() {
        let (g, q) = bcc_graph();
        let mut b = GraphBuilder::new();
        // Rebuild with an extra PM vertex attached.
        for v in g.vertices() {
            b.add_vertex(g.interner().name(g.label(v)).unwrap());
        }
        let z = b.add_vertex("Z");
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        b.add_edge(z, VertexId(0));
        let g2 = b.build();
        let view = GraphView::new(&g2);
        assert!(!is_valid_bcc(&view, &q, &BccParams::new(3, 3, 1)));
    }

    #[test]
    fn auto_params_use_label_coreness() {
        let (g, q) = bcc_graph();
        let params = BccParams::auto(&g, &q);
        assert_eq!(params.k1, 3);
        assert_eq!(params.k2, 3);
        assert_eq!(params.b, 1);
    }

    #[test]
    fn result_helpers() {
        let (g, _q) = bcc_graph();
        let result = BccResult {
            community: vec![VertexId(0), VertexId(1), VertexId(4)],
            query_distance: 1,
            iterations: 0,
            leaders: vec![VertexId(0), VertexId(4)],
            stats: SearchStats::default(),
        };
        assert!(result.contains(&VertexId(4)));
        assert!(!result.contains(&VertexId(2)));
        assert_eq!(result.len(), 3);
        assert!(result.diameter(&g) <= 2);
    }

    #[test]
    fn error_display() {
        assert!(SearchError::NoCandidate.to_string().contains("no butterfly-core"));
        assert!(SearchError::DuplicateLabels.to_string().contains("distinct"));
    }
}
