//! Multi-labeled BCC search (Section 7, Algorithm 9).
//!
//! An mBCC (Definition 8) has `m ≥ 2` label groups, each a `k_i`-core, such
//! that the groups — linked by pairwise cross-group interactions (leader
//! pairs with χ ≥ b) — form one connected block (Definition 7's cross-group
//! connectivity, checked with union-find). The search framework is the same
//! greedy peel as Algorithm 1; all of Section 6's fast strategies carry
//! over, which is exactly how the paper builds its mBCC variants of
//! Online-BCC, LP-BCC, and L2P-BCC.

use bcc_graph::{GraphView, LabeledGraph, VertexId};

use crate::candidate::Candidate;
use crate::engine::{run_peel, EngineConfig};
use crate::index::BccIndex;
use crate::local::{butterfly_core_path, expand_candidate, PathWeights};
use crate::model::{BccResult, MbccParams, MbccQuery, SearchError};
use crate::stats::SearchStats;

/// Which engine strategy an mBCC search uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MultiStrategy {
    /// Algorithm 9 verbatim: recount butterflies per pair per iteration.
    Online,
    /// Algorithm 9 with fast distances + leader pairs per label pair.
    LeaderPair,
    /// Leader pairs + index-based local exploration seeded by
    /// butterfly-core weighted paths from `q_1` to every other query.
    Local {
        /// Candidate size threshold η.
        eta: usize,
        /// Path weight γ's of Definition 6.
        weights: PathWeights,
    },
}

/// The multi-labeled BCC searcher.
#[derive(Clone, Copy, Debug)]
pub struct MultiLabelBcc {
    /// Engine strategy (Online / LeaderPair / Local).
    pub strategy: MultiStrategy,
    /// Leader search radius ρ (used by LeaderPair and Local).
    pub rho: u32,
    /// Worker threads for the per-query stages (`1` = sequential reference,
    /// `0` = all cores). Bit-identical results at any value.
    pub query_threads: usize,
}

impl Default for MultiLabelBcc {
    fn default() -> Self {
        MultiLabelBcc {
            strategy: MultiStrategy::LeaderPair,
            rho: 3,
            query_threads: 1,
        }
    }
}

impl MultiLabelBcc {
    /// Convenience constructor for a given strategy.
    pub fn with_strategy(strategy: MultiStrategy) -> Self {
        MultiLabelBcc {
            strategy,
            rho: 3,
            query_threads: 1,
        }
    }

    /// Sets the query-thread knob (builder style).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Searches for a connected mBCC containing all queries with a small
    /// diameter. For `MultiStrategy::Local`, `index` must be provided.
    pub fn search(
        &self,
        graph: &LabeledGraph,
        index: Option<&BccIndex>,
        query: &MbccQuery,
        params: &MbccParams,
    ) -> Result<BccResult, SearchError> {
        let started = std::time::Instant::now();
        let mut stats = SearchStats::default();

        let (candidate, counts) = match self.strategy {
            MultiStrategy::Online | MultiStrategy::LeaderPair => {
                Candidate::find_g0_threaded(graph, query, params, self.query_threads, &mut stats)?
            }
            MultiStrategy::Local { eta, weights } => {
                let index = index.expect("MultiStrategy::Local requires a BccIndex");
                let view = self.local_candidate(graph, index, query, params, eta, weights)?;
                Candidate::find_g0_in_threaded(view, query, params, self.query_threads, &mut stats)?
            }
        };

        let config = match self.strategy {
            MultiStrategy::Online => EngineConfig::online(),
            MultiStrategy::LeaderPair | MultiStrategy::Local { .. } => {
                let mut c = EngineConfig::leader_pair();
                c.leader_rho = self.rho;
                c
            }
        }
        .with_query_threads(self.query_threads);
        let outcome = run_peel(candidate, counts, config, &mut stats)?;
        stats.time_total = started.elapsed();
        Ok(BccResult {
            community: outcome.community,
            query_distance: outcome.query_distance,
            iterations: outcome.iterations,
            leaders: outcome.leaders,
            stats,
        })
    }

    /// Local exploration for m labels: weighted paths from `q_1` to every
    /// other query seed the expansion; each label's coreness floor is the
    /// minimum over its seed vertices (raised to the requested `k_i`).
    fn local_candidate<'g>(
        &self,
        graph: &'g LabeledGraph,
        index: &BccIndex,
        query: &MbccQuery,
        params: &MbccParams,
        eta: usize,
        weights: PathWeights,
    ) -> Result<GraphView<'g>, SearchError> {
        let m = query.queries.len();
        if m < 2 {
            return Err(SearchError::TooFewQueries);
        }
        for &q in &query.queries {
            if q.index() >= graph.vertex_count() {
                return Err(SearchError::QueryOutOfRange(q));
            }
        }
        let labels: Vec<_> = query.queries.iter().map(|&q| graph.label(q)).collect();
        let full_view = GraphView::new(graph);
        let mut seeds: Vec<VertexId> = Vec::new();
        for &q in &query.queries[1..] {
            let path = butterfly_core_path(
                &full_view,
                index,
                weights,
                query.queries[0],
                q,
                &labels,
            )
            .ok_or(SearchError::Disconnected)?;
            seeds.extend(path);
        }
        seeds.sort_unstable();
        seeds.dedup();

        let mut floors = Vec::with_capacity(m);
        for (i, &label) in labels.iter().enumerate() {
            let floor = seeds
                .iter()
                .filter(|&&v| graph.label(v) == label)
                .map(|&v| index.coreness(v))
                .min()
                .unwrap_or(0);
            floors.push((label, floor.max(params.ks[i])));
        }
        let selected = expand_candidate(&full_view, index, &seeds, &floors, eta);
        Ok(GraphView::from_vertices(graph, selected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::GraphBuilder;

    /// Three label groups A, B, C: A–B and B–C have butterflies, A–C has no
    /// direct cross edges — connectivity must flow through B (the Def. 7
    /// cross-group path).
    fn three_group_graph() -> (LabeledGraph, MbccQuery, MbccParams) {
        let mut b = GraphBuilder::new();
        let a: Vec<_> = (0..4).map(|_| b.add_vertex("A")).collect();
        let bb: Vec<_> = (0..4).map(|_| b.add_vertex("B")).collect();
        let c: Vec<_> = (0..4).map(|_| b.add_vertex("C")).collect();
        for grp in [&a, &bb, &c] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(grp[i], grp[j]);
                }
            }
        }
        for &x in &a[..2] {
            for &y in &bb[..2] {
                b.add_edge(x, y);
            }
        }
        for &x in &bb[..2] {
            for &y in &c[..2] {
                b.add_edge(x, y);
            }
        }
        let g = b.build();
        let query = MbccQuery::new(vec![a[0], bb[0], c[0]]);
        let params = MbccParams::new(vec![3, 3, 3], 1);
        (g, query, params)
    }

    #[test]
    fn three_labels_connected_through_middle() {
        let (g, query, params) = three_group_graph();
        for strategy in [MultiStrategy::Online, MultiStrategy::LeaderPair] {
            let searcher = MultiLabelBcc::with_strategy(strategy);
            let result = searcher.search(&g, None, &query, &params).unwrap();
            assert_eq!(result.community.len(), 12, "{strategy:?}: all three 4-cliques");
        }
    }

    #[test]
    fn local_strategy_matches() {
        let (g, query, params) = three_group_graph();
        let index = BccIndex::build(&g);
        let searcher = MultiLabelBcc::with_strategy(MultiStrategy::Local {
            eta: 64,
            weights: PathWeights::default(),
        });
        let result = searcher.search(&g, Some(&index), &query, &params).unwrap();
        assert!(query.queries.iter().all(|q| result.contains(q)));
        assert_eq!(result.community.len(), 12);
    }

    #[test]
    fn m2_reduces_to_two_label_bcc() {
        let (g, query, params) = three_group_graph();
        let two = MbccQuery::new(query.queries[..2].to_vec());
        let two_params = MbccParams::new(params.ks[..2].to_vec(), params.b);
        let result = MultiLabelBcc::default().search(&g, None, &two, &two_params).unwrap();
        // Only the A and B groups qualify; the C group carries a third label.
        assert_eq!(result.community.len(), 8);
    }

    #[test]
    fn broken_cross_connectivity_fails() {
        // A and C share no interaction, and without B in the query there is
        // no cross-group path between them.
        let (g, query, _params) = three_group_graph();
        let ac = MbccQuery::new(vec![query.queries[0], query.queries[2]]);
        let params = MbccParams::new(vec![3, 3], 1);
        let err = MultiLabelBcc::default().search(&g, None, &ac, &params).unwrap_err();
        assert!(
            err == SearchError::NoCandidate || err == SearchError::Disconnected,
            "{err:?}"
        );
    }

    #[test]
    fn query_threads_do_not_change_the_mbcc_result() {
        let (g, query, params) = three_group_graph();
        for strategy in [MultiStrategy::Online, MultiStrategy::LeaderPair] {
            let reference = MultiLabelBcc::with_strategy(strategy)
                .search(&g, None, &query, &params)
                .unwrap();
            for threads in [2usize, 3, 7, 0] {
                let result = MultiLabelBcc::with_strategy(strategy)
                    .with_query_threads(threads)
                    .search(&g, None, &query, &params)
                    .unwrap();
                assert_eq!(result.community, reference.community, "{strategy:?} threads={threads}");
                assert_eq!(result.leaders, reference.leaders, "{strategy:?} threads={threads}");
            }
        }
    }

    #[test]
    fn rejects_duplicate_label_queries() {
        let (g, query, params) = three_group_graph();
        let dup = MbccQuery::new(vec![query.queries[0], VertexId(1), query.queries[1]]);
        let params = MbccParams::new(vec![3, 3, 3], params.b);
        let err = MultiLabelBcc::default().search(&g, None, &dup, &params).unwrap_err();
        assert_eq!(err, SearchError::DuplicateLabels);
    }

    use bcc_graph::{LabeledGraph, VertexId};
}
